//! End-to-end protocol benchmarks: one full simulated execution per
//! iteration, for every layer of the stack (A-Cast → SVSS → BA →
//! CommonSubset → CoinFlip → FairChoice → FBA).

use aft_ba::{BinaryBa, OracleCoin};
use aft_broadcast::Acast;
use aft_core::{
    CoinFlip, CoinFlipParams, CoinKind, CommonSubsetInstance, FairChoice, FairChoiceParams, Fba,
};
use aft_field::Fp;
use aft_sim::{scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SimNetwork};
use aft_svss::{ShareBundle, SvssRec, SvssShare};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("bench", 0))
}

fn run_net(n: usize, t: usize, seed: u64, mk: impl Fn(usize) -> Box<dyn Instance>) -> SimNetwork {
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        scheduler_by_name("random").unwrap(),
    );
    for p in 0..n {
        net.spawn(PartyId(p), sid(), mk(p));
    }
    net.run(u64::MAX);
    net
}

fn bench_acast(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2), (10, 3)] {
        c.bench_with_input(BenchmarkId::new("acast/full_run", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |p| {
                    if p == 0 {
                        Box::new(Acast::sender(PartyId(0), 42u64))
                    } else {
                        Box::new(Acast::<u64>::receiver(PartyId(0)))
                    }
                })
            })
        });
    }
}

fn bench_svss(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        c.bench_with_input(BenchmarkId::new("svss/share", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |p| {
                    if p == 0 {
                        Box::new(SvssShare::dealer(PartyId(0), Fp::new(5)))
                    } else {
                        Box::new(SvssShare::party(PartyId(0)))
                    }
                })
            })
        });
        c.bench_with_input(BenchmarkId::new("svss/share_and_rec", n), &n, |b, _| {
            b.iter(|| {
                let mut net = run_net(n, t, 7, |p| {
                    if p == 0 {
                        Box::new(SvssShare::dealer(PartyId(0), Fp::new(5)))
                    } else {
                        Box::new(SvssShare::party(PartyId(0)))
                    }
                });
                let rsid = SessionId::root().child(SessionTag::new("rec", 0));
                for p in 0..n {
                    if let Some(bundle) = net.output_as::<ShareBundle>(PartyId(p), &sid()).cloned()
                    {
                        net.spawn(PartyId(p), rsid.clone(), Box::new(SvssRec::new(bundle)));
                    }
                }
                net.run(u64::MAX);
                net
            })
        });
    }
}

fn bench_ba(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        c.bench_with_input(BenchmarkId::new("ba/split_inputs", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |p| {
                    Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(1))))
                })
            })
        });
    }
}

fn bench_common_subset(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        c.bench_with_input(BenchmarkId::new("common_subset/full", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |_| {
                    Box::new(CommonSubsetInstance::new(n - t, CoinKind::Oracle(1), true))
                })
            })
        });
    }
}

fn bench_coin_flip(c: &mut Criterion) {
    for &k in &[1usize, 2] {
        c.bench_with_input(BenchmarkId::new("coin_flip/n4_k", k), &k, |b, _| {
            b.iter(|| {
                run_net(4, 1, 7, |_| {
                    Box::new(CoinFlip::new(
                        CoinFlipParams::FixedK { k },
                        CoinKind::Oracle(1),
                    ))
                })
            })
        });
    }
}

fn bench_fair_choice(c: &mut Criterion) {
    c.bench_function("fair_choice/m3_n4", |b| {
        b.iter(|| {
            run_net(4, 1, 7, |_| {
                Box::new(FairChoice::new(
                    3,
                    FairChoiceParams::FixedK { k: 1 },
                    CoinKind::Oracle(1),
                ))
            })
        })
    });
}

fn bench_fba(c: &mut Criterion) {
    c.bench_function("fba/distinct_inputs_n4", |b| {
        b.iter(|| {
            run_net(4, 1, 7, |p| {
                Box::new(Fba::new(
                    p as u64,
                    FairChoiceParams::FixedK { k: 1 },
                    CoinKind::Oracle(1),
                ))
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_acast, bench_svss, bench_ba, bench_common_subset,
              bench_coin_flip, bench_fair_choice, bench_fba
}
criterion_main!(benches);
