//! End-to-end protocol benchmarks: one full simulated execution per
//! iteration, for every layer of the stack (A-Cast → SVSS → BA →
//! CommonSubset → CoinFlip → FairChoice → FBA), plus the cross-backend
//! `ba_sweep_n64` entries comparing `sim` against `sharded:<k>` at scale,
//! the `session_id` interner hot-path microbenches, and the
//! `delivery/enqueue_pick_drain` queue microbench gating future changes
//! to the batched in-flight queue.

use aft_ba::{BinaryBa, OracleCoin};
use aft_broadcast::Acast;
use aft_core::{
    CoinFlip, CoinFlipParams, CoinKind, CommonSubsetInstance, FairChoice, FairChoiceParams, Fba,
};
use aft_field::Fp;
use aft_sim::{
    runtime_by_name, scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag,
    SimNetwork,
};
use aft_svss::{ShareBundle, SvssRec, SvssShare};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("bench", 0))
}

fn run_net(n: usize, t: usize, seed: u64, mk: impl Fn(usize) -> Box<dyn Instance>) -> SimNetwork {
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        scheduler_by_name("random").unwrap(),
    );
    for p in 0..n {
        net.spawn(PartyId(p), sid(), mk(p));
    }
    net.run(u64::MAX);
    net
}

fn bench_acast(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2), (10, 3)] {
        c.bench_with_input(BenchmarkId::new("acast/full_run", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |p| {
                    if p == 0 {
                        Box::new(Acast::sender(PartyId(0), 42u64))
                    } else {
                        Box::new(Acast::<u64>::receiver(PartyId(0)))
                    }
                })
            })
        });
    }
}

fn bench_svss(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        c.bench_with_input(BenchmarkId::new("svss/share", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |p| {
                    if p == 0 {
                        Box::new(SvssShare::dealer(PartyId(0), Fp::new(5)))
                    } else {
                        Box::new(SvssShare::party(PartyId(0)))
                    }
                })
            })
        });
        c.bench_with_input(BenchmarkId::new("svss/share_and_rec", n), &n, |b, _| {
            b.iter(|| {
                let mut net = run_net(n, t, 7, |p| {
                    if p == 0 {
                        Box::new(SvssShare::dealer(PartyId(0), Fp::new(5)))
                    } else {
                        Box::new(SvssShare::party(PartyId(0)))
                    }
                });
                let rsid = SessionId::root().child(SessionTag::new("rec", 0));
                for p in 0..n {
                    if let Some(bundle) = net.output_as::<ShareBundle>(PartyId(p), &sid()).cloned()
                    {
                        net.spawn(PartyId(p), rsid.clone(), Box::new(SvssRec::new(bundle)));
                    }
                }
                net.run(u64::MAX);
                net
            })
        });
    }
}

fn bench_ba(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        c.bench_with_input(BenchmarkId::new("ba/split_inputs", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |p| {
                    Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(1))))
                })
            })
        });
    }
}

fn bench_common_subset(c: &mut Criterion) {
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        c.bench_with_input(BenchmarkId::new("common_subset/full", n), &n, |b, _| {
            b.iter(|| {
                run_net(n, t, 7, |_| {
                    Box::new(CommonSubsetInstance::new(n - t, CoinKind::Oracle(1), true))
                })
            })
        });
    }
}

fn bench_coin_flip(c: &mut Criterion) {
    for &k in &[1usize, 2] {
        c.bench_with_input(BenchmarkId::new("coin_flip/n4_k", k), &k, |b, _| {
            b.iter(|| {
                run_net(4, 1, 7, |_| {
                    Box::new(CoinFlip::new(
                        CoinFlipParams::FixedK { k },
                        CoinKind::Oracle(1),
                    ))
                })
            })
        });
    }
}

fn bench_fair_choice(c: &mut Criterion) {
    c.bench_function("fair_choice/m3_n4", |b| {
        b.iter(|| {
            run_net(4, 1, 7, |_| {
                Box::new(FairChoice::new(
                    3,
                    FairChoiceParams::FixedK { k: 1 },
                    CoinKind::Oracle(1),
                ))
            })
        })
    });
}

fn bench_fba(c: &mut Criterion) {
    c.bench_function("fba/distinct_inputs_n4", |b| {
        b.iter(|| {
            run_net(4, 1, 7, |p| {
                Box::new(Fba::new(
                    p as u64,
                    FairChoiceParams::FixedK { k: 1 },
                    CoinKind::Oracle(1),
                ))
            })
        })
    });
}

/// The scale sweep behind the sharded backend: one full unanimous-input
/// BA execution at n = 64 per iteration, on the single-threaded simulator
/// and the sharded simulator. The two backends do identical logical work
/// (same protocol, same message complexity; the sharded schedule is a
/// pure function of the seed). `sharded:4` overtakes `sim` when worker
/// shards get real cores; on a single core it pays the price of genuine
/// per-party random scheduling, which `sim`'s fairness cap collapses to
/// FIFO pops under load.
fn bench_ba_sweep_n64(c: &mut Criterion) {
    let (n, t) = (64usize, 21usize);
    for backend in ["sim", "sharded:4"] {
        let label = backend.replace(':', "");
        c.bench_with_input(BenchmarkId::new("ba_sweep_n64", label), &n, |b, _| {
            b.iter(|| {
                let mut rt = runtime_by_name(backend, NetConfig::new(n, t, 7)).unwrap();
                for p in 0..n {
                    rt.spawn(
                        PartyId(p),
                        sid(),
                        Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(7)))),
                    );
                }
                rt.run(u64::MAX)
            })
        });
    }
}

/// The n = 256 stretch row: one unanimous-input BA execution at
/// `(n, t) = (256, 85)` per iteration, on both deterministic backends.
/// Sampled shallow (each iteration is a full four-figure-party BA run)
/// and non-gating in CI — its job is to prove the pipeline completes at
/// this scale and to track the trend, not to gate on noise.
fn bench_ba_sweep_n256(c: &mut Criterion) {
    let (n, t) = (256usize, 85usize);
    for backend in ["sim", "sharded:4"] {
        let label = backend.replace(':', "");
        c.bench_with_input_samples(BenchmarkId::new("ba_sweep_n256", label), &n, 3, |b, _| {
            b.iter(|| {
                let mut rt = runtime_by_name(backend, NetConfig::new(n, t, 7)).unwrap();
                for p in 0..n {
                    rt.spawn(
                        PartyId(p),
                        sid(),
                        Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(7)))),
                    );
                }
                rt.run(u64::MAX)
            })
        });
    }
}

/// The in-flight queue in isolation: bursts of same-destination pushes
/// (which merge into batches), random scheduler picks over the batch
/// view, and full drains — the enqueue/pick/drain cycle every simulated
/// message pays. Gates future queue changes.
fn bench_delivery_queue(c: &mut Criterion) {
    use aft_sim::{Envelope, Payload, Pending, RandomScheduler, Scheduler};
    let session = sid();
    c.bench_function("delivery/enqueue_pick_drain", |b| {
        b.iter(|| {
            let mut q = Pending::new();
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
            let mut sched = RandomScheduler;
            let mut seq = 0u64;
            let mut delivered = 0u64;
            // 16 waves: 32 senders burst 4 envelopes each at one
            // destination (merging into per-pair batches), then random
            // picks drain the queue down before the next wave.
            for wave in 0..16u64 {
                for src in 0..32usize {
                    let dst = (src + wave as usize) % 32;
                    for m in 0..4u64 {
                        q.push(Envelope {
                            from: PartyId(src),
                            to: PartyId(dst),
                            session: session.clone(),
                            // The send-path constructor: small messages
                            // small-box into inline frames, no Arc.
                            payload: Payload::message(m),
                            seq,
                            born_step: wave,
                        });
                        seq += 1;
                    }
                }
                while q.messages() > 64 {
                    let i = sched.pick(&q, &mut rng);
                    black_box(q.take(i));
                    delivered += 1;
                }
            }
            while !q.is_empty() {
                let i = sched.pick(&q, &mut rng);
                black_box(q.take(i));
                delivered += 1;
            }
            delivered
        })
    });
}

/// The typed wire codec in isolation: encode + decode round trips for a
/// small control message (the dominant wire traffic: inline-frame path)
/// and a polynomial-bearing SVSS share message (the large-frame path),
/// gating codec changes in the bench-regression diff.
fn bench_codec(c: &mut Criterion) {
    use aft_ba::V1;
    use aft_broadcast::AcastMsg;
    use aft_sim::wire::{decode_frame_as, encode_frame};
    use aft_svss::ShareMsg;

    c.bench_function("codec/encode_decode", |b| {
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
        let poly = aft_field::Poly::random(4, &mut rng);
        let small = AcastMsg::Echo(V1(true));
        let large = ShareMsg::Shares {
            row: poly.clone(),
            col: poly,
        };
        b.iter(|| {
            let mut buf = Vec::new();
            let mut acc = 0usize;
            for _ in 0..256 {
                buf.clear();
                encode_frame(black_box(&small), &mut buf);
                acc += decode_frame_as::<AcastMsg<V1>>(&buf).is_some() as usize;
                buf.clear();
                encode_frame(black_box(&large), &mut buf);
                acc += decode_frame_as::<ShareMsg>(&buf).is_some() as usize;
            }
            acc
        })
    });

    // The payload boundary itself: message construction (small-box) and
    // view-decode, as paid per delivered envelope on every backend.
    c.bench_function("codec/payload_message_view", |b| {
        use aft_sim::Payload;
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..256u64 {
                let p = Payload::message(black_box(i));
                acc += p.to_msg::<u64>().unwrap_or(0);
            }
            acc
        })
    });
}

/// The `SessionId` interner hot paths: per-send clones are pointer
/// copies, child derivation is one interner probe, equality is one word.
fn bench_session_id(c: &mut Criterion) {
    let base = SessionId::root()
        .child(SessionTag::new("coin", 3))
        .child(SessionTag::new("svss", 17));
    c.bench_function("session_id/clone_eq_last", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..1000 {
                let s = black_box(&base).clone();
                if s == base && s.last().is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    c.bench_function("session_id/child_intern", |b| {
        b.iter(|| {
            let mut depth = 0usize;
            for i in 0..1000u64 {
                // Mostly interner hits (64 distinct children), as on the
                // simulator's session-spawn path.
                let child = black_box(&base).child(SessionTag::new("ba", i % 64));
                depth += child.depth();
            }
            depth
        })
    });
}

/// The flight recorder's disabled fast path: a full BA run through the
/// instrumented delivery pipeline with tracing off must cost the same as
/// before the trace seam existed (the per-delivery check is one
/// statically predictable `Option` branch). Guarded by the bench
/// regression gate as `trace/off_overhead`.
fn bench_trace_off(c: &mut Criterion) {
    c.bench_function("trace/off_overhead", |b| {
        b.iter(|| {
            run_net(7, 2, 7, |p| {
                Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(1))))
            })
        })
    });
}

/// The virtual clock's per-delivery cost: the same BA run as
/// `trace/off_overhead`, but under the `net:` discrete-event scheduler
/// (uniform 1..8 virtual-ms latency, no partitions). The delta over the
/// order-only schedulers is the price of arrival-time sampling, the
/// earliest-arrival pick, and virtual-time metric accounting. Guarded by
/// the bench regression gate as `net/clock_overhead`.
fn bench_net_clock(c: &mut Criterion) {
    c.bench_function("net/clock_overhead", |b| {
        b.iter(|| {
            let mut net = SimNetwork::new(
                NetConfig::new(7, 2, 7),
                scheduler_by_name("net:lat=1..8").unwrap(),
            );
            for p in 0..7 {
                net.spawn(
                    PartyId(p),
                    sid(),
                    Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(1)))),
                );
            }
            net.run(u64::MAX);
            net
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_acast, bench_svss, bench_ba, bench_common_subset,
              bench_coin_flip, bench_fair_choice, bench_fba,
              bench_ba_sweep_n64, bench_ba_sweep_n256, bench_delivery_queue,
              bench_codec, bench_session_id, bench_trace_off, bench_net_clock
}
criterion_main!(benches);
