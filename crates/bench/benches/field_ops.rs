//! Micro-benchmarks of the algebraic substrate: field ops, polynomial
//! evaluation/interpolation, Reed–Solomon decoding.

use aft_field::{interpolate, oec_decode, rs_decode, BivarPoly, Fp, Poly};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(42)
}

fn bench_fp(c: &mut Criterion) {
    let mut r = rng();
    let a = Fp::random(&mut r);
    let b = Fp::random(&mut r);
    c.bench_function("fp/mul", |bench| bench.iter(|| black_box(a) * black_box(b)));
    c.bench_function("fp/inv", |bench| bench.iter(|| black_box(a).inv().unwrap()));
}

fn bench_poly(c: &mut Criterion) {
    let mut r = rng();
    for deg in [4usize, 16, 64] {
        let p = Poly::random(deg, &mut r);
        let x = Fp::random(&mut r);
        c.bench_with_input(BenchmarkId::new("poly/eval", deg), &deg, |bench, _| {
            bench.iter(|| p.eval(black_box(x)))
        });
        let pts: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        c.bench_with_input(
            BenchmarkId::new("poly/interpolate", deg),
            &deg,
            |bench, _| bench.iter(|| interpolate(black_box(&pts)).unwrap()),
        );
    }
}

fn bench_bivar(c: &mut Criterion) {
    let mut r = rng();
    for t in [1usize, 3, 5] {
        let f = BivarPoly::random(t, &mut r);
        c.bench_with_input(BenchmarkId::new("bivar/row", t), &t, |bench, _| {
            bench.iter(|| f.row(black_box(Fp::new(3))))
        });
    }
}

fn bench_rs(c: &mut Criterion) {
    let mut r = rng();
    for t in [1usize, 2, 4] {
        let n = 3 * t + 1;
        let p = Poly::random(t, &mut r);
        let mut pts: Vec<(Fp, Fp)> = (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        for bad in pts.iter_mut().take(t) {
            bad.1 += Fp::new(r.gen_range(1..100));
        }
        c.bench_with_input(BenchmarkId::new("rs/decode_t_errors", t), &t, |bench, _| {
            bench.iter(|| rs_decode(black_box(&pts), t, t).unwrap())
        });
        c.bench_with_input(BenchmarkId::new("rs/oec", t), &t, |bench, _| {
            bench.iter(|| oec_decode(black_box(&pts), t).unwrap())
        });
    }
}

criterion_group!(benches, bench_fp, bench_poly, bench_bivar, bench_rs);
criterion_main!(benches);
