//! Integration tests for the process-per-party deployment: real
//! `aft-partyd` OS processes (cargo builds the binary and hands us its
//! path via `CARGO_BIN_EXE_aft-partyd`), a loopback TCP mesh, and the
//! supervisor from `aft_bench::deployment`.

use aft_bench::deployment::{run_deployment, DeployOptions, DeployStack};
use std::path::PathBuf;
use std::time::Duration;

fn opts(spec: &str, stack: DeployStack, seed: u64) -> DeployOptions {
    let mut opts = DeployOptions::new(spec, stack, seed);
    opts.partyd = Some(PathBuf::from(env!("CARGO_BIN_EXE_aft-partyd")));
    opts.timeout = Duration::from_secs(120);
    opts
}

/// BA over four real processes: every party terminates with the
/// unanimous input, exactly as the in-process backends decide it.
#[test]
fn ba_over_real_processes_agrees() {
    let report = run_deployment(&opts("n=4,t=1,rt=proc", DeployStack::Ba, 2)).unwrap();
    assert_eq!(report.violations, Vec::<String>::new());
    assert_eq!(report.restarts, 0);
    for (p, out) in report.outputs.iter().enumerate() {
        assert_eq!(out.as_deref(), Some("true"), "party {p}");
    }
    assert!(report.sent > 0 && report.delivered > 0);
}

/// Common subset over real processes: all parties output the same
/// >= n − t member set.
#[test]
fn common_subset_over_real_processes_agrees() {
    let report = run_deployment(&opts("n=4,t=1,rt=proc", DeployStack::CommonSubset, 9)).unwrap();
    assert_eq!(report.violations, Vec::<String>::new());
    let first = report.outputs[0].as_deref().expect("party 0 output");
    assert!(first.split('+').count() >= 3, "{first}");
}

/// The supervised crash/restart leg: `corrupt=recover:<vt>@p` maps onto
/// a real SIGKILL + respawn. The restarted party rejoins from nothing,
/// its peers replay their outboxes, and every invariant still holds —
/// including termination of the killed party itself.
#[test]
fn kill_and_restart_mid_run_satisfies_invariants() {
    let report = run_deployment(&opts(
        "n=4,t=1,corrupt=recover:250@2,rt=proc",
        DeployStack::Ba,
        3,
    ))
    .unwrap();
    assert_eq!(report.violations, Vec::<String>::new());
    assert_eq!(report.restarts, 1, "exactly one kill/restart leg");
    for (p, out) in report.outputs.iter().enumerate() {
        assert_eq!(out.as_deref(), Some("false"), "party {p} (seed 3 is odd)");
    }
}

/// A static fault rides along unchanged: the silent party owes no
/// output, everyone else still agrees.
#[test]
fn deployment_tolerates_a_silent_party() {
    let report = run_deployment(&opts(
        "n=4,t=1,corrupt=silent@3,rt=proc",
        DeployStack::Ba,
        2,
    ))
    .unwrap();
    assert_eq!(report.violations, Vec::<String>::new());
    assert_eq!(report.outputs[3], None, "silent party never outputs");
    for p in 0..3 {
        assert_eq!(report.outputs[p].as_deref(), Some("true"), "party {p}");
    }
}
