//! E5 — Theorem 4.5: FBA validity and fair validity.
//!
//! * unanimous honest inputs ⇒ that value is output (validity);
//! * differing inputs ⇒ some honest party's input is output with
//!   probability ≥ 1/2 (fair validity), even with crashed parties and a
//!   hostile scheduler.

use aft_bench::{fmt_prob, output_arg, run_fba, runtime_arg, trials, Adversary};
use aft_core::CoinKind;
use aft_sim::run_trials;

fn main() {
    let out = output_arg();
    out.note("# E5 — FBA fair validity (Theorem 4.5)");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(150);

    // Validity: unanimous.
    let mut rows = Vec::new();
    for adversary in [Adversary::None, Adversary::CrashOne] {
        let outcomes = run_trials(0..n_trials.min(60), 24, |seed| {
            let inputs: Vec<String> = (0..4).map(|_| "common".to_string()).collect();
            let o = run_fba(
                &rt,
                4,
                1,
                seed,
                &inputs,
                1,
                CoinKind::Oracle(seed ^ 0x77),
                "random",
                adversary,
            );
            o.agreement && o.all_terminated && o.outputs[0] == "common"
        });
        let good = outcomes.iter().filter(|&&b| b).count();
        rows.push(vec![
            "unanimous \"common\"".into(),
            adversary.label().into(),
            format!("{good}/{}", outcomes.len()),
            "all output the common input (prob. 1)".into(),
        ]);
    }
    out.table(
        "Validity under unanimous honest inputs",
        &["inputs", "adversary", "validity holds", "paper claim"],
        &rows,
    );

    // Fair validity: all-distinct inputs; byzantine party holds a planted
    // value that a fair protocol must not always win with.
    let mut rows = Vec::new();
    for (label, adversary, sched) in [
        ("all distinct, honest", Adversary::None, "random"),
        ("all distinct, 1 crash", Adversary::CrashOne, "random"),
        ("all distinct, 1 crash, LIFO", Adversary::CrashOne, "lifo"),
    ] {
        let outcomes = run_trials(0..n_trials, 24, |seed| {
            let inputs: Vec<String> = (0..4).map(|p| format!("input-{p}")).collect();
            let o = run_fba(
                &rt,
                4,
                1,
                seed,
                &inputs,
                1,
                CoinKind::Oracle(seed.wrapping_mul(0x2545F4914F6CDD1D)),
                sched,
                adversary,
            );
            assert!(o.agreement, "agreement is unconditional");
            // Honest = parties not silenced by the adversary.
            let honest: Vec<String> = (0..4)
                .filter(|&p| !adversary.is_byz(p, 4, 1))
                .map(|p| format!("input-{p}"))
                .collect();
            o.outputs.first().map(|out| honest.contains(out))
        });
        let total = outcomes.iter().filter(|o| o.is_some()).count();
        let fair = outcomes.iter().filter(|o| **o == Some(true)).count();
        rows.push(vec![
            label.into(),
            sched.into(),
            fmt_prob(fair, total),
            "≥ 0.5".into(),
        ]);
    }
    out.table(
        &format!("Fair validity over {n_trials} runs per row (n=4, t=1)"),
        &[
            "configuration",
            "scheduler",
            "Pr[output is honest input]",
            "paper bound",
        ],
        &rows,
    );

    // The binding case: a Byzantine party PARTICIPATES with a planted
    // value. Fair validity says the planted value wins at most 1/2 of the
    // time — i.e., some honest input is output with probability ≥ 1/2.
    let outcomes = run_trials(0..n_trials, 24, |seed| {
        use aft_bench::run_protocol;
        use aft_core::{FairChoiceParams, Fba};
        let o = run_protocol::<String>(&rt, 4, 1, seed, "random", Adversary::None, move |p, _| {
            let input = if p == 3 {
                "PLANTED".to_string()
            } else {
                format!("input-{p}")
            };
            Box::new(Fba::new(
                input,
                FairChoiceParams::FixedK { k: 1 },
                CoinKind::Oracle(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xBEEF),
            ))
        });
        assert!(o.agreement);
        // Party 3 counts as the adversary: honest inputs are 0..2's.
        o.outputs.first().map(|out| out != "PLANTED")
    });
    let total = outcomes.iter().filter(|o| o.is_some()).count();
    let fair = outcomes.iter().filter(|o| **o == Some(true)).count();
    out.table(
        &format!("Byzantine-participating planted value, {n_trials} runs"),
        &[
            "configuration",
            "Pr[output is an honest input]",
            "paper bound",
        ],
        &[vec![
            "3 honest distinct inputs + 1 Byzantine \"PLANTED\"".into(),
            fmt_prob(fair, total),
            "≥ 0.5".into(),
        ]],
    );
    out.note("\nnote: with only crash faults every A-Cast value IS an honest input (prob 1);");
    out.note("the planted-value row is where the ≥ 1/2 bound actually binds.");
    out.backend_counters();
}
