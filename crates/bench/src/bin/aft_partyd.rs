//! `aft-partyd` — one party of a deployed protocol run, in its own OS
//! process.
//!
//! The daemon hosts exactly one [`Node`](aft_sim::Node), built with the
//! same constructor (and per-party RNG derivation) as every in-process
//! backend, and exchanges envelopes with its peers over loopback TCP
//! using the `aft_sim::deploy` wire format inside length-prefixed
//! frames. It is driven by `exp_deployment` (or any supervisor speaking
//! the same control protocol — see `aft_bench::deployment`):
//!
//! ```sh
//! aft-partyd --party 2 --stack ba --seed 7 \
//!     --scenario 'n=4,t=1,rt=proc' [--recovered]
//! ```
//!
//! Lifecycle: bind a listener and print `ready <addr>`; receive the
//! `peers` address book; mesh (dial every lower-numbered party, accept
//! the rest — a restarted daemon dials *everyone* with the `recovered`
//! hello flag, prompting each peer to replace its link and replay its
//! outbox); print `meshed`; on `go`, spawn the scenario-assigned
//! instance and run the delivery loop; on `shutdown` (or supervisor
//! EOF), print final counters and exit.

use aft_bench::deployment::{instance_for, read_frame, write_frame, DeployStack};
use aft_core::scenarios::standard_registry;
use aft_sim::{decode_envelope, encode_envelope, party_node, Outgoing, PartyId, Scenario};
use std::collections::VecDeque;
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

/// Peer-link hello: 4 bytes little-endian party id, 1 recovered flag.
const HELLO_LEN: usize = 5;

enum Event {
    /// A control line from the supervisor (stdin); `None` is EOF.
    Ctrl(Option<String>),
    /// A peer link came up (dialed or accepted).
    Link {
        party: usize,
        recovered: bool,
        stream: TcpStream,
    },
    /// One envelope frame from an established link.
    Frame {
        from: usize,
        gen: u64,
        bytes: Vec<u8>,
    },
    /// A link died (read error or EOF).
    PeerGone { party: usize, gen: u64 },
}

fn fatal(msg: &str) -> ! {
    eprintln!("aft-partyd: {msg}");
    std::process::exit(2);
}

struct Args {
    party: usize,
    stack: DeployStack,
    seed: u64,
    scenario: Scenario,
    recovered: bool,
}

fn parse_args() -> Args {
    let mut party = None;
    let mut stack = None;
    let mut seed = None;
    let mut scenario = None;
    let mut recovered = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fatal(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--party" => {
                party = value("--party").parse().ok();
            }
            "--stack" => {
                stack = DeployStack::from_label(&value("--stack"));
            }
            "--seed" => {
                seed = value("--seed").parse().ok();
            }
            "--scenario" => {
                let spec = value("--scenario");
                scenario = Some(
                    Scenario::parse(&spec)
                        .unwrap_or_else(|| fatal(&format!("scenario {spec:?} does not parse"))),
                );
            }
            "--recovered" => recovered = true,
            other => fatal(&format!("unknown argument {other:?}")),
        }
    }
    let scenario = scenario.unwrap_or_else(|| fatal("--scenario is required"));
    let party = party.unwrap_or_else(|| fatal("--party is required"));
    if party >= scenario.n {
        fatal(&format!(
            "--party {party} out of range for n={}",
            scenario.n
        ));
    }
    Args {
        party,
        stack: stack.unwrap_or_else(|| fatal("--stack must be ba or common-subset")),
        seed: seed.unwrap_or_else(|| fatal("--seed is required")),
        scenario,
        recovered,
    }
}

/// One established peer link: a writer-thread queue plus the generation
/// that keeps events from a replaced socket out of the current one.
struct Link {
    tx: Sender<Vec<u8>>,
    gen: u64,
}

struct Daemon {
    me: PartyId,
    node: aft_sim::Node,
    session: aft_sim::SessionId,
    links: Vec<Option<Link>>,
    /// Every envelope ever sent to each peer, for replay when that peer
    /// reconnects after a supervisor restart.
    outbox: Vec<Vec<Vec<u8>>>,
    sent: u64,
    delivered: u64,
    output_reported: bool,
    stack: DeployStack,
}

impl Daemon {
    /// Installs (or replaces) the link to `party` and spawns its reader
    /// and writer threads. When the peer announced itself as recovered,
    /// the full outbox is replayed ahead of new traffic.
    fn add_link(&mut self, party: usize, recovered: bool, stream: TcpStream, tx: &Sender<Event>) {
        let gen = self.links[party].as_ref().map_or(0, |l| l.gen + 1);
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("aft-partyd: clone link to {party}: {e}");
                return;
            }
        };
        let events = tx.clone();
        std::thread::spawn(move || {
            let mut reader = reader;
            loop {
                match read_frame(&mut reader) {
                    Ok(Some(bytes)) => {
                        if events
                            .send(Event::Frame {
                                from: party,
                                gen,
                                bytes,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = events.send(Event::PeerGone { party, gen });
                        return;
                    }
                }
            }
        });
        let (wtx, wrx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = channel();
        std::thread::spawn(move || {
            let mut stream = stream;
            while let Ok(bytes) = wrx.recv() {
                if write_frame(&mut stream, &bytes).is_err() {
                    return; // reader side reports the loss
                }
            }
        });
        if recovered {
            for frame in &self.outbox[party] {
                let _ = wtx.send(frame.clone());
            }
        }
        self.links[party] = Some(Link { tx: wtx, gen });
    }

    fn links_up(&self) -> usize {
        self.links.iter().filter(|l| l.is_some()).count()
    }

    /// Routes a batch of sends: self-addressed envelopes are delivered
    /// locally (breadth-first, like the simulator's queue), the rest are
    /// encoded once and handed to the per-peer writer.
    fn dispatch(&mut self, out: Vec<Outgoing>) {
        let mut pending: VecDeque<Outgoing> = out.into();
        while let Some(o) = pending.pop_front() {
            self.sent += 1;
            if o.to == self.me {
                let mut more = Vec::new();
                if self.node.deliver(self.me, o.session, o.payload, &mut more) {
                    self.delivered += 1;
                }
                pending.extend(more);
                continue;
            }
            let mut buf = Vec::new();
            if !encode_envelope(self.me, &o.session, &o.payload, &mut buf) {
                // Typed outputs never cross the wire; nothing honest
                // emits one as a send, so just surface and drop.
                eprintln!("aft-partyd: dropping non-wire payload to {}", o.to.0);
                continue;
            }
            self.outbox[o.to.0].push(buf.clone());
            if let Some(link) = &self.links[o.to.0] {
                let _ = link.tx.send(buf);
            }
        }
        self.report_output();
    }

    /// Prints the root session's output once, as soon as it exists.
    fn report_output(&mut self) {
        if self.output_reported {
            return;
        }
        if let Some(payload) = self.node.output(&self.session) {
            if let Some(text) = self.stack.render_output(payload) {
                println!("output {text}");
                let _ = std::io::stdout().flush();
                self.output_reported = true;
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let registry = standard_registry();
    let config = args.scenario.config(args.seed);
    let me = PartyId(args.party);
    let n = args.scenario.n;

    let listener =
        TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| fatal(&format!("bind: {e}")));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| fatal(&format!("local_addr: {e}")));
    println!("ready {addr}");
    let _ = std::io::stdout().flush();

    let (tx, rx) = channel::<Event>();

    // Supervisor control lines.
    let ctrl = tx.clone();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) => {
                    if ctrl.send(Event::Ctrl(Some(l))).is_err() {
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        let _ = ctrl.send(Event::Ctrl(None));
    });

    // Peer accept loop: hello is [u32 party][u8 recovered].
    let accept = tx.clone();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut hello = [0u8; HELLO_LEN];
            if stream.read_exact(&mut hello).is_err() {
                continue;
            }
            let party = u32::from_le_bytes([hello[0], hello[1], hello[2], hello[3]]) as usize;
            let recovered = hello[4] != 0;
            if accept
                .send(Event::Link {
                    party,
                    recovered,
                    stream,
                })
                .is_err()
            {
                return;
            }
        }
    });

    let mut daemon = Daemon {
        me,
        node: party_node(&config, args.party),
        session: args.stack.session(),
        links: (0..n).map(|_| None).collect(),
        outbox: vec![Vec::new(); n],
        sent: 0,
        delivered: 0,
        output_reported: false,
        stack: args.stack,
    };
    let mut meshed_reported = false;
    let mut started = false;

    loop {
        let Ok(event) = rx.recv() else { break };
        match event {
            Event::Ctrl(None) => break,
            Event::Ctrl(Some(line)) => {
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("peers") => {
                        let book: Vec<String> = words.map(str::to_string).collect();
                        if book.len() != n {
                            fatal(&format!("peers line has {} entries, want {n}", book.len()));
                        }
                        // Fresh daemons dial every lower-numbered party
                        // and accept the rest; a restarted daemon dials
                        // everyone (its peers' dials are long gone).
                        let targets: Vec<usize> = (0..n)
                            .filter(|&i| i != args.party && (args.recovered || i < args.party))
                            .collect();
                        for target in targets {
                            let addr = book[target].clone();
                            let hello_tx = tx.clone();
                            let (my_id, recovered) = (args.party, args.recovered);
                            std::thread::spawn(move || {
                                // The peer printed `ready` before the
                                // supervisor released the address book,
                                // so a short retry loop is enough.
                                for _ in 0..250 {
                                    if let Ok(mut stream) = TcpStream::connect(&addr) {
                                        let mut hello = [0u8; HELLO_LEN];
                                        hello[..4].copy_from_slice(&(my_id as u32).to_le_bytes());
                                        hello[4] = recovered as u8;
                                        if stream.write_all(&hello).is_ok() {
                                            let _ = hello_tx.send(Event::Link {
                                                party: target,
                                                recovered: false,
                                                stream,
                                            });
                                            return;
                                        }
                                    }
                                    std::thread::sleep(Duration::from_millis(20));
                                }
                                eprintln!("aft-partyd: cannot reach party {target} at {addr}");
                            });
                        }
                    }
                    Some("go") if !started => {
                        started = true;
                        match instance_for(&args.scenario, &registry, args.stack, me, args.seed) {
                            Ok((instance, crash)) => {
                                let out = daemon.node.spawn(daemon.session.clone(), instance);
                                if crash {
                                    // Whole-party crash at spawn: the
                                    // initial sends are retracted, as
                                    // on every in-process backend.
                                    daemon.node.crash();
                                } else {
                                    daemon.dispatch(out);
                                }
                            }
                            Err(e) => fatal(&e),
                        }
                    }
                    Some("shutdown") => break,
                    _ => {}
                }
            }
            Event::Link {
                party,
                recovered,
                stream,
            } => {
                if party >= n || party == args.party {
                    continue;
                }
                daemon.add_link(party, recovered, stream, &tx);
                if !meshed_reported && daemon.links_up() == n - 1 {
                    meshed_reported = true;
                    println!("meshed");
                    let _ = std::io::stdout().flush();
                }
            }
            Event::Frame { from, gen, bytes } => {
                if daemon.links[from].as_ref().is_none_or(|l| l.gen != gen) {
                    continue; // stale link generation
                }
                let Some((src, session, payload)) = decode_envelope(&bytes) else {
                    eprintln!("aft-partyd: malformed envelope header from {from}");
                    continue;
                };
                let mut out = Vec::new();
                if daemon.node.deliver(src, session, payload, &mut out) {
                    daemon.delivered += 1;
                }
                daemon.dispatch(out);
            }
            Event::PeerGone { party, gen } => {
                if daemon.links[party].as_ref().is_some_and(|l| l.gen == gen) {
                    daemon.links[party] = None;
                }
            }
        }
    }
    println!(
        "metrics sent={} delivered={}",
        daemon.sent, daemon.delivered
    );
    println!("bye");
    let _ = std::io::stdout().flush();
}
