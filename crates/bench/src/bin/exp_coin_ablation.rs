//! E9 — ablations on the strong coin: substrate quality (real SVSS-based
//! weak coins vs ideal oracle coins inside the BAs), iteration count k
//! (scaled vs paper-exact), and message complexity vs n.
//!
//! The paper-exact run executes `k = 4⌈(e/(ε·π))²·n⁴⌉` SVSS iterations —
//! thousands of sequential SVSS+CommonSubset rounds — exactly as
//! Algorithm 1 prescribes.

use aft_bench::{output_arg, record_run, run_coin, runtime_arg, trials, Adversary};
use aft_core::{CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind};
use aft_sim::{
    run_trials, scheduler_by_name, NetConfig, PartyId, SessionId, SessionTag, SimNetwork,
    StopReason,
};

fn main() {
    let out = output_arg();
    out.note("# E9 — Coin ablations");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(30);

    // (a) substrate quality: oracle vs weak-shared inner coins.
    let mut rows = Vec::new();
    for coin in [CoinKind::Oracle(0xA11), CoinKind::WeakShared] {
        let outcomes = run_trials(0..n_trials, 24, |seed| {
            let coin = match coin {
                CoinKind::Oracle(_) => CoinKind::Oracle(seed ^ 0xA11),
                other => other,
            };
            let o = run_coin(&rt, 4, 1, seed, 2, coin, "random", Adversary::None);
            (o.agreement && o.all_terminated, o.metrics.sent, o.steps)
        });
        let ok = outcomes.iter().filter(|o| o.0).count();
        let msgs = outcomes.iter().map(|o| o.1).sum::<u64>() / outcomes.len() as u64;
        let steps = outcomes.iter().map(|o| o.2).sum::<u64>() / outcomes.len() as u64;
        rows.push(vec![
            match coin {
                CoinKind::Oracle(_) => "oracle (ideal functionality)".to_string(),
                CoinKind::WeakShared => "weak shared (SVSS-based, full IT)".to_string(),
                CoinKind::Local => unreachable!(),
            },
            format!("{ok}/{}", outcomes.len()),
            msgs.to_string(),
            steps.to_string(),
        ]);
    }
    out.table(
        &format!("(a) inner-BA coin substrate, CoinFlip k=2, n=4, {n_trials} runs"),
        &[
            "inner coin",
            "agreed+terminated",
            "avg messages",
            "avg steps",
        ],
        &rows,
    );

    // (b) message complexity vs n at fixed k.
    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2), (10, 3)] {
        let outcomes = run_trials(0..n_trials.min(10), 24, |seed| {
            let o = run_coin(
                &rt,
                n,
                t,
                seed,
                1,
                CoinKind::Oracle(seed ^ 3),
                "random",
                Adversary::None,
            );
            (o.metrics.sent, o.steps)
        });
        let msgs = outcomes.iter().map(|o| o.0).sum::<u64>() / outcomes.len() as u64;
        let steps = outcomes.iter().map(|o| o.1).sum::<u64>() / outcomes.len() as u64;
        rows.push(vec![
            format!("{n}/{t}"),
            msgs.to_string(),
            steps.to_string(),
            format!("{:.1}", msgs as f64 / (n * n * n) as f64),
        ]);
    }
    out.table(
        "(b) cost vs n (k=1 iteration)",
        &["n/t", "avg messages", "avg steps", "messages / n³"],
        &rows,
    );

    // (c) k-sweep: the majority's robustness budget.
    let mut rows = Vec::new();
    for &k in &[1usize, 2, 4, 8, 16] {
        let outcomes = run_trials(0..n_trials.min(15), 24, |seed| {
            let o = run_coin(
                &rt,
                4,
                1,
                seed,
                k,
                CoinKind::Oracle(seed ^ 0x99),
                "random",
                Adversary::None,
            );
            (o.agreement, o.metrics.sent)
        });
        let agreed = outcomes.iter().filter(|o| o.0).count();
        let msgs = outcomes.iter().map(|o| o.1).sum::<u64>() / outcomes.len() as u64;
        rows.push(vec![
            k.to_string(),
            format!("{agreed}/{}", outcomes.len()),
            msgs.to_string(),
        ]);
    }
    out.table(
        "(c) iteration count k (n=4)",
        &["k", "agreement", "avg messages"],
        &rows,
    );

    // (d) PAPER-EXACT mode: Algorithm 1 with the real k formula.
    let epsilon = std::env::var("AFT_EPSILON")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4f64);
    let params = CoinFlipParams::PaperExact { epsilon };
    let k = params.iterations(4);
    out.note(&format!(
        "\n(d) paper-exact run: n=4, ε={epsilon} ⇒ k = 4⌈(e/(επ))²·n⁴⌉ = {k} iterations…"
    ));
    let t0 = std::time::Instant::now();
    let mut net = SimNetwork::new(
        NetConfig::new(4, 1, 424242),
        scheduler_by_name("random").unwrap(),
    );
    let sid = SessionId::root().child(SessionTag::new("paper-coin", 0));
    for p in 0..4 {
        net.spawn(
            PartyId(p),
            sid.clone(),
            Box::new(CoinFlip::new(params, CoinKind::Oracle(0xF00D))),
        );
    }
    let report = net.run(u64::MAX);
    record_run(&report.metrics);
    assert_eq!(report.stop, StopReason::Quiescent);
    let outs: Vec<CoinFlipOutput> = (0..4)
        .map(|p| {
            *net.output_as::<CoinFlipOutput>(PartyId(p), &sid)
                .expect("terminates")
        })
        .collect();
    let agreed = outs.windows(2).all(|w| w[0].value == w[1].value);
    out.table(
        "(d) paper-exact Algorithm 1",
        &["ε", "k", "agreed", "coin", "messages", "steps", "wall time"],
        &[vec![
            epsilon.to_string(),
            k.to_string(),
            agreed.to_string(),
            (outs[0].value as u8).to_string(),
            report.metrics.sent.to_string(),
            report.steps.to_string(),
            format!("{:.1?}", t0.elapsed()),
        ]],
    );
    out.note("\nthe scaled-k experiments (E2) measure the same estimator with affordable");
    out.note("sample counts; the paper-exact run here executes Algorithm 1 verbatim.");
    out.backend_counters();
}
