//! E6 — Definition 3.4 / Theorem C.2: CommonSubset agreement, size, and
//! soundness of membership.

use aft_bench::{output_arg, run_protocol, runtime_arg, trials, Adversary};
use aft_core::{CoinKind, CommonSubsetInstance};
use aft_sim::{run_trials, PartyId};

fn main() {
    let out = output_arg();
    out.note("# E6 — CommonSubset (Algorithm 4 / Appendix C)");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(150);

    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2), (10, 3)] {
        for adversary in [Adversary::None, Adversary::CrashT] {
            for sched in ["random", "lifo"] {
                let outcomes = run_trials(0..n_trials, 24, |seed| {
                    let o =
                        run_protocol::<Vec<PartyId>>(&rt, n, t, seed, sched, adversary, |_, _| {
                            Box::new(CommonSubsetInstance::new(
                                n - t,
                                CoinKind::Oracle(seed ^ 0xC5),
                                true,
                            ))
                        });
                    let size_ok = o.outputs.first().is_some_and(|s| s.len() >= n - t);
                    // Soundness: silent parties never announced, so they
                    // cannot be members.
                    let sound = o
                        .outputs
                        .first()
                        .is_some_and(|s| s.iter().all(|p| !adversary.is_byz(p.0, n, t)));
                    (
                        o.all_terminated,
                        o.agreement,
                        size_ok,
                        sound,
                        o.metrics.sent,
                    )
                });
                let total = outcomes.len();
                let term = outcomes.iter().filter(|o| o.0).count();
                let agree = outcomes.iter().filter(|o| o.1).count();
                let size_ok = outcomes.iter().filter(|o| o.2).count();
                let sound = outcomes.iter().filter(|o| o.3).count();
                let avg_msgs = outcomes.iter().map(|o| o.4).sum::<u64>() / total as u64;
                rows.push(vec![
                    format!("{n}/{t}"),
                    adversary.label().into(),
                    sched.into(),
                    format!("{term}/{total}"),
                    format!("{agree}/{total}"),
                    format!("{size_ok}/{total}"),
                    format!("{sound}/{total}"),
                    avg_msgs.to_string(),
                ]);
            }
        }
    }
    out.table(
        &format!("CommonSubset(Q, n−t) over {n_trials} runs per row"),
        &[
            "n/t",
            "adversary",
            "scheduler",
            "terminated",
            "agreement",
            "|S| ≥ n−t",
            "members all announced",
            "avg messages",
        ],
        &rows,
    );
    out.note("\npaper claims (Def 3.4): common output set, |S| ≥ k, every member backed by");
    out.note("an honest predicate — all three at 100% above; message cost grows with n");
    out.note("as n parallel BA instances (the n² → n⁴ ladder the coin sits on).");
    out.backend_counters();
}
