//! E13 — process-per-party deployment with supervised crash/restart.
//!
//! Runs a reference stack with one `aft-partyd` OS process per party,
//! wired into a loopback TCP mesh and supervised over stdin/stdout (see
//! `aft_bench::deployment`). `corrupt=recover:<vt>@p` maps onto a real
//! SIGKILL after `vt` milliseconds plus a `--recovered` respawn whose
//! peers replay their outboxes.
//!
//! ```sh
//! # one scenario
//! cargo run --release -p aft-bench --bin exp_deployment -- \
//!     --scenario 'n=4,t=1,corrupt=recover:300@3,rt=proc' --stack ba --seed 2
//! # the CI smoke suite (BA, common subset, and a kill/restart leg)
//! cargo run --release -p aft-bench --bin exp_deployment -- --smoke
//! ```
//!
//! Exits nonzero iff any run reports an invariant violation. Per-party
//! daemon stderr goes to `--log-dir` (default `target/deploy-logs`),
//! where CI picks it up as an artifact on failure.

use aft_bench::deployment::{run_deployment, DeployOptions, DeployStack};
use aft_bench::output_arg;
use std::path::PathBuf;
use std::time::Duration;

struct Cli {
    scenario: Option<String>,
    stack: DeployStack,
    seed: u64,
    smoke: bool,
    timeout: Duration,
    log_dir: PathBuf,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        scenario: None,
        stack: DeployStack::Ba,
        seed: 2,
        smoke: false,
        timeout: Duration::from_secs(60),
        log_dir: PathBuf::from("target/deploy-logs"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scenario" => cli.scenario = Some(value("--scenario")),
            "--stack" => {
                let label = value("--stack");
                cli.stack = DeployStack::from_label(&label).unwrap_or_else(|| {
                    eprintln!("error: unknown --stack {label:?} (expected ba or common-subset)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                cli.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed must be a u64");
                    std::process::exit(2);
                });
            }
            "--timeout-secs" => {
                cli.timeout = Duration::from_secs(value("--timeout-secs").parse().unwrap_or(60));
            }
            "--log-dir" => cli.log_dir = PathBuf::from(value("--log-dir")),
            "--smoke" => cli.smoke = true,
            "--json" => {} // handled by output_arg
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let out = output_arg();
    let runs: Vec<(String, DeployStack, u64)> = if cli.smoke {
        vec![
            ("n=4,t=1,rt=proc".into(), DeployStack::Ba, 2),
            ("n=4,t=1,rt=proc".into(), DeployStack::CommonSubset, 9),
            (
                // The kill/restart leg: party 3 is SIGKILLed 300 ms in and
                // respawned; its peers replay their outboxes and the
                // fresh instance must still reach the unanimous output.
                "n=4,t=1,corrupt=recover:300@3,rt=proc".into(),
                DeployStack::Ba,
                3,
            ),
        ]
    } else {
        let Some(spec) = cli.scenario.clone() else {
            eprintln!("error: pass --scenario '<spec with rt=proc>' or --smoke");
            std::process::exit(2);
        };
        vec![(spec, cli.stack, cli.seed)]
    };

    out.note(&format!(
        "deployment: one aft-partyd process per party, logs in {}",
        cli.log_dir.display()
    ));
    let mut rows = Vec::new();
    let mut failed = false;
    for (spec, stack, seed) in runs {
        let mut opts = DeployOptions::new(&spec, stack, seed);
        opts.timeout = cli.timeout;
        opts.log_dir = Some(cli.log_dir.clone());
        let report = match run_deployment(&opts) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {spec} ({}): {e}", stack.label());
                std::process::exit(2);
            }
        };
        let outputs: Vec<String> = report
            .outputs
            .iter()
            .map(|o| o.clone().unwrap_or_else(|| "-".into()))
            .collect();
        if !report.violations.is_empty() {
            failed = true;
            for v in &report.violations {
                eprintln!("VIOLATION [{} {spec} seed={seed}]: {v}", stack.label());
            }
            let summary = cli
                .log_dir
                .join(format!("violations-{}.txt", stack.label()));
            let body = format!(
                "scenario: {spec}\nstack: {}\nseed: {seed}\noutputs: {outputs:?}\n{}\n",
                stack.label(),
                report.violations.join("\n")
            );
            if let Err(e) =
                std::fs::create_dir_all(&cli.log_dir).and_then(|()| std::fs::write(&summary, body))
            {
                eprintln!("error: cannot write {}: {e}", summary.display());
            }
        }
        rows.push(vec![
            stack.label().to_string(),
            spec,
            seed.to_string(),
            outputs.join(" "),
            report.restarts.to_string(),
            report.sent.to_string(),
            report.delivered.to_string(),
            if report.violations.is_empty() {
                "ok".into()
            } else {
                format!("{} violation(s)", report.violations.len())
            },
        ]);
    }
    out.table(
        "E13 — process-per-party deployment",
        &[
            "stack",
            "scenario",
            "seed",
            "outputs (per party)",
            "restarts",
            "sent",
            "delivered",
            "verdict",
        ],
        &rows,
    );
    if failed {
        std::process::exit(1);
    }
}
