//! E8 — the coin-quality gap the paper's introduction frames: binary BA
//! with local coins (Ben-Or'83) terminates almost surely but needs
//! exponentially many rounds as n grows; shared coins make it constant.
//!
//! Measures rounds-to-termination (via phase-1 vote traffic, which is
//! proportional to rounds) and steps for LocalCoin vs WeakSharedCoin vs
//! OracleCoin under adversarially split inputs.

use aft_ba::{BinaryBa, CoinSource, LocalCoin, OracleCoin, WeakSharedCoin};
use aft_bench::{output_arg, record_run, runtime_arg, session, trials};
use aft_sim::{run_trials, NetConfig, PartyId, RuntimeExt, StopReason};

fn coin_source(name: &str, seed: u64) -> Box<dyn CoinSource> {
    match name {
        "local" => Box::new(LocalCoin),
        "oracle" => Box::new(OracleCoin::new(seed)),
        "weak-shared" => Box::new(WeakSharedCoin),
        _ => unreachable!(),
    }
}

fn main() {
    let out = output_arg();
    out.note("# E8 — BA baselines: local coin vs shared coin");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(60);

    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2), (10, 3)] {
        for coin in ["local", "weak-shared", "oracle"] {
            // weak-shared at n=10 is expensive; scale trials down.
            let runs = if coin == "weak-shared" {
                (n_trials / 6).max(5)
            } else {
                n_trials
            };
            let outcomes = run_trials(0..runs, 24, |seed| {
                let mut net = rt.make(NetConfig::new(n, t, seed), "random");
                let tracing = rt.attach_trace(net.as_mut());
                let sid = session("ba");
                for p in 0..n {
                    net.spawn(
                        PartyId(p),
                        sid.clone(),
                        Box::new(BinaryBa::new(p % 2 == 0, coin_source(coin, seed ^ 0xE8))),
                    );
                }
                let report = net.run(4_000_000_000);
                record_run(&report.metrics);
                if tracing {
                    rt.dump_trace(net.as_mut(), &format!("ba n={n} coin={coin} seed={seed}"));
                }
                assert_eq!(report.stop, StopReason::Quiescent);
                let outs: Vec<bool> = (0..n)
                    .filter_map(|p| net.output_as::<bool>(PartyId(p), &sid).copied())
                    .collect();
                assert_eq!(outs.len(), n, "termination");
                assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
                // Phase-1 A-Cast traffic is proportional to rounds run.
                let v1 = report.metrics.sent_by_kind("bav1");
                // one round of phase-1 for n parties ≈ n * (n + 2n^2) sends
                let per_round = (n * (n + 2 * n * n)) as f64;
                (v1 as f64 / per_round, report.steps)
            });
            let rounds: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
            let mean_rounds = rounds.iter().sum::<f64>() / rounds.len() as f64;
            let max_rounds = rounds.iter().cloned().fold(0.0f64, f64::max);
            let mean_steps = outcomes.iter().map(|o| o.1).sum::<u64>() / outcomes.len() as u64;
            rows.push(vec![
                format!("{n}/{t}"),
                coin.into(),
                format!("{}", outcomes.len()),
                format!("{mean_rounds:.2}"),
                format!("{max_rounds:.2}"),
                mean_steps.to_string(),
            ]);
        }
    }
    out.table(
        "Binary BA with split inputs (half propose 1), random scheduler",
        &[
            "n/t",
            "coin source",
            "runs",
            "mean est. rounds",
            "max est. rounds",
            "mean steps",
        ],
        &rows,
    );
    out.note("\nexpected shape (paper's framing): LocalCoin round counts grow with n");
    out.note("(2^Θ(n) in the worst case — Ben-Or'83); shared-coin rounds stay constant.");
    out.note("This is the gap that motivates building a *strong* coin at n = 3t + 1.");

    // Standalone weak-coin quality: how often do all parties see the same
    // bit (the δ that BA liveness multiplies by), and is it fair?
    use aft_ba::WeakCoinInstance;
    let wc_trials = trials(60);
    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        let outcomes = run_trials(0..wc_trials, 24, |seed| {
            let mut net = rt.make(NetConfig::new(n, t, seed), "random");
            let sid = session("wcoin");
            for p in 0..n {
                net.spawn(PartyId(p), sid.clone(), Box::new(WeakCoinInstance::new()));
            }
            record_run(&net.run(4_000_000_000).metrics);
            let bits: Vec<bool> = (0..n)
                .filter_map(|p| net.output_as::<bool>(PartyId(p), &sid).copied())
                .collect();
            let terminated = bits.len() == n;
            let agree = terminated && bits.windows(2).all(|w| w[0] == w[1]);
            (terminated, agree, bits.first().copied())
        });
        let total = outcomes.len();
        let term = outcomes.iter().filter(|o| o.0).count();
        let agree = outcomes.iter().filter(|o| o.1).count();
        let ones = outcomes.iter().filter(|o| o.2 == Some(true)).count();
        rows.push(vec![
            format!("{n}/{t}"),
            format!("{term}/{total}"),
            format!("{agree}/{total}  (δ ≈ {:.2})", agree as f64 / total as f64),
            format!("{:.2}", ones as f64 / total as f64),
        ]);
    }
    out.table(
        &format!("Standalone weak shared coin quality, {wc_trials} flips per row"),
        &[
            "n/t",
            "terminated",
            "all parties same bit",
            "Pr[party 0 sees 1]",
        ],
        &rows,
    );
    out.note("\nthe weak coin terminates always but only agrees with probability δ < 1 —");
    out.note("exactly the deficiency the paper's CoinFlip (strong coin, agreement w.p. 1)");
    out.note("removes by adding CommonSubset + k-fold majority + one BA.");
    out.backend_counters();
}
