//! E4 — Theorem 4.3: FairChoice(m) hits every majority subset with
//! probability > 1/2.
//!
//! For each m, estimates the outcome distribution and evaluates the
//! *worst-case* majority subset G (the ⌈(m+1)/2⌉ least likely outcomes —
//! the adversary's best choice of G).

use aft_bench::{fmt_prob, output_arg, run_fair_choice, runtime_arg, trials, Adversary};
use aft_core::CoinKind;
use aft_sim::run_trials;

fn main() {
    let out = output_arg();
    out.note("# E4 — FairChoice validity (Theorem 4.3)");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(200);

    let mut rows = Vec::new();
    for &m in &[3usize, 5] {
        for adversary in [Adversary::None, Adversary::CrashOne] {
            let outcomes = run_trials(0..n_trials, 24, |seed| {
                let o = run_fair_choice(
                    &rt,
                    4,
                    1,
                    seed,
                    m,
                    1,
                    CoinKind::Oracle(seed.wrapping_mul(0x9E3779B97F4A7C15)),
                    "random",
                    adversary,
                );
                assert!(o.agreement, "FairChoice must agree");
                o.outputs.first().copied()
            });
            let total = outcomes.len();
            let mut hist = vec![0usize; m];
            for o in outcomes.iter().flatten() {
                hist[*o] += 1;
            }
            // Worst-case majority subset: the (m+1)/2 least-frequent outcomes.
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by_key(|&i| hist[i]);
            let g_size = m / 2 + 1;
            let worst_g: usize = order[..g_size].iter().map(|&i| hist[i]).sum();
            rows.push(vec![
                m.to_string(),
                adversary.label().into(),
                format!("{hist:?}"),
                format!("{g_size} of {m}"),
                fmt_prob(worst_g, total),
                "> 0.5".into(),
            ]);
        }
    }
    out.table(
        &format!("FairChoice(m) over {n_trials} runs per row (n=4, t=1)"),
        &[
            "m",
            "adversary",
            "outcome histogram",
            "|G| (worst-case majority)",
            "Pr[output ∈ G]",
            "paper bound",
        ],
        &rows,
    );
    out.note("\nnote: with an unbiased agreed coin the outcome distribution is near-uniform,");
    out.note("so even the adversarially-chosen majority subset keeps > 1/2 of the mass —");
    out.note("the slack the paper engineers via ε = 1/(100·m·log₂ m).");
    out.backend_counters();
}
