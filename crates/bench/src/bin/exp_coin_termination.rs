//! E3 — Theorem 3.5 (termination): CoinFlip almost-surely terminates.
//!
//! Reports the distribution of delivery steps and messages across seeds
//! and schedulers: every run terminates, the tail is short, no scheduler
//! starves the protocol past the fairness cap.

use aft_bench::{output_arg, run_coin, runtime_arg, trials, Adversary};
use aft_core::CoinKind;
use aft_sim::run_trials;

fn quantiles(mut xs: Vec<u64>) -> (u64, u64, u64, u64) {
    xs.sort_unstable();
    let q = |f: f64| xs[((xs.len() - 1) as f64 * f) as usize];
    (xs[0], q(0.5), q(0.95), *xs.last().unwrap())
}

fn main() {
    let out = output_arg();
    out.note("# E3 — Coin termination distribution");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(100);

    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        for sched in ["fifo", "random", "lifo", "window4", "starve:0"] {
            let outcomes = run_trials(0..n_trials, 24, |seed| {
                let o = run_coin(
                    &rt,
                    n,
                    t,
                    seed,
                    2,
                    CoinKind::Oracle(seed ^ 0x5555),
                    sched,
                    Adversary::None,
                );
                (o.all_terminated, o.steps, o.metrics.sent)
            });
            let all_term = outcomes.iter().all(|o| o.0);
            let (s_min, s_med, s_p95, s_max) = quantiles(outcomes.iter().map(|o| o.1).collect());
            let (m_min, m_med, _, m_max) = quantiles(outcomes.iter().map(|o| o.2).collect());
            rows.push(vec![
                format!("{n}/{t}"),
                sched.into(),
                format!("{all_term}"),
                format!("{s_min} / {s_med} / {s_p95} / {s_max}"),
                format!("{m_min} / {m_med} / {m_max}"),
            ]);
        }
    }
    out.table(
        &format!("CoinFlip (k=2) over {n_trials} seeds per row — all runs must terminate"),
        &[
            "n/t",
            "scheduler",
            "all terminated",
            "steps min/med/p95/max",
            "messages min/med/max",
        ],
        &rows,
    );
    out.note("\npaper claim: almost-sure termination under any fair scheduling —");
    out.note("observed: termination in every run, with bounded tails across all schedulers.");
    out.backend_counters();
}
