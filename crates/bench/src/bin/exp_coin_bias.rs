//! E2 — Theorem 3.5: CoinFlip(ε) is ε-biased and always agreed.
//!
//! For each configuration, runs many seeded coin flips and reports
//! `Pr[all honest output 0]`, `Pr[all honest output 1]` (each must be
//! ≥ 1/2 − ε) and the agreement rate (must be 1.0).

use aft_bench::{fmt_prob, output_arg, run_coin, runtime_arg, trials, Adversary};
use aft_core::CoinKind;
use aft_sim::run_trials;

fn main() {
    let out = output_arg();
    out.note("# E2 — Strong common coin bias (Theorem 3.5)");
    let rt = runtime_arg();
    rt.announce();
    let n_trials = trials(200);

    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        for &k in &[1usize, 3, 9] {
            for adversary in [Adversary::None, Adversary::CrashT] {
                for sched in ["random", "lifo"] {
                    let outcomes = run_trials(0..n_trials, 24, |seed| {
                        // Decorrelate the oracle salt from the scheduler seed.
                        let coin = CoinKind::Oracle(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xABCD);
                        let o = run_coin(&rt, n, t, seed, k, coin, sched, adversary);
                        (o.all_terminated, o.agreement, o.outputs.first().copied())
                    });
                    let total = outcomes.len();
                    let terminated = outcomes.iter().filter(|o| o.0).count();
                    let agreed = outcomes.iter().filter(|o| o.1).count();
                    let zeros = outcomes
                        .iter()
                        .filter(|o| o.1 && o.2 == Some(false))
                        .count();
                    let ones = outcomes.iter().filter(|o| o.1 && o.2 == Some(true)).count();
                    rows.push(vec![
                        format!("{n}/{t}"),
                        k.to_string(),
                        adversary.label().into(),
                        sched.into(),
                        format!("{terminated}/{total}"),
                        format!("{agreed}/{total}"),
                        fmt_prob(zeros, total),
                        fmt_prob(ones, total),
                    ]);
                }
            }
        }
    }
    out.table(
        &format!("CoinFlip outcomes over {n_trials} seeded runs per row (inner BA coin: oracle)"),
        &[
            "n/t",
            "k (iterations)",
            "adversary",
            "scheduler",
            "terminated",
            "agreement",
            "Pr[coin=0]",
            "Pr[coin=1]",
        ],
        &rows,
    );
    out.note("\npaper bound: Pr[coin=b] ≥ 1/2 − ε for each b; agreement always.");
    out.note("(k relates to ε through k = 4⌈(e/(επ))²n⁴⌉ in paper-exact mode — see E9.)");
    out.note("scaled runs use ODD k: the paper's majority with even k has a tie mass of");
    out.note("Θ(1/√k) that resolves to 0 — negligible at the paper's k = Θ(n⁴), visible");
    out.note("at k ∈ {2, 8} (measured ≈ binomial prediction, see EXPERIMENTS.md note).");

    // Demonstrate the even-k tie effect explicitly (a reproduction note).
    let mut rows = Vec::new();
    for &k in &[2usize, 8] {
        let outcomes = run_trials(0..n_trials, 24, |seed| {
            let coin = CoinKind::Oracle(seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xABCD);
            let o = run_coin(&rt, 4, 1, seed, k, coin, "random", Adversary::None);
            (o.agreement, o.outputs.first().copied())
        });
        let total = outcomes.len();
        let ones = outcomes.iter().filter(|o| o.0 && o.1 == Some(true)).count();
        // Binomial prediction: Pr[X > k/2], X ~ Bin(k, 1/2).
        let predict: f64 = (k / 2 + 1..=k)
            .map(|i| {
                let mut c = 1f64;
                for j in 0..i {
                    c = c * (k - j) as f64 / (j + 1) as f64;
                }
                c / 2f64.powi(k as i32)
            })
            .sum();
        rows.push(vec![
            k.to_string(),
            fmt_prob(ones, total),
            format!("{predict:.3}"),
        ]);
    }
    out.table(
        "Reproduction note: even-k majority ties resolve to 0 (vanishes as k → paper scale)",
        &[
            "k (even)",
            "measured Pr[coin=1]",
            "binomial tie prediction Pr[X > k/2]",
        ],
        &rows,
    );

    // Full IT configuration: weak shared coin inside the BAs, smaller scale.
    let it_trials = trials(200).min(60);
    let outcomes = run_trials(0..it_trials, 24, |seed| {
        let o = run_coin(
            &rt,
            4,
            1,
            seed,
            1,
            CoinKind::WeakShared,
            "random",
            Adversary::None,
        );
        (o.all_terminated, o.agreement, o.outputs.first().copied())
    });
    let total = outcomes.len();
    let agreed = outcomes.iter().filter(|o| o.1).count();
    let zeros = outcomes
        .iter()
        .filter(|o| o.1 && o.2 == Some(false))
        .count();
    let ones = outcomes.iter().filter(|o| o.1 && o.2 == Some(true)).count();
    out.table(
        &format!("Fully information-theoretic stack (WeakShared inner coins), {it_trials} runs"),
        &[
            "n/t",
            "k",
            "terminated",
            "agreement",
            "Pr[coin=0]",
            "Pr[coin=1]",
        ],
        &[vec![
            "4/1".into(),
            "1".into(),
            format!("{}/{total}", outcomes.iter().filter(|o| o.0).count()),
            format!("{agreed}/{total}"),
            fmt_prob(zeros, total),
            fmt_prob(ones, total),
        ]],
    );
    out.backend_counters();
}
