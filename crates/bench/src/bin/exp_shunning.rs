//! E7 — the shunning budget: "fewer than n² shunning events can take
//! place overall", and binding failures only occur alongside shun events.
//!
//! Runs long SVSS campaigns against reveal-equivocating Byzantine parties
//! and tracks the cumulative shun counter, verifying it saturates far
//! below n² (each ordered pair shuns at most once) while every detected
//! attack run is followed by dropped influence for the attacker.
//!
//! The campaign interleaves share and reconstruct episodes on persistent
//! node state, which every backend now supports — `--runtime sim` (the
//! default), `--runtime sharded:<k>` and `--runtime threaded` all run the
//! full chain.

use aft_bench::{output_arg, record_run, runtime_arg, trials};
use aft_core::scenarios::standard_registry;
use aft_field::Fp;
use aft_sim::{
    NetConfig, PartyId, Payload, Runtime, RuntimeExt, Scenario, SessionId, SessionTag,
    SilentInstance,
};
use aft_svss::{ShareBundle, SvssRec, SvssShare};

fn main() {
    let out = output_arg();
    out.note("# E7 — Shunning dynamics (Definition 3.2's escape hatch)");
    let rt_spec = runtime_arg();
    rt_spec.announce();
    let registry = standard_registry();
    let instances = trials(40) as usize;

    let mut rows = Vec::new();
    for &(n, t) in &[(4usize, 1usize), (7, 2)] {
        // The adversary as data: the last party equivocates its reveal.
        // The runtime itself still comes from --runtime (the scenario's
        // corruption plan is backend-agnostic).
        let scenario = Scenario::parse(&format!("n={n},t={t},corrupt=equivocal-reveal@{}", n - 1))
            .expect("campaign scenario is valid");
        let mut net: Box<dyn Runtime> = rt_spec.make(NetConfig::new(n, t, 1234), "random");
        let tracing = rt_spec.attach_trace(net.as_mut());
        let mut shun_curve = Vec::new();
        let mut binding_violations_without_shun = 0usize;
        for i in 0..instances {
            let ssid = SessionId::root().child(SessionTag::new("svss-share", i as u64));
            let rsid = SessionId::root().child(SessionTag::new("svss-rec", i as u64));
            scenario
                .deploy_episode(net.as_mut(), &registry, "svss-share", &ssid, &[], |p, _| {
                    if p == PartyId(0) {
                        Box::new(SvssShare::dealer(PartyId(0), Fp::new(i as u64)))
                    } else {
                        Box::new(SvssShare::party(PartyId(0)))
                    }
                })
                .expect("share deploy");
            net.run(1_000_000_000);
            // Reconstruct; the registry hands the equivocator its bundle
            // (the carry) and everyone honest a plain SvssRec.
            let carries: Vec<Option<Payload>> = (0..n)
                .map(|p| net.output(PartyId(p), &ssid).cloned())
                .collect();
            scenario
                .deploy_episode(
                    net.as_mut(),
                    &registry,
                    "svss-rec",
                    &rsid,
                    &carries,
                    |_, c| match c.and_then(|c| c.downcast_ref::<ShareBundle>()) {
                        Some(b) => Box::new(SvssRec::new(b.clone())),
                        None => Box::new(SilentInstance),
                    },
                )
                .expect("rec deploy");
            net.run(1_000_000_000);
            // Binding check among honest reconstructors.
            let outs: Vec<Fp> = (0..n - 1)
                .filter_map(|p| net.output_as::<Fp>(PartyId(p), &rsid).copied())
                .collect();
            let consistent = outs.windows(2).all(|w| w[0] == w[1]);
            if !consistent && net.metrics().shun_events == 0 {
                binding_violations_without_shun += 1;
            }
            shun_curve.push(net.metrics().shun_events);
        }
        record_run(&net.metrics());
        if tracing {
            rt_spec.dump_trace(net.as_mut(), &format!("shunning campaign n={n}"));
        }
        let final_shuns = *shun_curve.last().unwrap();
        let saturation_at = shun_curve
            .iter()
            .position(|&s| s == final_shuns)
            .unwrap_or(0);
        rows.push(vec![
            format!("{n}/{t}"),
            instances.to_string(),
            final_shuns.to_string(),
            format!("{}", n * n),
            format!("instance {saturation_at}"),
            binding_violations_without_shun.to_string(),
        ]);
        out.note(&format!(
            "n={n}: cumulative shun curve (per instance): {:?}",
            shun_curve
        ));
    }
    out.table(
        &format!("{instances} sequential SVSS instances with a reveal-equivocating party"),
        &[
            "n/t",
            "SVSS instances",
            "total shun events",
            "n² bound",
            "curve saturates at",
            "binding violations w/o shun",
        ],
        &rows,
    );
    out.note("\npaper: each ordered pair shuns at most once ⇒ fewer than n² events ever;");
    out.note("after saturation the attacker's messages are dropped and later instances");
    out.note("run clean — exactly the budget the CoinFlip analysis charges against k.");
    out.backend_counters();
}
