//! E1 — Theorem 2.2: the AVSS lower bound, exhaustive + Monte-Carlo.
//!
//! Reproduces the paper's Section 2 as measurements: the toy AVSS's
//! claimed properties, the Claim 1 view-indistinguishability, and the
//! Claim 2 correctness violation.

use aft_bench::{fmt_prob, output_arg, runtime_arg, trials};
use aft_lowerbound::{claim2_exact, claim2_run, theorem_2_2_report, Claim2Randomness};
use rand::SeedableRng;

fn main() {
    let out = output_arg();
    out.note("# E1 — Lower bound (Theorem 2.2)");
    let rt = runtime_arg();
    if rt.label() != "sim" {
        out.note(&format!(
            "note: --runtime {} ignored — the lower-bound attacks are exhaustive local \
             computations with no message-passing runtime",
            rt.label()
        ));
    }
    let r = theorem_2_2_report();

    out.table(
        "Toy AVSS baseline (exhaustive over all 625 executions per secret)",
        &["property", "paper requirement", "measured"],
        &[
            vec![
                "honest-run correctness".into(),
                "≥ 2/3 + ε".into(),
                format!("{:.4} (exact)", r.honest_correctness),
            ],
            vec![
                "hiding (per-party view ⟂ secret)".into(),
                "perfect".into(),
                format!("exact match: {}", r.hiding_exact),
            ],
            vec![
                "termination".into(),
                "always".into(),
                "by construction (no waiting on D or on a crashed party)".into(),
            ],
        ],
    );

    out.table(
        "Claim 1 — equivocating dealer (exhaustive, 625 attack executions)",
        &["quantity", "paper claim", "measured"],
        &[
            vec![
                "A's view ~ π(0,A)".into(),
                "distributions equal".into(),
                format!("exact multiset match: {}", r.claim1_a_views_match),
            ],
            vec![
                "B's view ~ π(1,B)".into(),
                "distributions equal".into(),
                format!("exact multiset match: {}", r.claim1_b_views_match),
            ],
            vec![
                "honest outputs consistent (bound value ρ exists)".into(),
                "correctness holds with some r".into(),
                format!("{}", r.claim1_outputs_consistent),
            ],
        ],
    );

    let c2 = claim2_exact();
    // Monte-Carlo cross-check of the exhaustive numbers.
    let n_trials = trials(100_000);
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
    let mut wrong = 0usize;
    for _ in 0..n_trials {
        let o = claim2_run(Claim2Randomness::sample(&mut rng));
        if o.out_a.parity() {
            wrong += 1;
        }
    }

    out.table(
        "Claim 2 — simulating B vs honest dealer sharing 0",
        &["quantity", "paper claim", "measured"],
        &[
            vec![
                "A's view ~ V⁰_A".into(),
                "distributions equal (Lemma 2.10)".into(),
                format!("exact multiset match: {}", c2.views_match),
            ],
            vec![
                "Pr[A outputs 1] (exhaustive)".into(),
                "≥ 1/3 + ε/2".into(),
                format!("{:.4} (exactly 2/5)", c2.wrong_output_prob),
            ],
            vec![
                format!("Pr[A outputs 1] (Monte-Carlo, {n_trials} trials)"),
                "≈ 2/5".into(),
                fmt_prob(wrong, n_trials as usize),
            ],
            vec![
                "honest parties stay consistent".into(),
                "attack undetectable".into(),
                format!("{}", c2.honest_consistent),
            ],
        ],
    );

    out.table(
        "The contradiction (Theorem 2.2)",
        &["ε", "allowed wrong-output ≤ 1/3 − ε", "measured", "verdict"],
        &[0.30f64, 0.20, 0.10, 0.05, 0.01]
            .iter()
            .map(|&eps| {
                let allowed = 1.0 / 3.0 - eps;
                vec![
                    format!("{eps}"),
                    format!("{allowed:.4}"),
                    format!("{:.4}", r.claim2_wrong_output_prob),
                    if r.claim2_wrong_output_prob > allowed {
                        "violated".into()
                    } else {
                        "ok".into()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );

    out.note(&format!(
        "\ncontradiction_established = {}",
        r.contradiction_established()
    ));
    out.backend_counters();
}
