//! E11 — the declarative adversarial scenario matrix.
//!
//! Sweeps the reference protocol stacks (BA, SVSS share→rec, common
//! subset) across the cross-product of backends × scheduler families ×
//! fault plans × seeds, checking every cell's machine-stated safety
//! invariants and the matrix's bit-for-bit reproducibility from
//! `(seed, scenario string)` alone. This is the sweep driver behind
//! `tests/scenario_conformance.rs`, exposed as an experiment so larger
//! matrices (more seeds via `AFT_TRIALS`, more backends) can be explored
//! without recompiling the test suite.
//!
//! Flags:
//!
//! * `--smoke` — a minimal matrix (3 backends including `wire` × 2
//!   schedulers × 3 plans × 1 seed per stack), used by CI to keep the
//!   driver itself from rotting;
//! * `--scenario <spec>` — run one scenario string on every stack it fits
//!   and print its cell reports (debugging aid);
//! * `--threaded` — add the OS-thread backend to the matrix (invariants
//!   only; its cells are excluded from reproducibility checks).
//!
//! Exits nonzero if any cell violates an invariant or fails to reproduce.

use aft_bench::{output_arg, trials};
use aft_core::scenarios::{
    repro_dir, run_cell, run_cell_traced, standard_registry, write_repro_bundle, CellReport,
    StackKind,
};
use aft_sim::{MatrixCell, Scenario, ScenarioMatrix, TraceMode, ALL_SCHEDULERS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let with_threaded = args.iter().any(|a| a == "--threaded");
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        let spec = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: --scenario needs a spec string");
            std::process::exit(2);
        });
        run_single(spec);
        return;
    }

    let out = output_arg();
    out.note("# E11 — adversarial scenario matrix");
    let registry = standard_registry();
    let mut backends: Vec<String> = if smoke {
        vec!["sim".into(), "sharded:2".into(), "wire".into()]
    } else {
        vec![
            "sim".into(),
            "sharded:2".into(),
            "sharded:4".into(),
            "wire".into(),
        ]
    };
    if with_threaded {
        backends.push("threaded".into());
    }
    let schedulers: Vec<String> = if smoke {
        vec!["random".into(), "starve:1".into(), "net:lat=1..8".into()]
    } else {
        ALL_SCHEDULERS
            .iter()
            .map(|f| f.example.to_string())
            .collect()
    };
    let seeds: Vec<u64> = if smoke {
        vec![1]
    } else {
        (0..trials(4)).collect()
    };
    out.note(&format!(
        "backends: {backends:?}\nschedulers: {schedulers:?}\nseeds per cell: {}",
        seeds.len()
    ));

    let mut rows = Vec::new();
    let mut bad_cells: Vec<String> = Vec::new();
    for kind in StackKind::all() {
        let plans: Vec<String> = {
            let all = kind.standard_plans();
            let take = if smoke { all.len().min(3) } else { all.len() };
            all[..take].iter().map(|p| p.to_string()).collect()
        };
        let matrix = ScenarioMatrix {
            n: 4,
            t: 1,
            backends: backends.clone(),
            schedulers: schedulers.clone(),
            plans,
            seeds: seeds.clone(),
        };
        run_matrix(
            kind,
            kind.label(),
            &matrix,
            &registry,
            &mut rows,
            &mut bad_cells,
        );
    }

    // Virtual-time rows: partitions with healing plus a crash-recovery
    // plan. `recover@<vtime>` is measured in virtual time, so these need
    // a `net:` scheduler and cannot ride the cross-product above (they
    // would be rejected by validation on the order-only schedulers).
    let net_matrix = ScenarioMatrix {
        n: 4,
        t: 1,
        backends: backends
            .iter()
            .filter(|b| !b.starts_with("threaded"))
            .cloned()
            .collect(),
        schedulers: vec!["net:lat=1..12,partition=p50,heal=200".into()],
        plans: vec![String::new(), "recover:80@3".into()],
        seeds: seeds.clone(),
    };
    run_matrix(
        StackKind::Ba,
        "ba/net-recovery",
        &net_matrix,
        &registry,
        &mut rows,
        &mut bad_cells,
    );
    out.table(
        "Scenario matrix: safety violations and reproducibility per stack",
        &["stack", "cells", "violations", "reproducible", "mean steps"],
        &rows,
    );
    if bad_cells.is_empty() {
        out.note("\nall cells safe; deterministic cells reproduce bit-for-bit");
    } else {
        out.note("\nUNSAFE OR NON-REPRODUCIBLE CELLS:");
        for line in &bad_cells {
            out.note(&format!("  {line}"));
        }
        std::process::exit(1);
    }
}

/// Sweeps one matrix on one stack: checks every cell's invariants (with
/// repro bundles on violation), re-sweeps for bit-for-bit reproducibility
/// of the deterministic cells, and appends a summary row.
fn run_matrix(
    kind: StackKind,
    label: &str,
    matrix: &ScenarioMatrix,
    registry: &aft_sim::AttackRegistry,
    rows: &mut Vec<Vec<String>>,
    bad_cells: &mut Vec<String>,
) {
    let sweep = || matrix.run(16, |sc, seed| run_cell(kind, sc, seed, registry));
    let cells = sweep();
    let violations: usize = cells
        .iter()
        .filter(|c| !c.outcome.violations.is_empty())
        .count();
    for cell in cells.iter().filter(|c| !c.outcome.violations.is_empty()) {
        bad_cells.push(format!(
            "{} seed={} -> {:?}",
            cell.spec, cell.seed, cell.outcome.violations
        ));
        // Forensics: replay the violating cell with the flight
        // recorder on (cells are pure functions of (scenario, seed),
        // so the replay reproduces the violation bit-for-bit) and
        // drop a repro bundle.
        if let Some(scenario) = Scenario::parse(&cell.spec) {
            let (report, events) =
                run_cell_traced(kind, &scenario, cell.seed, registry, TraceMode::Ring(4096));
            match write_repro_bundle(&repro_dir(), kind, &scenario, cell.seed, &report, &events) {
                Ok(bundle) => eprintln!("repro bundle: {}", bundle.display()),
                Err(e) => eprintln!("repro bundle write failed: {e}"),
            }
        }
    }
    // Reproducibility: re-sweep and compare the deterministic cells
    // bit-for-bit (threaded cells are exempt by design).
    let again = sweep();
    let deterministic = |c: &MatrixCell<CellReport>| !c.spec.contains("rt=threaded");
    let repro = cells
        .iter()
        .zip(&again)
        .filter(|(c, _)| deterministic(c))
        .all(|(a, b)| a == b);
    if !repro {
        bad_cells.push(format!("{label}: re-sweep diverged"));
    }
    let mean_steps =
        cells.iter().map(|c| c.outcome.steps).sum::<u64>() as f64 / cells.len().max(1) as f64;
    rows.push(vec![
        label.to_string(),
        cells.len().to_string(),
        violations.to_string(),
        if repro { "yes".into() } else { "NO".into() },
        format!("{mean_steps:.0}"),
    ]);
}

/// Runs one scenario spec on every stack and prints the cell reports.
fn run_single(spec: &str) {
    let scenario = Scenario::parse(spec).unwrap_or_else(|| {
        eprintln!("error: invalid scenario spec {spec:?}");
        std::process::exit(2);
    });
    let registry = standard_registry();
    if let Err(e) = scenario.validate_attacks(&registry) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    println!("# scenario: {scenario}");
    let mut unsafe_cells = 0usize;
    for kind in StackKind::all() {
        let report = run_cell(kind, &scenario, 1, &registry);
        println!(
            "{}: violations={:?} fingerprint={:#018x} sent={} steps={}",
            kind.label(),
            report.violations,
            report.fingerprint,
            report.sent,
            report.steps
        );
        if !report.violations.is_empty() {
            unsafe_cells += 1;
            let (traced, events) =
                run_cell_traced(kind, &scenario, 1, &registry, TraceMode::Ring(4096));
            match write_repro_bundle(&repro_dir(), kind, &scenario, 1, &traced, &events) {
                Ok(bundle) => eprintln!("repro bundle: {}", bundle.display()),
                Err(e) => eprintln!("repro bundle write failed: {e}"),
            }
        }
    }
    if unsafe_cells > 0 {
        eprintln!("{unsafe_cells} stack(s) violated invariants");
        std::process::exit(1);
    }
}
