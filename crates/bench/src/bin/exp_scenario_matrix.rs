//! E11 — the declarative adversarial scenario matrix.
//!
//! Sweeps the reference protocol stacks (BA, SVSS share→rec, common
//! subset) across the cross-product of backends × scheduler families ×
//! fault plans × seeds, checking every cell's machine-stated safety
//! invariants and the matrix's bit-for-bit reproducibility from
//! `(seed, scenario string)` alone. This is the sweep driver behind
//! `tests/scenario_conformance.rs`, exposed as an experiment so larger
//! matrices (more seeds via `AFT_TRIALS`, more backends) can be explored
//! without recompiling the test suite.
//!
//! Flags:
//!
//! * `--smoke` — a minimal matrix (3 backends including `wire` × 2
//!   schedulers × 3 plans × 1 seed per stack), used by CI to keep the
//!   driver itself from rotting;
//! * `--scenario <spec>` — run one scenario string on every stack it fits
//!   and print its cell reports (debugging aid);
//! * `--threaded` — add the OS-thread backend to the matrix (invariants
//!   only; its cells are excluded from reproducibility checks).
//!
//! Exits nonzero if any cell violates an invariant or fails to reproduce.

use aft_bench::{print_table, trials};
use aft_core::scenarios::{run_cell, standard_registry, CellReport, StackKind};
use aft_sim::{MatrixCell, Scenario, ScenarioMatrix, ALL_SCHEDULERS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let with_threaded = args.iter().any(|a| a == "--threaded");
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        let spec = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: --scenario needs a spec string");
            std::process::exit(2);
        });
        run_single(spec);
        return;
    }

    println!("# E11 — adversarial scenario matrix");
    let registry = standard_registry();
    let mut backends: Vec<String> = if smoke {
        vec!["sim".into(), "sharded:2".into(), "wire".into()]
    } else {
        vec![
            "sim".into(),
            "sharded:2".into(),
            "sharded:4".into(),
            "wire".into(),
        ]
    };
    if with_threaded {
        backends.push("threaded".into());
    }
    let schedulers: Vec<String> = if smoke {
        vec!["random".into(), "starve:1".into()]
    } else {
        ALL_SCHEDULERS
            .iter()
            .map(|f| f.example.to_string())
            .collect()
    };
    let seeds: Vec<u64> = if smoke {
        vec![1]
    } else {
        (0..trials(4)).collect()
    };
    println!(
        "backends: {backends:?}\nschedulers: {schedulers:?}\nseeds per cell: {}",
        seeds.len()
    );

    let mut rows = Vec::new();
    let mut bad_cells: Vec<String> = Vec::new();
    for kind in StackKind::all() {
        let plans: Vec<String> = {
            let all = kind.standard_plans();
            let take = if smoke { all.len().min(3) } else { all.len() };
            all[..take].iter().map(|p| p.to_string()).collect()
        };
        let matrix = ScenarioMatrix {
            n: 4,
            t: 1,
            backends: backends.clone(),
            schedulers: schedulers.clone(),
            plans,
            seeds: seeds.clone(),
        };
        let sweep = || matrix.run(16, |sc, seed| run_cell(kind, sc, seed, &registry));
        let cells = sweep();
        let violations: usize = cells
            .iter()
            .filter(|c| !c.outcome.violations.is_empty())
            .count();
        for cell in cells.iter().filter(|c| !c.outcome.violations.is_empty()) {
            bad_cells.push(format!(
                "{} seed={} -> {:?}",
                cell.spec, cell.seed, cell.outcome.violations
            ));
        }
        // Reproducibility: re-sweep and compare the deterministic cells
        // bit-for-bit (threaded cells are exempt by design).
        let again = sweep();
        let deterministic = |c: &MatrixCell<CellReport>| !c.spec.contains("rt=threaded");
        let repro = cells
            .iter()
            .zip(&again)
            .filter(|(c, _)| deterministic(c))
            .all(|(a, b)| a == b);
        if !repro {
            bad_cells.push(format!("{}: re-sweep diverged", kind.label()));
        }
        let mean_steps =
            cells.iter().map(|c| c.outcome.steps).sum::<u64>() as f64 / cells.len().max(1) as f64;
        rows.push(vec![
            kind.label().to_string(),
            cells.len().to_string(),
            violations.to_string(),
            if repro { "yes".into() } else { "NO".into() },
            format!("{mean_steps:.0}"),
        ]);
    }
    print_table(
        "Scenario matrix: safety violations and reproducibility per stack",
        &["stack", "cells", "violations", "reproducible", "mean steps"],
        &rows,
    );
    if bad_cells.is_empty() {
        println!("\nall cells safe; deterministic cells reproduce bit-for-bit");
    } else {
        println!("\nUNSAFE OR NON-REPRODUCIBLE CELLS:");
        for line in &bad_cells {
            println!("  {line}");
        }
        std::process::exit(1);
    }
}

/// Runs one scenario spec on every stack and prints the cell reports.
fn run_single(spec: &str) {
    let scenario = Scenario::parse(spec).unwrap_or_else(|| {
        eprintln!("error: invalid scenario spec {spec:?}");
        std::process::exit(2);
    });
    let registry = standard_registry();
    if let Err(e) = scenario.validate_attacks(&registry) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    println!("# scenario: {scenario}");
    let mut unsafe_cells = 0usize;
    for kind in StackKind::all() {
        let report = run_cell(kind, &scenario, 1, &registry);
        println!(
            "{}: violations={:?} fingerprint={:#018x} sent={} steps={}",
            kind.label(),
            report.violations,
            report.fingerprint,
            report.sent,
            report.steps
        );
        unsafe_cells += usize::from(!report.violations.is_empty());
    }
    if unsafe_cells > 0 {
        eprintln!("{unsafe_cells} stack(s) violated invariants");
        std::process::exit(1);
    }
}
