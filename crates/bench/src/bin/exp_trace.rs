//! `exp_trace` — the flight-recorder driver.
//!
//! Runs one `(stack, scenario, seed)` cell with the flight recorder
//! attached, exports the trace (JSONL plus a Chrome/Perfetto view),
//! prints the per-kind causal delivery-depth histograms, and — if the
//! cell violates a safety invariant — writes a repro bundle under
//! `$AFT_REPRO_DIR` (default `target/repro`) and exits nonzero.
//!
//! Because every cell is a pure function of `(seed, scenario string)`
//! and tracing is observational, re-running the same flags replays the
//! exact execution a bundle captured, bit for bit.
//!
//! Flags:
//!
//! * `--scenario <spec>` (required) — the scenario string, e.g.
//!   `n=4 t=1 rt=sim sched=starve:1 corrupt=equivocate:12@1`;
//! * `--stack <ba|svss|common-subset|all>` — which reference stack(s) to
//!   run (default `ba`);
//! * `--seed <u64>` — the cell seed (default 1);
//! * `--trace <path>` — where to write the JSONL trace (default
//!   `target/trace/<stack>-seed<seed>.jsonl`); a `.perfetto.json`
//!   sibling is always written alongside;
//! * `--json` — machine-readable tables on stdout.

use aft_bench::{output_arg, trace_arg, write_trace_files, Output};
use aft_core::scenarios::{
    repro_dir, run_cell_traced, standard_registry, write_repro_bundle, StackKind,
};
use aft_sim::trace::depth_histograms;
use aft_sim::{AttackRegistry, Scenario, TraceMode};
use std::path::{Path, PathBuf};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    let mut found = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            found = it.next().cloned();
        } else if let Some(v) = a.strip_prefix(&eq) {
            found = Some(v.to_string());
        }
    }
    found
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = output_arg();
    let spec = arg_value(&args, "--scenario").unwrap_or_else(|| {
        eprintln!(
            "usage: exp_trace --scenario '<spec>' [--stack ba|svss|common-subset|all] \
             [--seed N] [--trace <path>] [--json]"
        );
        std::process::exit(2);
    });
    let scenario = Scenario::parse(&spec).unwrap_or_else(|| {
        eprintln!("error: invalid scenario spec {spec:?}");
        std::process::exit(2);
    });
    let registry = standard_registry();
    if let Err(e) = scenario.validate_attacks(&registry) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let seed: u64 = arg_value(&args, "--seed")
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: --seed wants a u64, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let stack_flag = arg_value(&args, "--stack").unwrap_or_else(|| "ba".into());
    let stacks: Vec<StackKind> = if stack_flag == "all" {
        StackKind::all().to_vec()
    } else {
        match StackKind::all()
            .into_iter()
            .find(|k| k.label() == stack_flag)
        {
            Some(k) => vec![k],
            None => {
                eprintln!("error: unknown --stack {stack_flag:?} (ba|svss|common-subset|all)");
                std::process::exit(2);
            }
        }
    };

    out.note(&format!("# exp_trace — scenario: {scenario} seed={seed}"));
    let trace_base = trace_arg();
    let mut violated = false;
    for kind in &stacks {
        let path = match &trace_base {
            // With --stack all, keep one file per stack under the asked-for path.
            Some(p) if stacks.len() > 1 => {
                let mut os = p.clone().into_os_string();
                os.push(format!(".{}", kind.label()));
                PathBuf::from(os)
            }
            Some(p) => p.clone(),
            None => PathBuf::from(format!("target/trace/{}-seed{seed}.jsonl", kind.label())),
        };
        violated |= run_traced(&out, *kind, &scenario, seed, &registry, &path);
    }
    if violated {
        eprintln!(
            "invariant violation(s); repro bundle(s) written under {:?}",
            repro_dir()
        );
        std::process::exit(1);
    }
}

/// Runs one traced cell, exports its trace, prints its histograms and —
/// on violation — writes the repro bundle. Returns whether the cell
/// violated an invariant.
fn run_traced(
    out: &Output,
    kind: StackKind,
    scenario: &Scenario,
    seed: u64,
    registry: &AttackRegistry,
    path: &Path,
) -> bool {
    let (report, events) = run_cell_traced(kind, scenario, seed, registry, TraceMode::Full);
    out.note(&format!(
        "{}: fingerprint={:#018x} sent={} delivered={} steps={} events={} violations={:?}",
        kind.label(),
        report.fingerprint,
        report.sent,
        report.delivered,
        report.steps,
        events.len(),
        report.violations
    ));

    write_trace_files(path, &events, kind.label());

    let rows: Vec<Vec<String>> = depth_histograms(&events)
        .into_iter()
        .map(|(session_kind, h)| {
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| {
                    let (lo, hi) = aft_sim::DepthHistogram::bucket_bounds(i);
                    if lo == hi {
                        format!("{lo}:{c}")
                    } else {
                        format!("{lo}-{hi}:{c}")
                    }
                })
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                session_kind.to_string(),
                h.count.to_string(),
                format!("{:.2}", h.mean()),
                h.max.to_string(),
                buckets,
            ]
        })
        .collect();
    out.table(
        &format!("{}: causal delivery depth by session kind", kind.label()),
        &[
            "kind",
            "deliveries",
            "mean depth",
            "critical path",
            "depth buckets",
        ],
        &rows,
    );

    if report.violations.is_empty() {
        return false;
    }
    match write_repro_bundle(&repro_dir(), kind, scenario, seed, &report, &events) {
        Ok(bundle) => eprintln!("repro bundle: {}", bundle.display()),
        Err(e) => eprintln!("repro bundle write failed: {e}"),
    }
    true
}
