//! E10 — Monte-Carlo termination-tail sweep across execution backends.
//!
//! Binary BA with a *local* coin terminates almost surely but its round
//! count has a geometric tail (Ben-Or'83; cf. Wang'15's analysis of
//! almost-sure termination at optimal resilience). This experiment
//! estimates that tail empirically: for each backend it runs many
//! seed-indexed trials of split-input BA, estimates the round count of
//! each trial from phase-1 vote traffic, and reports `P[rounds ≥ r]` as a
//! [`Bernoulli`] estimate with its 95% confidence half-width.
//!
//! The same deployment runs on the deterministic simulator (`sim`), the
//! sharded deterministic simulator (`sharded:<k>`), and the OS-thread
//! backend (`threaded`) via [`runtime_by_name`] — on the deterministic
//! backends the whole sweep is reproducible seed-for-seed; `threaded`
//! shows the tail under genuine OS nondeterminism.

use aft_ba::{BinaryBa, LocalCoin};
use aft_bench::{output_arg, record_run, session, trials};
use aft_sim::{run_trials, Bernoulli, PartyId, RuntimeExt, Scenario, StopReason};

/// Round thresholds whose exceedance probability is reported.
const TAILS: &[u64] = &[2, 3, 5, 8];

/// The backend axis, one declarative scenario string per row — the same
/// spec form `exp_scenario_matrix` and the conformance suite use, so a
/// row is reproducible by pasting its string into `--scenario`.
const ROWS: &[&str] = &[
    "scenario:n=4,t=1,rt=sim",
    "scenario:n=4,t=1,rt=sharded:2",
    "scenario:n=4,t=1,rt=sharded:4",
    "scenario:n=4,t=1,rt=threaded",
];

fn main() {
    let out = output_arg();
    out.note("# E10 — almost-sure-termination tails of BA across backends");
    let n_trials = trials(200);
    out.note(&format!(
        "local-coin binary BA, n=4 t=1, split inputs, {n_trials} trials per backend"
    ));

    let mut rows = Vec::new();
    for spec in ROWS {
        let scenario = Scenario::parse(spec).expect("row scenarios are valid");
        let (n, backend) = (scenario.n, scenario.rt.clone());
        let backend = backend.as_str();
        // The threaded backend spawns n OS threads per episode; keep the
        // outer trial parallelism modest there.
        let workers = if backend == "threaded" { 4 } else { 16 };
        let rounds_per_trial = run_trials(0..n_trials, workers, |seed| {
            let mut rt = scenario.runtime(seed);
            let sid = session("ba");
            for p in 0..n {
                rt.spawn(
                    PartyId(p),
                    sid.clone(),
                    Box::new(BinaryBa::new(p % 2 == 0, Box::new(LocalCoin))),
                );
            }
            let report = rt.run(4_000_000_000);
            record_run(&report.metrics);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
            let outs: Vec<bool> = (0..n)
                .filter_map(|p| rt.output_as::<bool>(PartyId(p), &sid).copied())
                .collect();
            assert_eq!(outs.len(), n, "termination ({backend} seed={seed})");
            assert!(
                outs.windows(2).all(|w| w[0] == w[1]),
                "agreement ({backend} seed={seed})"
            );
            // Phase-1 A-Cast traffic is proportional to rounds run.
            let v1 = report.metrics.sent_by_kind("bav1");
            let per_round = (n * (n + 2 * n * n)) as f64;
            (v1 as f64 / per_round).round() as u64
        });
        let mean =
            rounds_per_trial.iter().sum::<u64>() as f64 / rounds_per_trial.len().max(1) as f64;
        let max = rounds_per_trial.iter().copied().max().unwrap_or(0);
        let mut row = vec![backend.to_string(), format!("{mean:.2}"), max.to_string()];
        for &r in TAILS {
            let tail = Bernoulli::from_outcomes(rounds_per_trial.iter().map(|&x| x >= r));
            row.push(format!("{tail}"));
        }
        rows.push(row);
    }
    let tail_headers: Vec<String> = TAILS.iter().map(|r| format!("P[rounds ≥ {r}]")).collect();
    let mut headers = vec!["backend", "mean rounds", "max"];
    headers.extend(tail_headers.iter().map(|s| s.as_str()));
    out.table(
        "Round-count tail of local-coin BA (estimate ± CI95, successes/trials)",
        &headers,
        &rows,
    );
    out.note("\nthe deterministic backends (sim, sharded:<k>) reproduce their tails");
    out.note("seed-for-seed; `threaded` samples the same protocol under genuine OS");
    out.note("scheduling. The geometric tail is the price of local coins — the");
    out.note("paper's strong common coin removes it (see exp_ba_baselines).");

    // --trace <path>: replay one representative cell (first row, seed 0)
    // with the flight recorder attached and export it.
    if let Some(path) = aft_bench::trace_arg() {
        let scenario = Scenario::parse(ROWS[0]).expect("row scenarios are valid");
        let mut rt = scenario.runtime(0);
        rt.set_trace(aft_sim::TraceMode::Full);
        let sid = session("ba");
        for p in 0..scenario.n {
            rt.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(BinaryBa::new(p % 2 == 0, Box::new(LocalCoin))),
            );
        }
        rt.run(4_000_000_000);
        if let Some(sink) = rt.take_trace() {
            aft_bench::write_trace_files(&path, &sink.snapshot(), &format!("{} seed=0", ROWS[0]));
        }
    }
    out.backend_counters();
}
