//! E10 — Monte-Carlo termination-tail sweep across execution backends.
//!
//! Binary BA with a *local* coin terminates almost surely but its round
//! count has a geometric tail (Ben-Or'83; cf. Wang'15's analysis of
//! almost-sure termination at optimal resilience). This experiment
//! estimates that tail empirically: for each backend it runs many
//! seed-indexed trials of split-input BA, estimates the round count of
//! each trial from phase-1 vote traffic, and reports `P[rounds ≥ r]` as a
//! [`Bernoulli`] estimate with its 95% confidence half-width.
//!
//! The same deployment runs on the deterministic simulator (`sim`), the
//! sharded deterministic simulator (`sharded:<k>`), and the OS-thread
//! backend (`threaded`) via [`runtime_by_name`] — on the deterministic
//! backends the whole sweep is reproducible seed-for-seed; `threaded`
//! shows the tail under genuine OS nondeterminism.

use aft_ba::{BinaryBa, LocalCoin};
use aft_bench::{output_arg, record_run, session, trials};
use aft_sim::{run_trials, Bernoulli, PartyId, RuntimeExt, Scenario, StopReason};

/// Round thresholds whose exceedance probability is reported.
const TAILS: &[u64] = &[2, 3, 5, 8];

/// Virtual-time thresholds (in virtual milliseconds) whose exceedance
/// probability is reported for the `net:` rows.
const VTAILS: &[u64] = &[50, 100, 200, 400];

/// The backend axis, one declarative scenario string per row — the same
/// spec form `exp_scenario_matrix` and the conformance suite use, so a
/// row is reproducible by pasting its string into `--scenario`. The
/// `net:` rows run the same deployment under the virtual-time network
/// model, which adds a latency tail measured in virtual milliseconds.
const ROWS: &[&str] = &[
    "scenario:n=4,t=1,rt=sim",
    "scenario:n=4,t=1,rt=sharded:2",
    "scenario:n=4,t=1,rt=sharded:4",
    "scenario:n=4,t=1,rt=threaded",
    "scenario:n=4,t=1,sched=net:lat=1..20,rt=sim",
    "scenario:n=4,t=1,sched=net:lat=exp:5,partition=p50,heal=200,rt=sim",
];

fn main() {
    let out = output_arg();
    out.note("# E10 — almost-sure-termination tails of BA across backends");
    let n_trials = trials(200);
    out.note(&format!(
        "local-coin binary BA, n=4 t=1, split inputs, {n_trials} trials per backend"
    ));

    let mut rows = Vec::new();
    let mut vrows = Vec::new();
    for spec in ROWS {
        let scenario = Scenario::parse(spec).expect("row scenarios are valid");
        let n = scenario.n;
        let backend = if scenario.sched.starts_with("net") {
            format!("{}:{}", scenario.rt, scenario.sched)
        } else {
            scenario.rt.clone()
        };
        let backend = backend.as_str();
        // The threaded backend spawns n OS threads per episode; keep the
        // outer trial parallelism modest there.
        let workers = if backend == "threaded" { 4 } else { 16 };
        let outcomes = run_trials(0..n_trials, workers, |seed| {
            let mut rt = scenario.runtime(seed);
            let sid = session("ba");
            for p in 0..n {
                rt.spawn(
                    PartyId(p),
                    sid.clone(),
                    Box::new(BinaryBa::new(p % 2 == 0, Box::new(LocalCoin))),
                );
            }
            let report = rt.run(4_000_000_000);
            record_run(&report.metrics);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend} seed={seed}");
            let outs: Vec<bool> = (0..n)
                .filter_map(|p| rt.output_as::<bool>(PartyId(p), &sid).copied())
                .collect();
            assert_eq!(outs.len(), n, "termination ({backend} seed={seed})");
            assert!(
                outs.windows(2).all(|w| w[0] == w[1]),
                "agreement ({backend} seed={seed})"
            );
            // Phase-1 A-Cast traffic is proportional to rounds run.
            let v1 = report.metrics.sent_by_kind("bav1");
            let per_round = (n * (n + 2 * n * n)) as f64;
            let rounds = (v1 as f64 / per_round).round() as u64;
            (rounds, report.metrics.virtual_time)
        });
        let rounds_per_trial: Vec<u64> = outcomes.iter().map(|&(r, _)| r).collect();
        let mean =
            rounds_per_trial.iter().sum::<u64>() as f64 / rounds_per_trial.len().max(1) as f64;
        let max = rounds_per_trial.iter().copied().max().unwrap_or(0);
        let mut row = vec![backend.to_string(), format!("{mean:.2}"), max.to_string()];
        for &r in TAILS {
            let tail = Bernoulli::from_outcomes(rounds_per_trial.iter().map(|&x| x >= r));
            row.push(format!("{tail}"));
        }
        rows.push(row);
        // Virtual-time completion tail, for rows with a virtual clock.
        let vtimes: Vec<u64> = outcomes.iter().map(|&(_, v)| v).collect();
        if vtimes.iter().any(|&v| v > 0) {
            let vmean = vtimes.iter().sum::<u64>() as f64 / vtimes.len().max(1) as f64;
            let vmax = vtimes.iter().copied().max().unwrap_or(0);
            let mut vrow = vec![backend.to_string(), format!("{vmean:.1}"), vmax.to_string()];
            for &v in VTAILS {
                let tail = Bernoulli::from_outcomes(vtimes.iter().map(|&x| x >= v));
                vrow.push(format!("{tail}"));
            }
            vrows.push(vrow);
        }
    }
    let tail_headers: Vec<String> = TAILS.iter().map(|r| format!("P[rounds ≥ {r}]")).collect();
    let mut headers = vec!["backend", "mean rounds", "max"];
    headers.extend(tail_headers.iter().map(|s| s.as_str()));
    out.table(
        "Round-count tail of local-coin BA (estimate ± CI95, successes/trials)",
        &headers,
        &rows,
    );
    if !vrows.is_empty() {
        let vtail_headers: Vec<String> = VTAILS.iter().map(|v| format!("P[vms ≥ {v}]")).collect();
        let mut vheaders = vec!["backend", "mean vms", "max vms"];
        vheaders.extend(vtail_headers.iter().map(|s| s.as_str()));
        out.table(
            "Completion-time tail under the virtual-time network model (virtual milliseconds)",
            &vheaders,
            &vrows,
        );
    }
    out.note("\nthe deterministic backends (sim, sharded:<k>) reproduce their tails");
    out.note("seed-for-seed; `threaded` samples the same protocol under genuine OS");
    out.note("scheduling. The geometric tail is the price of local coins — the");
    out.note("paper's strong common coin removes it (see exp_ba_baselines).");

    // --trace <path>: replay one representative cell (first row, seed 0)
    // with the flight recorder attached and export it.
    if let Some(path) = aft_bench::trace_arg() {
        let scenario = Scenario::parse(ROWS[0]).expect("row scenarios are valid");
        let mut rt = scenario.runtime(0);
        rt.set_trace(aft_sim::TraceMode::Full);
        let sid = session("ba");
        for p in 0..scenario.n {
            rt.spawn(
                PartyId(p),
                sid.clone(),
                Box::new(BinaryBa::new(p % 2 == 0, Box::new(LocalCoin))),
            );
        }
        rt.run(4_000_000_000);
        if let Some(sink) = rt.take_trace() {
            aft_bench::write_trace_files(&path, &sink.snapshot(), &format!("{} seed=0", ROWS[0]));
        }
    }
    out.backend_counters();
}
