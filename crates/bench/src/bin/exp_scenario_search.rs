//! E12 — coverage-guided adversarial scenario search.
//!
//! An autonomous bug hunter over the scenario grammar: breed scenario
//! strings from a persisted corpus (mutating topology, fault plans,
//! schedulers, backends and the adaptive adversary; crossing over plan
//! lists), score every run by the coverage signal the substrate's
//! observability already provides, keep what lights up new features, and
//! shrink every invariant violation to a minimal scenario string that
//! replays to the same violation signature, with a repro bundle on disk.
//!
//! Flags and environment:
//!
//! * `--smoke` — the bounded CI gate: runs a seeded search round twice
//!   from scratch and asserts bit-identical corpus fingerprints, then
//!   plants a known bug (an adaptive storm that never quiesces), requires
//!   the shrinker to minimize it and the minimized spec to replay to the
//!   same signature, and writes its repro bundle. Exits 1 only on an
//!   *un-shrunk* violation or a determinism failure.
//! * default (soak) — loads the persisted corpus, runs `AFT_TRIALS`
//!   search rounds (default 4), shrinks and bundles every violation,
//!   saves the corpus back. Leave it running overnight with a large
//!   `AFT_TRIALS`.
//! * `AFT_CORPUS_DIR` — corpus directory (default
//!   `target/scenario-corpus`); the corpus itself is `corpus.txt`.
//! * `AFT_REPRO_DIR` — repro-bundle directory (default `target/repro`).
//!
//! Exits nonzero if a violation resists shrinking or the smoke gate's
//! determinism check fails.

use aft_bench::{output_arg, trials};
use aft_core::scenarios::{
    repro_dir, run_cell_instrumented, standard_registry, write_repro_bundle,
};
use aft_core::search::{
    search_round, shrink, spec_tokens, Corpus, FoundViolation, Shrunk, SEARCH_STEP_BUDGET,
};
use aft_sim::{AttackRegistry, Scenario, TraceMode};
use std::path::PathBuf;

/// Corpus directory: `$AFT_CORPUS_DIR`, or `target/scenario-corpus`.
fn corpus_dir() -> PathBuf {
    std::env::var_os("AFT_CORPUS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/scenario-corpus"))
}

/// The smoke gate's planted bug: an adaptive pin policy that storms — a
/// corrupted party re-sends itself garbage on every activation, so the
/// run never quiesces (StepLimit + broken message conservation), dressed
/// up with a decoy static corruption and an exotic scheduler/backend for
/// the shrinker to strip.
const PLANTED: &str =
    "n=7,t=2,corrupt=garbage:9@5;adaptive:pin:storm:2@*,sched=net:lat=2..6,rt=sharded:2";
const PLANTED_SEED: u64 = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a != "--smoke" && a != "--json") {
        eprintln!("usage: exp_scenario_search [--smoke] [--json]");
        std::process::exit(2);
    }
    let registry = standard_registry();
    if smoke {
        run_smoke(&registry);
    } else {
        run_soak(&registry);
    }
}

/// Shrinks one violation and writes the repro bundle for the minimized
/// scenario. Returns the shrunk form, or `None` when the shrinker could
/// not reproduce the violation (the un-shrunk case callers must escalate).
fn shrink_and_bundle(
    found: &FoundViolation,
    registry: &AttackRegistry,
    budget: u64,
) -> Option<Shrunk> {
    let shrunk = shrink(
        found.entry.stack,
        &found.entry.spec,
        found.entry.seed,
        registry,
        budget,
    )?;
    if shrunk.signature != found.signature {
        return None;
    }
    let scenario = Scenario::parse(&shrunk.entry.spec).expect("shrunk specs re-parse");
    // Replay the minimized cell with the flight recorder for the bundle;
    // cells are pure functions of (scenario, seed), so this reproduces
    // the shrunk report bit-for-bit.
    let replay = run_cell_instrumented(
        shrunk.entry.stack,
        &scenario,
        shrunk.entry.seed,
        registry,
        budget,
        TraceMode::Ring(4096),
    );
    match write_repro_bundle(
        &repro_dir(),
        shrunk.entry.stack,
        &scenario,
        shrunk.entry.seed,
        &replay.report,
        &replay.events,
    ) {
        Ok(bundle) => eprintln!("repro bundle: {}", bundle.display()),
        Err(e) => eprintln!("repro bundle write failed: {e}"),
    }
    Some(shrunk)
}

/// The bounded CI gate; see the module docs.
fn run_smoke(registry: &AttackRegistry) {
    let out = output_arg();
    out.note("# E12 — coverage-guided scenario search (smoke)");
    let mut failures: Vec<String> = Vec::new();

    // Determinism: the same seeded rounds from scratch, twice, must build
    // bit-identical corpora.
    let run_search = || {
        let mut corpus = Corpus::new();
        let mut rows = Vec::new();
        let mut violations = Vec::new();
        for round in 0..2u64 {
            let outcome = search_round(&mut corpus, registry, 42 + round, 16, SEARCH_STEP_BUDGET);
            rows.push(vec![
                round.to_string(),
                outcome.executed.to_string(),
                outcome.added.to_string(),
                corpus.entries.len().to_string(),
                corpus.feature_count().to_string(),
                outcome.violations.len().to_string(),
            ]);
            violations.extend(outcome.violations);
        }
        (corpus, rows, violations)
    };
    let (corpus_a, rows, violations) = run_search();
    let (corpus_b, _, _) = run_search();
    if corpus_a.fingerprint() != corpus_b.fingerprint() {
        failures.push(format!(
            "corpus replay diverged: {:#018x} vs {:#018x}",
            corpus_a.fingerprint(),
            corpus_b.fingerprint()
        ));
    }
    out.table(
        "Seeded search rounds (replayed twice, bit-identical)",
        &[
            "round",
            "executed",
            "added",
            "corpus",
            "features",
            "violations",
        ],
        &rows,
    );
    out.note(&format!(
        "corpus fingerprint: {:#018x} (replay identical: {})",
        corpus_a.fingerprint(),
        corpus_a.fingerprint() == corpus_b.fingerprint()
    ));

    // Violations the seeded rounds bred (the mutation alphabet includes
    // the storm pin, so these are expected) must all shrink.
    for found in &violations {
        match shrink_and_bundle(found, registry, SEARCH_STEP_BUDGET) {
            Some(shrunk) => out.note(&format!(
                "shrunk {} -> {} ({} -> {} tokens, signature {:#018x})",
                found.entry.spec,
                shrunk.entry.spec,
                spec_tokens(&found.entry.spec),
                spec_tokens(&shrunk.entry.spec),
                shrunk.signature
            )),
            None => failures.push(format!("UN-SHRUNK violation: {}", found.entry.spec)),
        }
    }

    // The planted bug must be found (it violates), shrunk to something
    // strictly smaller, and its minimal spec must replay to the same
    // violation signature.
    let planted = FoundViolation {
        entry: aft_core::search::CorpusEntry {
            stack: aft_core::scenarios::StackKind::Ba,
            seed: PLANTED_SEED,
            spec: PLANTED.to_string(),
        },
        signature: 0, // filled by the shrinker's own baseline run below
        report: aft_core::scenarios::CellReport {
            violations: Vec::new(),
            fingerprint: 0,
            sent: 0,
            delivered: 0,
            steps: 0,
        },
    };
    match shrink(
        planted.entry.stack,
        &planted.entry.spec,
        planted.entry.seed,
        registry,
        SEARCH_STEP_BUDGET,
    ) {
        None => failures.push(format!("planted bug did not violate: {PLANTED}")),
        Some(shrunk) if spec_tokens(&shrunk.entry.spec) >= spec_tokens(PLANTED) => {
            failures.push(format!("planted bug did not shrink: {}", shrunk.entry.spec))
        }
        Some(shrunk) => {
            let replayed = shrink(
                shrunk.entry.stack,
                &shrunk.entry.spec,
                shrunk.entry.seed,
                registry,
                SEARCH_STEP_BUDGET,
            )
            .map(|s| s.signature);
            if replayed != Some(shrunk.signature) {
                failures.push(format!(
                    "shrunk planted bug failed to replay its signature: {}",
                    shrunk.entry.spec
                ));
            } else {
                let mut found = planted;
                found.signature = shrunk.signature;
                if shrink_and_bundle(&found, registry, SEARCH_STEP_BUDGET).is_none() {
                    failures.push("planted bug bundle pass failed".into());
                }
                out.note(&format!(
                    "planted: {PLANTED}\nshrunk:  {} ({} -> {} tokens, {} attempts)",
                    shrunk.entry.spec,
                    spec_tokens(PLANTED),
                    spec_tokens(&shrunk.entry.spec),
                    shrunk.attempts
                ));
            }
        }
    }

    // Persist the smoke corpus so CI uploads it as an artifact.
    let path = corpus_dir().join("corpus.txt");
    if let Err(e) = corpus_a.save(&path) {
        eprintln!("corpus save failed: {e}");
    } else {
        out.note(&format!(
            "corpus saved: {} entries -> {}",
            corpus_a.entries.len(),
            path.display()
        ));
    }

    finish(&out, &failures);
}

/// The overnight soak loop; see the module docs.
fn run_soak(registry: &AttackRegistry) {
    let out = output_arg();
    out.note("# E12 — coverage-guided scenario search (soak)");
    let path = corpus_dir().join("corpus.txt");
    let mut corpus = match Corpus::load(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus load failed ({e}); starting fresh");
            Corpus::new()
        }
    };
    out.note(&format!("corpus loaded: {} entries", corpus.entries.len()));
    let rounds = trials(4);
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut found_total = 0usize;
    for round in 0..rounds {
        let outcome = search_round(&mut corpus, registry, round, 32, SEARCH_STEP_BUDGET);
        found_total += outcome.violations.len();
        rows.push(vec![
            round.to_string(),
            outcome.executed.to_string(),
            outcome.added.to_string(),
            corpus.entries.len().to_string(),
            corpus.feature_count().to_string(),
            outcome.violations.len().to_string(),
        ]);
        for found in &outcome.violations {
            match shrink_and_bundle(found, registry, SEARCH_STEP_BUDGET) {
                Some(shrunk) => out.note(&format!(
                    "violation {:#018x}: {} shrunk to {}",
                    found.signature, found.entry.spec, shrunk.entry.spec
                )),
                None => failures.push(format!("UN-SHRUNK violation: {}", found.entry.spec)),
            }
        }
    }
    out.table(
        "Search rounds",
        &[
            "round",
            "executed",
            "added",
            "corpus",
            "features",
            "violations",
        ],
        &rows,
    );
    out.note(&format!(
        "{found_total} violation(s) found across {rounds} round(s); corpus fingerprint {:#018x}",
        corpus.fingerprint()
    ));
    if let Err(e) = corpus.save(&path) {
        eprintln!("corpus save failed: {e}");
    } else {
        out.note(&format!(
            "corpus saved: {} entries -> {}",
            corpus.entries.len(),
            path.display()
        ));
    }
    finish(&out, &failures);
}

fn finish(out: &aft_bench::Output, failures: &[String]) {
    if failures.is_empty() {
        out.note("\nsearch gate clean: every violation shrunk and bundled");
    } else {
        out.note("\nSEARCH GATE FAILURES:");
        for f in failures {
            out.note(&format!("  {f}"));
        }
        std::process::exit(1);
    }
}
