//! Process-per-party deployment: the supervisor side of `aft-partyd`.
//!
//! The in-process backends (`rt=sim` … `rt=proc`) all run every party in
//! one address space. This module is the real thing: [`run_deployment`]
//! takes an unmodified `Scenario` string marked `rt=proc`, spawns one
//! `aft-partyd` OS process per party, wires them into a full TCP mesh on
//! loopback, and supervises the run over a line-based control protocol
//! on each daemon's stdin/stdout:
//!
//! | direction | line | meaning |
//! |---|---|---|
//! | daemon → supervisor | `ready <addr>` | listening socket is bound |
//! | daemon → supervisor | `meshed` | all `n − 1` peer links are up |
//! | daemon → supervisor | `output <text>` | the root session produced an output |
//! | daemon → supervisor | `metrics sent=<u64> delivered=<u64>` | final counters |
//! | daemon → supervisor | `bye` | clean exit imminent |
//! | supervisor → daemon | `peers <addr0> … <addr(n−1)>` | the mesh address book |
//! | supervisor → daemon | `go` | spawn the protocol instance |
//! | supervisor → daemon | `shutdown` | report metrics and exit |
//!
//! `corrupt=recover:<vt>@p` does not reach the daemons: the simulator's
//! scheduled recovery needs a virtual clock, so [`split_recover_spec`]
//! strips those entries and maps each onto a supervisor [`RestartPlan`] —
//! a real SIGKILL (`Child::kill`) after `vt` milliseconds, followed by a
//! respawn with `--recovered`. The restarted daemon redials every peer;
//! each live peer replaces its link and replays its full per-peer outbox,
//! the socket-world analogue of the simulator's early-buffer replay, so
//! the fresh instance sees every message the mesh ever sent it.
//!
//! Invariants are checked from the collected outputs exactly as
//! `aft_core::scenarios` checks them in-process: termination and
//! agreement for every party that is honest under the scenario (killed
//! parties count as honest — they recover), validity for BA, and
//! size/membership/consistency for common subset.

use aft_ba::{BinaryBa, OracleCoin};
use aft_core::scenarios::register_standard_codecs;
use aft_core::{CoinKind, CommonSubsetInstance};
use aft_sim::{
    AttackCtx, AttackRegistry, AttackRole, Equivocator, FaultSpec, GarbageInstance, Instance,
    MuteAfter, PartyId, Payload, Scenario, SessionId, SessionTag, SilentInstance,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Writes one length-prefixed frame (`u32` little-endian length, then the
/// bytes) — the socket framing both `aft-partyd` link directions use.
pub fn write_frame(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame written by [`write_frame`]. Returns `Ok(None)` on a
/// clean EOF at a frame boundary; errors on truncation mid-frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    Ok(Some(bytes))
}

/// Per-frame size cap on the peer links — far above any protocol frame,
/// low enough that a corrupted length prefix cannot balloon allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Which reference stack a deployment runs. The SVSS chain needs carries
/// handed between two episodes and is not deployable process-per-party,
/// so the deployment set is BA and the common subset built over the
/// SVSS-backed machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployStack {
    /// Unanimous-input binary Byzantine agreement.
    Ba,
    /// Common subset over self-announcing predicates.
    CommonSubset,
}

impl DeployStack {
    /// Short label, also the `--stack` argument value.
    pub fn label(&self) -> &'static str {
        match self {
            DeployStack::Ba => "ba",
            DeployStack::CommonSubset => "common-subset",
        }
    }

    /// Inverse of [`DeployStack::label`].
    pub fn from_label(label: &str) -> Option<DeployStack> {
        [DeployStack::Ba, DeployStack::CommonSubset]
            .into_iter()
            .find(|s| s.label() == label)
    }

    /// The root session id — identical to the in-process cell runners, so
    /// a deployed run is the same protocol tree as a simulated one.
    pub fn session(&self) -> SessionId {
        let tag = match self {
            DeployStack::Ba => "ba",
            DeployStack::CommonSubset => "cs",
        };
        SessionId::root().child(SessionTag::new(tag, 0))
    }

    /// Builds the stack's honest root instance for one party — the same
    /// constructions `aft_core::scenarios` deploys in-process.
    pub fn honest_instance(&self, scenario: &Scenario, seed: u64) -> Box<dyn Instance> {
        match self {
            DeployStack::Ba => Box::new(BinaryBa::new(
                seed.is_multiple_of(2),
                Box::new(OracleCoin::new(seed)),
            )),
            DeployStack::CommonSubset => Box::new(CommonSubsetInstance::new(
                scenario.n - scenario.t,
                CoinKind::Oracle(seed),
                true,
            )),
        }
    }

    /// Renders a root-session output as the single-token text the control
    /// protocol carries (`true`/`false` for BA, `0+1+2` for a subset).
    pub fn render_output(&self, payload: &Payload) -> Option<String> {
        match self {
            DeployStack::Ba => payload.downcast_ref::<bool>().map(|b| b.to_string()),
            DeployStack::CommonSubset => payload.downcast_ref::<Vec<PartyId>>().map(|s| {
                s.iter()
                    .map(|p| p.0.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            }),
        }
    }

    /// Checks the stack's invariants over the collected outputs
    /// (`outputs[p]` is party `p`'s rendered output, `None` if it never
    /// reported one). Returns the violations, empty iff the run is safe.
    pub fn check_outputs(
        &self,
        scenario: &Scenario,
        seed: u64,
        outputs: &[Option<String>],
    ) -> Vec<String> {
        let mut violations = Vec::new();
        let honest: Vec<usize> = scenario.honest_parties().map(|p| p.0).collect();
        for &p in &honest {
            if outputs[p].is_none() {
                violations.push(format!("termination: honest party {p} produced no output"));
            }
        }
        let decided: Vec<&String> = honest.iter().filter_map(|&p| outputs[p].as_ref()).collect();
        if decided.windows(2).any(|w| w[0] != w[1]) {
            violations.push(format!("agreement: honest outputs diverge: {decided:?}"));
        }
        match self {
            DeployStack::Ba => {
                let input = seed.is_multiple_of(2).to_string();
                if decided.iter().any(|d| **d != input) {
                    violations.push(format!(
                        "validity: unanimous input {input} but outputs {decided:?}"
                    ));
                }
            }
            DeployStack::CommonSubset => {
                let k = scenario.n - scenario.t;
                for &p in &honest {
                    let Some(d) = &outputs[p] else { continue };
                    let members: Vec<Option<usize>> =
                        d.split('+').map(|m| m.parse().ok()).collect();
                    if members.len() < k {
                        violations.push(format!(
                            "subset-size: party {p} output {} members, need >= {k}",
                            members.len()
                        ));
                    }
                    if members.iter().any(|m| m.is_none_or(|m| m >= scenario.n)) {
                        violations.push(format!("subset-members: party {p} output {d:?}"));
                    }
                }
            }
        }
        violations
    }
}

/// Builds party `party`'s root instance under `scenario`'s corruption
/// plan — the per-party slice of `Scenario::deploy_episode`, for daemons
/// that host exactly one party. Returns the instance plus whether the
/// node must be crashed right after spawning (the `crash` fault).
///
/// `recover:` faults never reach this function (the supervisor strips
/// them into [`RestartPlan`]s); hitting one here is an error.
pub fn instance_for(
    scenario: &Scenario,
    registry: &AttackRegistry,
    stack: DeployStack,
    party: PartyId,
    seed: u64,
) -> Result<(Box<dyn Instance>, bool), String> {
    let honest = || stack.honest_instance(scenario, seed);
    let instance: Box<dyn Instance> = match scenario.fault_of(party) {
        None => honest(),
        Some(FaultSpec::Silent) => Box::new(SilentInstance),
        Some(FaultSpec::Crash) => return Ok((honest(), true)),
        Some(FaultSpec::Recover(_)) => {
            return Err(format!(
                "recover:@{} is supervisor-driven; split_recover_spec must strip it",
                party.0
            ))
        }
        Some(FaultSpec::MuteAfter(k)) => Box::new(MuteAfter::new(honest(), *k)),
        Some(FaultSpec::Garbage(b)) => Box::new(GarbageInstance::new(*b)),
        Some(FaultSpec::Equivocate(b)) => Box::new(Equivocator::new(*b)),
        Some(FaultSpec::Attack { name, args }) => {
            let ctx = AttackCtx {
                party,
                n: scenario.n,
                t: scenario.t,
                seed,
                args,
                episode: stack.label(),
                carry: None,
            };
            match registry.build(name, &ctx) {
                Some(AttackRole::Instance(inst)) => inst,
                Some(AttackRole::Honest) => honest(),
                None => return Err(format!("attack {name:?} (args {args:?}) failed to build")),
            }
        }
    };
    Ok((instance, false))
}

/// One supervised kill/restart: SIGKILL party `party` this long after
/// `go`, then respawn it with `--recovered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPlan {
    /// The party to kill and respawn.
    pub party: usize,
    /// Wall-clock delay after the run starts. One virtual-time unit of
    /// the scenario's `recover:<vt>` maps to one millisecond.
    pub after: Duration,
}

/// Splits `corrupt=recover:<vt>@p` entries out of a scenario string into
/// supervisor [`RestartPlan`]s, returning the remaining spec (which then
/// parses cleanly under `rt=proc`, where scheduled recovery is refused).
///
/// The surgery is textual and happens *before* `Scenario::parse` on
/// purpose: `recover:` on `rt=proc` is a validation error precisely
/// because only this supervisor can honour it.
pub fn split_recover_spec(spec: &str) -> Result<(String, Vec<RestartPlan>), String> {
    let mut restarts = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    // Same field grammar as `Scenario::parse`: unknown tokens continue
    // the previous value (scheduler specs contain commas).
    const KEYS: [&str; 5] = ["n", "t", "corrupt", "sched", "rt"];
    for tok in spec.strip_prefix("scenario:").unwrap_or(spec).split(',') {
        match tok.split_once('=') {
            Some((k, _)) if KEYS.contains(&k.trim()) => fields.push(tok.trim().to_string()),
            _ => {
                let last = fields
                    .last_mut()
                    .ok_or_else(|| format!("malformed scenario spec {spec:?}"))?;
                last.push(',');
                last.push_str(tok.trim());
            }
        }
    }
    for field in &mut fields {
        let Some(plan) = field.strip_prefix("corrupt=") else {
            continue;
        };
        let mut kept = Vec::new();
        for entry in plan.split(';') {
            let recover = entry
                .split_once('@')
                .and_then(|(fault, party)| match FaultSpec::parse(fault.trim())? {
                    FaultSpec::Recover(vt) => Some((party.trim().parse::<usize>(), vt)),
                    _ => None,
                });
            match recover {
                Some((Ok(party), vt)) => restarts.push(RestartPlan {
                    party,
                    after: Duration::from_millis(vt),
                }),
                Some((Err(_), _)) => return Err(format!("bad recover party in {entry:?}")),
                None => kept.push(entry),
            }
        }
        *field = if kept.is_empty() {
            String::new()
        } else {
            format!("corrupt={}", kept.join(";"))
        };
    }
    let spec = fields
        .iter()
        .filter(|f| !f.is_empty())
        .cloned()
        .collect::<Vec<_>>()
        .join(",");
    Ok((spec, restarts))
}

/// Locates the `aft-partyd` binary: an explicit path, the `AFT_PARTYD`
/// environment variable, or a sibling of the current executable (the
/// layout `cargo build` produces).
pub fn partyd_path(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return Ok(p.to_path_buf());
    }
    if let Some(p) = std::env::var_os("AFT_PARTYD") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = exe
        .parent()
        .ok_or("current executable has no parent directory")?
        .join(format!("aft-partyd{}", std::env::consts::EXE_SUFFIX));
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!(
            "aft-partyd not found at {} — build it (cargo build -p aft-bench) or set AFT_PARTYD",
            sibling.display()
        ))
    }
}

/// Everything [`run_deployment`] needs to supervise one run.
#[derive(Debug, Clone)]
pub struct DeployOptions {
    /// The scenario string; must carry `rt=proc` (or `rt=proc:<n>`).
    pub spec: String,
    /// Which reference stack to run.
    pub stack: DeployStack,
    /// The run seed, forwarded to every daemon.
    pub seed: u64,
    /// Overall wall-clock budget; exceeding it is reported as a
    /// violation (with the missing parties named), not a panic.
    pub timeout: Duration,
    /// Explicit `aft-partyd` path (tests pass `CARGO_BIN_EXE_aft-partyd`).
    pub partyd: Option<PathBuf>,
    /// Where to write per-party stderr logs (`party<p>.log`, appended
    /// across restarts). `None` inherits the supervisor's stderr.
    pub log_dir: Option<PathBuf>,
}

impl DeployOptions {
    /// Options with the defaults the smoke suite uses.
    pub fn new(spec: &str, stack: DeployStack, seed: u64) -> DeployOptions {
        DeployOptions {
            spec: spec.to_string(),
            stack,
            seed,
            timeout: Duration::from_secs(60),
            partyd: None,
            log_dir: None,
        }
    }
}

/// What one supervised deployment produced.
#[derive(Debug, Clone)]
pub struct DeployReport {
    /// Party `p`'s rendered output, `None` if it never reported one.
    pub outputs: Vec<Option<String>>,
    /// Invariant violations (plus timeouts); empty iff the run is safe.
    pub violations: Vec<String>,
    /// How many kill/restart legs the supervisor executed.
    pub restarts: usize,
    /// Sum of the daemons' final `sent` counters.
    pub sent: u64,
    /// Sum of the daemons' final `delivered` counters.
    pub delivered: u64,
}

/// Events from a daemon's stdout reader thread. `gen` is the spawn
/// generation of the process that produced the event, so lines and EOFs
/// from a killed daemon cannot be misattributed to its replacement.
enum FromChild {
    Line(usize, u64, String),
    Eof(usize, u64),
}

struct PartyProc {
    child: Child,
    stdin: ChildStdin,
    gen: u64,
}

struct Supervisor {
    partyd: PathBuf,
    spec: String,
    stack: DeployStack,
    seed: u64,
    log_dir: Option<PathBuf>,
    tx: mpsc::Sender<FromChild>,
    procs: Vec<PartyProc>,
}

impl Supervisor {
    fn spawn_party(&mut self, party: usize, recovered: bool) -> Result<(), String> {
        let mut cmd = Command::new(&self.partyd);
        cmd.arg("--party")
            .arg(party.to_string())
            .arg("--stack")
            .arg(self.stack.label())
            .arg("--seed")
            .arg(self.seed.to_string())
            .arg("--scenario")
            .arg(&self.spec)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if recovered {
            cmd.arg("--recovered");
        }
        match &self.log_dir {
            Some(dir) => {
                let log = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(format!("party{party}.log")))
                    .map_err(|e| format!("open party{party}.log: {e}"))?;
                cmd.stderr(log);
            }
            None => {
                cmd.stderr(Stdio::inherit());
            }
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", self.partyd.display()))?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        let gen = self.procs.get(party).map_or(0, |p| p.gen + 1);
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(l) => {
                        if tx.send(FromChild::Line(party, gen, l)).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(FromChild::Eof(party, gen));
        });
        let proc = PartyProc { child, stdin, gen };
        if party < self.procs.len() {
            self.procs[party] = proc;
        } else {
            self.procs.push(proc);
        }
        Ok(())
    }

    fn send(&mut self, party: usize, line: &str) {
        // A write to a freshly-killed daemon may fail; the kill path
        // respawns it and re-sends, so the error is not fatal here.
        let _ = writeln!(self.procs[party].stdin, "{line}");
        let _ = self.procs[party].stdin.flush();
    }

    fn kill_all(&mut self) {
        for proc in &mut self.procs {
            let _ = proc.child.kill();
            let _ = proc.child.wait();
        }
    }
}

/// Runs one supervised process-per-party deployment; see the module docs
/// for the lifecycle. Returns `Err` only for setup failures (bad spec,
/// missing binary); protocol failures and timeouts come back as
/// violations in the [`DeployReport`].
pub fn run_deployment(opts: &DeployOptions) -> Result<DeployReport, String> {
    register_standard_codecs();
    let (clean_spec, restarts) = split_recover_spec(&opts.spec)?;
    let scenario = Scenario::parse(&clean_spec)
        .ok_or_else(|| format!("scenario {clean_spec:?} does not parse"))?;
    if scenario.rt != "proc" && !scenario.rt.starts_with("proc:") {
        return Err(format!(
            "deployment needs rt=proc, scenario says rt={}",
            scenario.rt
        ));
    }
    for plan in &restarts {
        if plan.party >= scenario.n {
            return Err(format!("recover party {} out of range", plan.party));
        }
    }
    if let Some(dir) = &opts.log_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let n = scenario.n;
    let deadline = Instant::now() + opts.timeout;
    let (tx, rx) = mpsc::channel();
    let mut sup = Supervisor {
        partyd: partyd_path(opts.partyd.as_deref())?,
        spec: clean_spec,
        stack: opts.stack,
        seed: opts.seed,
        log_dir: opts.log_dir.clone(),
        tx,
        procs: Vec::with_capacity(n),
    };
    for p in 0..n {
        sup.spawn_party(p, false)?;
    }

    let mut addrs: Vec<Option<String>> = vec![None; n];
    let mut meshed = vec![false; n];
    let mut started = vec![false; n];
    let mut outputs: Vec<Option<String>> = vec![None; n];
    let mut metrics: HashMap<usize, (u64, u64)> = HashMap::new();
    let mut violations = Vec::new();
    // Kill deadlines are armed once every initial daemon has been told
    // `go` (index into `pending_kills` marks the next one due).
    let mut pending_kills: Vec<RestartPlan> = restarts.clone();
    pending_kills.sort_by_key(|k| k.after);
    let mut kill_deadlines: Vec<(Instant, usize)> = Vec::new();
    let mut kills_done = 0usize;
    let mut restarts_done = 0usize;
    let mut shutdown_sent = false;
    let mut bye = vec![false; n];

    // Expected outputs: scenario-honest parties (stripped recover targets
    // are honest — they come back).
    let expected: Vec<usize> = scenario.honest_parties().map(|p| p.0).collect();

    loop {
        let all_started = started.iter().all(|&s| s);
        if all_started && kill_deadlines.is_empty() && !pending_kills.is_empty() {
            let t0 = Instant::now();
            kill_deadlines = pending_kills
                .iter()
                .enumerate()
                .map(|(i, k)| (t0 + k.after, i))
                .collect();
        }
        // Fire due kills.
        while let Some(&(due, idx)) = kill_deadlines.first() {
            if Instant::now() < due {
                break;
            }
            kill_deadlines.remove(0);
            let party = pending_kills[idx].party;
            let _ = sup.procs[party].child.kill();
            let _ = sup.procs[party].child.wait();
            outputs[party] = None;
            meshed[party] = false;
            started[party] = false;
            kills_done += 1;
            sup.spawn_party(party, true)?;
        }
        let done = kills_done == pending_kills.len()
            && started.iter().all(|&s| s)
            && expected.iter().all(|&p| outputs[p].is_some());
        if done && !shutdown_sent {
            for p in 0..n {
                sup.send(p, "shutdown");
            }
            shutdown_sent = true;
        }
        if shutdown_sent && bye.iter().all(|&b| b) {
            break;
        }
        if Instant::now() >= deadline {
            let missing: Vec<usize> = expected
                .iter()
                .copied()
                .filter(|&p| outputs[p].is_none())
                .collect();
            violations.push(format!(
                "timeout: {}s elapsed with outputs missing from parties {missing:?} \
                 ({}/{} kills executed)",
                opts.timeout.as_secs(),
                kills_done,
                pending_kills.len()
            ));
            break;
        }
        let wait = kill_deadlines
            .first()
            .map(|&(due, _)| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100))
            .min(Duration::from_millis(100));
        let event = match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let (party, line) = match event {
            FromChild::Line(p, gen, l) if gen == sup.procs[p].gen => (p, l),
            FromChild::Eof(p, gen) if gen == sup.procs[p].gen => {
                // Killed daemons EOF by design; anything else dying before
                // shutdown is a violation surfaced by the timeout/output
                // checks, so just record the mesh as down.
                if !shutdown_sent {
                    meshed[p] = false;
                }
                bye[p] = true;
                continue;
            }
            // Stale events from a replaced process generation.
            FromChild::Line(..) | FromChild::Eof(..) => continue,
        };
        let mut words = line.split_whitespace();
        match words.next() {
            Some("ready") => {
                if let Some(addr) = words.next() {
                    addrs[party] = Some(addr.to_string());
                }
                let respawned = started.iter().any(|&s| s);
                if addrs.iter().all(|a| a.is_some()) || respawned {
                    let book: Vec<String> = addrs
                        .iter()
                        .map(|a| a.clone().unwrap_or_else(|| "-".into()))
                        .collect();
                    let peers_line = format!("peers {}", book.join(" "));
                    if respawned {
                        sup.send(party, &peers_line);
                    } else {
                        for p in 0..n {
                            sup.send(p, &peers_line);
                        }
                    }
                }
            }
            Some("meshed") => {
                meshed[party] = true;
                bye[party] = false;
                let respawned = started.iter().any(|&s| s);
                if respawned {
                    sup.send(party, "go");
                    started[party] = true;
                    restarts_done += 1;
                } else if meshed.iter().all(|&m| m) {
                    for (p, s) in started.iter_mut().enumerate() {
                        sup.send(p, "go");
                        *s = true;
                    }
                }
            }
            Some("output") => {
                if let Some(text) = words.next() {
                    outputs[party] = Some(text.to_string());
                }
            }
            Some("metrics") => {
                let mut sent = 0;
                let mut delivered = 0;
                for w in words {
                    if let Some(v) = w.strip_prefix("sent=") {
                        sent = v.parse().unwrap_or(0);
                    } else if let Some(v) = w.strip_prefix("delivered=") {
                        delivered = v.parse().unwrap_or(0);
                    }
                }
                metrics.insert(party, (sent, delivered));
            }
            Some("bye") => {
                bye[party] = true;
            }
            _ => {}
        }
    }
    sup.kill_all();
    violations.extend(opts.stack.check_outputs(&scenario, opts.seed, &outputs));
    let (sent, delivered) = metrics
        .values()
        .fold((0, 0), |(s, d), &(ms, md)| (s + ms, d + md));
    Ok(DeployReport {
        outputs,
        violations,
        restarts: restarts_done,
        sent,
        delivered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_core::scenarios::standard_registry;

    #[test]
    fn split_recover_extracts_supervisor_legs() {
        let (spec, plans) =
            split_recover_spec("n=4,t=1,corrupt=recover:250@3,sched=net:lat=1..4,rt=proc").unwrap();
        assert_eq!(spec, "n=4,t=1,sched=net:lat=1..4,rt=proc");
        assert_eq!(
            plans,
            vec![RestartPlan {
                party: 3,
                after: Duration::from_millis(250)
            }]
        );
        // Mixed plans keep the non-recover entries.
        let (spec, plans) =
            split_recover_spec("n=7,t=2,corrupt=silent@6;recover:80@2,rt=proc").unwrap();
        assert_eq!(spec, "n=7,t=2,corrupt=silent@6,rt=proc");
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].party, 2);
        // No recover entries: spec passes through (modulo whitespace).
        let (spec, plans) = split_recover_spec("n=4,t=1,rt=proc").unwrap();
        assert_eq!(spec, "n=4,t=1,rt=proc");
        assert!(plans.is_empty());
        assert!(Scenario::parse(&spec).is_some());
    }

    #[test]
    fn stack_labels_round_trip() {
        for stack in [DeployStack::Ba, DeployStack::CommonSubset] {
            assert_eq!(DeployStack::from_label(stack.label()), Some(stack));
        }
        assert_eq!(DeployStack::from_label("svss"), None);
    }

    #[test]
    fn instance_for_covers_the_fault_plan() {
        let registry = standard_registry();
        for (plan, crashes) in [
            ("silent@3", false),
            ("mute-after:6@3", false),
            ("crash@3", true),
        ] {
            let scenario = Scenario::parse(&format!("n=4,t=1,corrupt={plan},rt=proc")).unwrap();
            for p in 0..4 {
                let (_, crash) =
                    instance_for(&scenario, &registry, DeployStack::Ba, PartyId(p), 7).unwrap();
                assert_eq!(crash, p == 3 && crashes, "party {p} plan {plan}");
            }
        }
        // A named protocol attack resolves through the registry.
        let scenario = Scenario::parse("n=4,t=1,corrupt=random-voter@3,rt=proc").unwrap();
        assert!(instance_for(&scenario, &registry, DeployStack::Ba, PartyId(3), 7).is_ok());
        // A stray recover fault is a hard error, not a silent honest run.
        let mut scenario = Scenario::parse("n=4,t=1,rt=proc").unwrap();
        scenario.corruptions.push(aft_sim::Corruption {
            party: PartyId(2),
            fault: FaultSpec::Recover(50),
        });
        assert!(instance_for(&scenario, &registry, DeployStack::Ba, PartyId(2), 7).is_err());
    }

    #[test]
    fn ba_outputs_check_validity_and_agreement() {
        let scenario = Scenario::parse("n=4,t=1,corrupt=silent@3,rt=proc").unwrap();
        let good: Vec<Option<String>> = vec![
            Some("true".into()),
            Some("true".into()),
            Some("true".into()),
            None, // silent party owes nothing
        ];
        assert!(DeployStack::Ba
            .check_outputs(&scenario, 2, &good)
            .is_empty());
        let split = vec![
            Some("true".into()),
            Some("false".into()),
            Some("true".into()),
            None,
        ];
        let violations = DeployStack::Ba.check_outputs(&scenario, 2, &split);
        assert!(violations.iter().any(|v| v.contains("agreement")));
        let missing = vec![Some("true".into()), None, Some("true".into()), None];
        let violations = DeployStack::Ba.check_outputs(&scenario, 2, &missing);
        assert!(violations.iter().any(|v| v.contains("termination")));
        // Odd seed means unanimous input `false`: all-true is a validity
        // violation even though it agrees.
        let violations = DeployStack::Ba.check_outputs(&scenario, 3, &good);
        assert!(violations.iter().any(|v| v.contains("validity")));
    }

    #[test]
    fn cs_outputs_check_size_members_consistency() {
        let scenario = Scenario::parse("n=4,t=1,rt=proc").unwrap();
        let good: Vec<Option<String>> = (0..4).map(|_| Some("0+1+2".into())).collect();
        assert!(DeployStack::CommonSubset
            .check_outputs(&scenario, 9, &good)
            .is_empty());
        let small: Vec<Option<String>> = (0..4).map(|_| Some("0+1".into())).collect();
        assert!(DeployStack::CommonSubset
            .check_outputs(&scenario, 9, &small)
            .iter()
            .any(|v| v.contains("subset-size")));
        let oob: Vec<Option<String>> = (0..4).map(|_| Some("0+1+7".into())).collect();
        assert!(DeployStack::CommonSubset
            .check_outputs(&scenario, 9, &oob)
            .iter()
            .any(|v| v.contains("subset-members")));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        let huge = (u32::MAX).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }
}
