//! # aft-bench
//!
//! Experiment harness for the `aft` reproduction: shared runners, table
//! formatting, and statistics used by the `exp_*` binaries (one per
//! experiment E1–E9 of DESIGN.md §5) and the Criterion benchmarks.
//!
//! Run an experiment with e.g.
//!
//! ```sh
//! cargo run --release -p aft-bench --bin exp_coin_bias
//! ```
//!
//! Every binary prints a Markdown table whose rows are recorded in
//! `EXPERIMENTS.md`. Trial counts scale with the `AFT_TRIALS` environment
//! variable (default noted per experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;

use aft_core::{
    CoinFlip, CoinFlipOutput, CoinFlipParams, CoinKind, FairChoice, FairChoiceParams, Fba,
};
use aft_sim::{
    runtime_by_name, Instance, Metrics, NetConfig, PartyId, Runtime, RuntimeExt, SessionId,
    SessionTag, SilentInstance, StopReason, TraceMode,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Reads the trial multiplier from `AFT_TRIALS` (default `base`).
pub fn trials(base: u64) -> u64 {
    std::env::var("AFT_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(base)
}

/// Which execution backend an experiment runs on, from its `--runtime`
/// flag.
///
/// * `--runtime sim` (default) — the deterministic simulator; each row's
///   scheduler column picks the adversary.
/// * `--runtime sim:<sched>` — the simulator pinned to one scheduler,
///   overriding per-row schedulers.
/// * `--runtime sharded:<k>` — the sharded deterministic simulator with
///   `k` worker shards; each row's scheduler column picks the per-party
///   delivery policy.
/// * `--runtime sharded:<k>:<sched>` — the sharded simulator pinned to
///   one per-party scheduler, overriding per-row schedulers.
/// * `--runtime wire` — the wire-serialized deterministic backend
///   (envelopes round-trip through the byte codec and per-party OS
///   sockets); each row's scheduler column picks the adversary, exactly
///   as on `sim`.
/// * `--runtime wire:<sched>` — the wire backend pinned to one
///   scheduler.
/// * `--runtime async` — the deterministic event-loop backend (one
///   executor task per party on the vendored `tokio` stand-in); each
///   row's scheduler column picks the adversary, exactly as on `sim`.
/// * `--runtime async:<sched>` — the event-loop backend pinned to one
///   scheduler.
/// * `--runtime threaded[:<poll_ms>]` — the OS-thread backend; scheduler
///   columns are ignored (the OS is the scheduler).
/// * `--runtime proc[:<n>]` — the process-per-party stand-in (one OS
///   thread per party in this process; scheduler columns are ignored).
///   The real one-OS-process-per-party deployment is driven by
///   `exp_deployment`.
#[derive(Debug)]
pub struct RuntimeSpec {
    name: String,
    /// Where to dump a flight-recorder trace of the first run, if asked
    /// (`--trace <path>`).
    trace: Option<PathBuf>,
    /// Whether the trace dump is still pending (only the first run built
    /// through this spec is traced — one representative execution).
    trace_pending: AtomicBool,
}

impl Clone for RuntimeSpec {
    fn clone(&self) -> Self {
        RuntimeSpec {
            name: self.name.clone(),
            trace: self.trace.clone(),
            // A clone does not inherit the trace obligation: exactly one
            // run per `--trace` flag is recorded, via the original spec.
            trace_pending: AtomicBool::new(false),
        }
    }
}

impl RuntimeSpec {
    /// Builds a spec from an explicit backend name.
    pub fn named(name: &str) -> Self {
        RuntimeSpec {
            name: name.to_string(),
            trace: None,
            trace_pending: AtomicBool::new(false),
        }
    }

    /// Asks the spec to dump a flight-recorder trace of the first run it
    /// builds to `path` (JSONL; a `.perfetto.json` sibling is written
    /// alongside).
    pub fn with_trace(mut self, path: Option<PathBuf>) -> Self {
        self.trace_pending = AtomicBool::new(self.trace.is_none() && path.is_some());
        self.trace = path;
        self
    }

    /// Enables the flight recorder on `rt` if this spec still owes a
    /// trace dump. Returns whether tracing was attached (pair with
    /// [`RuntimeSpec::dump_trace`] after the run).
    pub fn attach_trace(&self, rt: &mut dyn Runtime) -> bool {
        if self.trace_pending.swap(false, Ordering::Relaxed) {
            rt.set_trace(TraceMode::Full);
            true
        } else {
            false
        }
    }

    /// Detaches `rt`'s recorder and writes the JSONL trace plus its
    /// Perfetto sibling; `label` identifies the traced run on stderr.
    pub fn dump_trace(&self, rt: &mut dyn Runtime, label: &str) {
        let Some(path) = &self.trace else { return };
        let Some(sink) = rt.take_trace() else { return };
        let events = sink.snapshot();
        write_trace_files(path, &events, label);
    }

    /// The backend name as given (`"sim"`, `"threaded"`, …).
    pub fn label(&self) -> &str {
        &self.name
    }

    /// Whether this is a bare `sharded:<k>` (no pinned scheduler).
    fn bare_sharded(&self) -> bool {
        self.name
            .strip_prefix("sharded:")
            .is_some_and(|rest| rest.parse::<usize>().is_ok())
    }

    /// Whether rows parameterized by scheduler are meaningful.
    pub fn honors_schedulers(&self) -> bool {
        self.name == "sim" || self.name == "wire" || self.name == "async" || self.bare_sharded()
    }

    /// Resolves the backend name for a row that wants scheduler `sched`.
    pub fn backend_for(&self, sched: &str) -> String {
        if self.honors_schedulers() {
            format!("{}:{sched}", self.name)
        } else {
            self.name.clone()
        }
    }

    /// Builds the runtime for a row with scheduler `sched`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown backend or scheduler name.
    pub fn make(&self, config: NetConfig, sched: &str) -> Box<dyn Runtime> {
        let name = self.backend_for(sched);
        runtime_by_name(&name, config).unwrap_or_else(|| {
            // `proc:<k>` pins the party count; experiments sweep n per
            // row, so a mismatch is a usage error, not a backend bug.
            if let Some(k) = self.name.strip_prefix("proc:") {
                if k.parse::<usize>().is_ok_and(|k| k != config.n) {
                    eprintln!(
                        "error: --runtime {} pins the party count to {k}, but this \
                         experiment row needs n={}; use --runtime proc to adapt per row",
                        self.name, config.n
                    );
                    std::process::exit(2);
                }
            }
            panic!("unknown runtime or scheduler: {name}")
        })
    }

    /// Prints the standard one-line backend banner.
    pub fn announce(&self) {
        let banner = |line: &str| {
            if json_arg() {
                eprintln!("{line}");
            } else {
                println!("{line}");
            }
        };
        banner(&format!("runtime backend: {}", self.name));
        if !self.honors_schedulers() {
            banner("(scheduler columns are ignored on this backend)");
        }
    }
}

/// Parses `--runtime <name>` / `--runtime=<name>` from the command line
/// (default `"sim"`). Every `exp_*` binary accepts this flag; an unknown
/// backend name exits immediately with a usage message instead of
/// panicking mid-experiment.
pub fn runtime_arg() -> RuntimeSpec {
    let mut picked = RuntimeSpec::named("sim");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--runtime" {
            if let Some(name) = args.next() {
                picked = RuntimeSpec::named(&name);
            }
        } else if let Some(name) = arg.strip_prefix("--runtime=") {
            picked = RuntimeSpec::named(name);
        }
    }
    // Validate eagerly (per-row schedulers are resolved later, so probe
    // with a plain scheduler; `proc:<n>` pins the party count, so the
    // probe adopts it).
    let probe_n = picked
        .label()
        .strip_prefix("proc:")
        .and_then(|k| k.parse::<usize>().ok())
        .filter(|&k| k >= 4)
        .unwrap_or(4);
    if runtime_by_name(&picked.backend_for("random"), NetConfig::new(probe_n, 1, 0)).is_none() {
        eprintln!(
            "error: unknown --runtime {:?} (expected sim[:<scheduler>], \
             wire[:<scheduler>], async[:<scheduler>], sharded:<k>[:<scheduler>], \
             threaded[:<poll_ms>], or proc[:<n>])",
            picked.label()
        );
        std::process::exit(2);
    }
    picked.with_trace(trace_arg())
}

/// Parses `--trace <path>` / `--trace=<path>` from the command line:
/// where to write a flight-recorder trace (JSONL, plus a
/// `.perfetto.json` sibling) of one representative run.
pub fn trace_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    let mut picked = None;
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            picked = args.next().map(PathBuf::from);
        } else if let Some(path) = arg.strip_prefix("--trace=") {
            picked = Some(PathBuf::from(path));
        }
    }
    picked
}

/// Whether `--json` was passed: tables become JSON objects on stdout
/// (one per table) and banners move to stderr.
pub fn json_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--json")
}

/// Writes `events` as JSONL to `path` and as a Chrome/Perfetto trace to
/// `path` + `.perfetto.json`, announcing both on stderr.
pub fn write_trace_files(path: &Path, events: &[aft_sim::TraceEvent], label: &str) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(parent);
    }
    let perfetto = {
        let mut os = path.as_os_str().to_owned();
        os.push(".perfetto.json");
        PathBuf::from(os)
    };
    match std::fs::write(path, aft_sim::trace::to_jsonl(events)) {
        Ok(()) => eprintln!(
            "trace: {} events from run [{label}] -> {}",
            events.len(),
            path.display()
        ),
        Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
    }
    match std::fs::write(&perfetto, aft_sim::trace::to_chrome_trace(events)) {
        Ok(()) => eprintln!("trace: perfetto view -> {}", perfetto.display()),
        Err(e) => eprintln!("trace: cannot write {}: {e}", perfetto.display()),
    }
}

/// Output mode shared by every `exp_*` binary: Markdown tables (default)
/// or machine-readable JSON (`--json`).
#[derive(Debug, Clone, Copy)]
pub struct Output {
    json: bool,
}

/// Builds the [`Output`] from the command line (`--json`).
pub fn output_arg() -> Output {
    Output { json: json_arg() }
}

fn push_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Output {
    /// Whether JSON mode is active.
    pub fn is_json(&self) -> bool {
        self.json
    }

    /// Prints a human-facing banner line (stdout normally, stderr in
    /// JSON mode so stdout stays parseable).
    pub fn note(&self, msg: &str) {
        if self.json {
            eprintln!("{msg}");
        } else {
            println!("{msg}");
        }
    }

    /// Prints one result table: Markdown normally, a single-line JSON
    /// object `{"table": .., "rows": [{header: cell, ..}, ..]}` in JSON
    /// mode.
    pub fn table(&self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        if !self.json {
            print_table(title, headers, rows);
            return;
        }
        let mut out = String::from("{\"table\":");
        push_json_escaped(&mut out, title);
        out.push_str(",\"rows\":[");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (h, cell)) in headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_escaped(&mut out, h);
                out.push(':');
                push_json_escaped(&mut out, cell);
            }
            out.push('}');
        }
        out.push_str("]}");
        println!("{out}");
    }

    /// Prints the process-wide backend counter totals accumulated by
    /// [`run_protocol`] — the uniform pool/wire/decode-miss exposure
    /// every experiment binary ends with.
    pub fn backend_counters(&self) {
        let totals = TOTALS.lock().expect("totals poisoned");
        if totals.runs == 0 {
            return;
        }
        self.table(
            &format!("backend counters ({} runs)", totals.runs),
            &[
                "sent",
                "delivered",
                "dropped_shunned",
                "dropped_crashed",
                "shun_events",
                "steps",
                "pool_reused",
                "pool_alloc",
                "wire_frames",
                "wire_bytes",
                "wire_malformed",
                "decode_misses",
            ],
            &[vec![
                totals.sent.to_string(),
                totals.delivered.to_string(),
                totals.dropped_shunned.to_string(),
                totals.dropped_crashed.to_string(),
                totals.shun_events.to_string(),
                totals.steps.to_string(),
                totals.pool_reused.to_string(),
                totals.pool_alloc.to_string(),
                totals.wire_frames.to_string(),
                totals.wire_bytes.to_string(),
                totals.wire_malformed.to_string(),
                totals.decode_misses.to_string(),
            ]],
        );
    }
}

/// Process-wide backend counter totals, summed over every
/// [`run_protocol`] call (all public [`Metrics`] counters plus the
/// decode-miss total) — what [`Output::backend_counters`] reports.
#[derive(Debug, Default)]
struct BackendTotals {
    runs: u64,
    sent: u64,
    delivered: u64,
    dropped_shunned: u64,
    dropped_crashed: u64,
    shun_events: u64,
    steps: u64,
    pool_reused: u64,
    pool_alloc: u64,
    wire_frames: u64,
    wire_bytes: u64,
    wire_malformed: u64,
    decode_misses: u64,
}

static TOTALS: Mutex<BackendTotals> = Mutex::new(BackendTotals {
    runs: 0,
    sent: 0,
    delivered: 0,
    dropped_shunned: 0,
    dropped_crashed: 0,
    shun_events: 0,
    steps: 0,
    pool_reused: 0,
    pool_alloc: 0,
    wire_frames: 0,
    wire_bytes: 0,
    wire_malformed: 0,
    decode_misses: 0,
});

/// Folds one finished run's metrics into the process-wide backend
/// counter totals that [`Output::backend_counters`] reports. Experiment
/// binaries that build runtimes directly (instead of going through
/// [`run_protocol`], which records automatically) call this after each
/// `run`.
pub fn record_run(metrics: &Metrics) {
    record_totals(metrics);
}

fn record_totals(m: &Metrics) {
    let mut t = TOTALS.lock().expect("totals poisoned");
    t.runs += 1;
    t.sent += m.sent;
    t.delivered += m.delivered;
    t.dropped_shunned += m.dropped_shunned;
    t.dropped_crashed += m.dropped_crashed;
    t.shun_events += m.shun_events;
    t.steps += m.steps;
    t.pool_reused += m.pool_reused;
    t.pool_alloc += m.pool_alloc;
    t.wire_frames += m.wire_frames;
    t.wire_bytes += m.wire_bytes;
    t.wire_malformed += m.wire_malformed;
    t.decode_misses += m.decode_misses().map(|(_, c)| c).sum::<u64>();
}

/// Prints a Markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// The standard session id used by the runners.
pub fn session(kind: &'static str) -> SessionId {
    SessionId::root().child(SessionTag::new(kind, 0))
}

/// Which parties are Byzantine and how, for the standard runners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// All parties honest.
    None,
    /// The last `t` parties are silent from the start.
    CrashT,
    /// The last party is silent.
    CrashOne,
}

impl Adversary {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Adversary::None => "none",
            Adversary::CrashT => "crash-t",
            Adversary::CrashOne => "crash-1",
        }
    }

    /// Whether party `p` of `n` (threshold `t`) is Byzantine.
    pub fn is_byz(&self, p: usize, n: usize, t: usize) -> bool {
        match self {
            Adversary::None => false,
            Adversary::CrashT => p >= n - t,
            Adversary::CrashOne => p == n - 1,
        }
    }
}

/// Result of one protocol run.
#[derive(Debug, Clone)]
pub struct RunOutcome<T> {
    /// Outputs of the honest parties (in party order).
    pub outputs: Vec<T>,
    /// Whether all honest parties produced an output.
    pub all_terminated: bool,
    /// Whether all honest outputs are equal.
    pub agreement: bool,
    /// Network metrics at quiescence.
    pub metrics: Metrics,
    /// Delivery steps used.
    pub steps: u64,
}

/// Runs one `CoinFlip` execution and collects honest outputs.
#[allow(clippy::too_many_arguments)] // mirrors the experiment parameter grid
pub fn run_coin(
    rt: &RuntimeSpec,
    n: usize,
    t: usize,
    seed: u64,
    k: usize,
    coin: CoinKind,
    sched: &str,
    adversary: Adversary,
) -> RunOutcome<bool> {
    run_protocol(rt, n, t, seed, sched, adversary, |_, _| {
        Box::new(CoinFlip::new(CoinFlipParams::FixedK { k }, coin))
    })
    .map_outputs(|o: CoinFlipOutput| o.value)
}

/// Runs one `FairChoice(m)` execution.
#[allow(clippy::too_many_arguments)] // mirrors the experiment parameter grid
pub fn run_fair_choice(
    rt: &RuntimeSpec,
    n: usize,
    t: usize,
    seed: u64,
    m: usize,
    k: usize,
    coin: CoinKind,
    sched: &str,
    adversary: Adversary,
) -> RunOutcome<usize> {
    run_protocol(rt, n, t, seed, sched, adversary, |_, _| {
        Box::new(FairChoice::new(m, FairChoiceParams::FixedK { k }, coin))
    })
}

/// Runs one `FBA` execution over string inputs.
#[allow(clippy::too_many_arguments)] // mirrors the experiment parameter grid
pub fn run_fba(
    rt: &RuntimeSpec,
    n: usize,
    t: usize,
    seed: u64,
    inputs: &[String],
    k: usize,
    coin: CoinKind,
    sched: &str,
    adversary: Adversary,
) -> RunOutcome<String> {
    let inputs = inputs.to_vec();
    run_protocol(rt, n, t, seed, sched, adversary, move |p, _| {
        Box::new(Fba::new(
            inputs[p].clone(),
            FairChoiceParams::FixedK { k },
            coin,
        ))
    })
}

/// Generic runner: spawns `mk(p, byz)` for honest parties, `SilentInstance`
/// for Byzantine ones, runs to quiescence on the backend selected by `rt`,
/// and gathers honest outputs of type `T`.
pub fn run_protocol<T: Clone + PartialEq + 'static>(
    rt: &RuntimeSpec,
    n: usize,
    t: usize,
    seed: u64,
    sched: &str,
    adversary: Adversary,
    mk: impl Fn(usize, bool) -> Box<dyn Instance>,
) -> RunOutcome<T> {
    let mut net = rt.make(NetConfig::new(n, t, seed), sched);
    let tracing = rt.attach_trace(net.as_mut());
    let sid = session("exp");
    for p in 0..n {
        let inst: Box<dyn Instance> = if adversary.is_byz(p, n, t) {
            Box::new(SilentInstance)
        } else {
            mk(p, false)
        };
        net.spawn(PartyId(p), sid.clone(), inst);
    }
    let report = net.run(4_000_000_000);
    record_totals(&report.metrics);
    if tracing {
        rt.dump_trace(
            net.as_mut(),
            &format!("n={n} t={t} seed={seed} sched={sched} rt={}", rt.label()),
        );
    }
    assert_eq!(
        report.stop,
        StopReason::Quiescent,
        "run must quiesce (n={n} seed={seed} sched={sched} rt={})",
        rt.label()
    );
    let honest: Vec<usize> = (0..n).filter(|&p| !adversary.is_byz(p, n, t)).collect();
    let outputs: Vec<T> = honest
        .iter()
        .filter_map(|&p| net.output_as::<T>(PartyId(p), &sid).cloned())
        .collect();
    let all_terminated = outputs.len() == honest.len();
    let agreement = outputs.windows(2).all(|w| w[0] == w[1]);
    RunOutcome {
        outputs,
        all_terminated,
        agreement,
        metrics: report.metrics.clone(),
        steps: report.steps,
    }
}

impl<T> RunOutcome<T> {
    /// Maps the output type (e.g. project a field out of a richer output).
    pub fn map_outputs<U>(self, f: impl Fn(T) -> U) -> RunOutcome<U> {
        RunOutcome {
            outputs: self.outputs.into_iter().map(f).collect(),
            all_terminated: self.all_terminated,
            agreement: self.agreement,
            metrics: self.metrics,
            steps: self.steps,
        }
    }
}

/// Formats a probability with a 95% binomial confidence half-width.
pub fn fmt_prob(successes: usize, trials: usize) -> String {
    if trials == 0 {
        return "n/a".into();
    }
    let p = successes as f64 / trials as f64;
    let ci = 1.96 * (p * (1.0 - p) / trials as f64).sqrt();
    format!("{p:.3} ± {ci:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_runner_smoke() {
        let rt = RuntimeSpec::named("sim");
        let out = run_coin(
            &rt,
            4,
            1,
            0,
            1,
            CoinKind::Oracle(1),
            "random",
            Adversary::None,
        );
        assert!(out.all_terminated);
        assert!(out.agreement);
        assert_eq!(out.outputs.len(), 4);
    }

    #[test]
    fn coin_runner_on_threaded_backend() {
        let rt = RuntimeSpec::named("threaded");
        let out = run_coin(
            &rt,
            4,
            1,
            0,
            1,
            CoinKind::Oracle(1),
            "random",
            Adversary::None,
        );
        assert!(out.all_terminated);
        assert!(out.agreement);
    }

    #[test]
    fn runtime_spec_backend_resolution() {
        let sim = RuntimeSpec::named("sim");
        assert!(sim.honors_schedulers());
        assert_eq!(sim.backend_for("lifo"), "sim:lifo");
        let pinned = RuntimeSpec::named("sim:fifo");
        assert!(!pinned.honors_schedulers());
        assert_eq!(pinned.backend_for("lifo"), "sim:fifo");
        let threaded = RuntimeSpec::named("threaded");
        assert_eq!(threaded.backend_for("lifo"), "threaded");
        let sharded = RuntimeSpec::named("sharded:4");
        assert!(sharded.honors_schedulers());
        assert_eq!(sharded.backend_for("lifo"), "sharded:4:lifo");
        let sharded_pinned = RuntimeSpec::named("sharded:4:fifo");
        assert!(!sharded_pinned.honors_schedulers());
        assert_eq!(sharded_pinned.backend_for("lifo"), "sharded:4:fifo");
        let wire = RuntimeSpec::named("wire");
        assert!(wire.honors_schedulers());
        assert_eq!(wire.backend_for("lifo"), "wire:lifo");
        let wire_pinned = RuntimeSpec::named("wire:fifo");
        assert!(!wire_pinned.honors_schedulers());
        assert_eq!(wire_pinned.backend_for("lifo"), "wire:fifo");
        let event_loop = RuntimeSpec::named("async");
        assert!(event_loop.honors_schedulers());
        assert_eq!(event_loop.backend_for("lifo"), "async:lifo");
        let event_loop_pinned = RuntimeSpec::named("async:fifo");
        assert!(!event_loop_pinned.honors_schedulers());
        assert_eq!(event_loop_pinned.backend_for("lifo"), "async:fifo");
        let proc = RuntimeSpec::named("proc");
        assert!(!proc.honors_schedulers());
        assert_eq!(proc.backend_for("lifo"), "proc");
        let proc_sized = RuntimeSpec::named("proc:4");
        assert!(!proc_sized.honors_schedulers());
        assert_eq!(proc_sized.backend_for("lifo"), "proc:4");
    }

    #[test]
    fn coin_runner_on_wire_backend() {
        aft_core::scenarios::register_standard_codecs();
        let rt = RuntimeSpec::named("wire");
        let out = run_coin(
            &rt,
            4,
            1,
            0,
            1,
            CoinKind::Oracle(1),
            "random",
            Adversary::None,
        );
        assert!(out.all_terminated);
        assert!(out.agreement);
        assert!(out.metrics.wire_frames > 0, "bytes moved on the wire");
    }

    #[test]
    fn coin_runner_on_async_and_proc_backends() {
        for name in ["async", "proc:4"] {
            let rt = RuntimeSpec::named(name);
            let out = run_coin(
                &rt,
                4,
                1,
                0,
                1,
                CoinKind::Oracle(1),
                "random",
                Adversary::None,
            );
            assert!(out.all_terminated, "{name}");
            assert!(out.agreement, "{name}");
        }
    }

    #[test]
    fn coin_runner_on_sharded_backend() {
        let rt = RuntimeSpec::named("sharded:2");
        let out = run_coin(
            &rt,
            4,
            1,
            0,
            1,
            CoinKind::Oracle(1),
            "random",
            Adversary::None,
        );
        assert!(out.all_terminated);
        assert!(out.agreement);
    }

    #[test]
    fn adversary_membership() {
        assert!(Adversary::CrashT.is_byz(3, 4, 1));
        assert!(!Adversary::CrashT.is_byz(2, 4, 1));
        assert!(Adversary::CrashOne.is_byz(6, 7, 2));
        assert!(!Adversary::None.is_byz(0, 4, 1));
    }

    #[test]
    fn fmt_prob_output() {
        assert_eq!(fmt_prob(0, 0), "n/a");
        let s = fmt_prob(5, 10);
        assert!(s.starts_with("0.500"), "{s}");
    }
}
