//! Exhaustive verification of the Theorem 2.2 ingredients and the final
//! contradiction report (experiment E1).

use crate::attacks::{claim1_run, claim2_run, Claim1Randomness, Claim2Randomness};
use crate::f5::F5;
use crate::protocol::{honest_run, CMode, Randomness, ShareView};

/// Sorted multiset of one party's share-phase views over all honest
/// executions of secret `s` with C in `mode` — the distribution `π_{s,P}`
/// of Definition 2.3, materialised exactly. `party_a` selects A's or B's
/// marginal.
pub fn honest_view_multiset(s: F5, mode: CMode, party_a: bool) -> Vec<ShareView> {
    let mut v: Vec<ShareView> = Randomness::all()
        .map(|r| {
            let t = honest_run(s, mode, r);
            if party_a {
                t.view_a
            } else {
                t.view_b
            }
        })
        .collect();
    v.sort();
    v
}

/// **Lemma 2.8, exhaustively**: under the Claim 1 attack, A's view
/// multiset equals the honest `s = 0` (crashed-C) multiset, and B's equals
/// the honest `s = 1` multiset.
///
/// Returns `(a_matches, b_matches)`.
pub fn claim1_views_match_honest() -> (bool, bool) {
    let mut attack_a: Vec<ShareView> = Claim1Randomness::all()
        .map(|r| claim1_run(r).view_a)
        .collect();
    let mut attack_b: Vec<ShareView> = Claim1Randomness::all()
        .map(|r| claim1_run(r).view_b)
        .collect();
    attack_a.sort();
    attack_b.sort();

    // Honest multisets have 625 elements; the attack space also has 625
    // (c0, c1, nu_a, nu_b) — but A's view does not depend on c1's pairing
    // the same way, so compare *distributions*: each honest view appears a
    // fixed number of times. Normalise by deduplicating into (view, count).
    fn histogram(views: &[ShareView]) -> Vec<(ShareView, usize)> {
        let mut out: Vec<(ShareView, usize)> = Vec::new();
        for &v in views {
            match out.last_mut() {
                Some((u, c)) if *u == v => *c += 1,
                _ => out.push((v, 1)),
            }
        }
        out
    }

    let honest0: Vec<ShareView> = {
        let mut v: Vec<ShareView> = Randomness::all()
            .map(|r| honest_run(F5::ZERO, CMode::Crashed, r).view_a)
            .collect();
        v.sort();
        v
    };
    let honest1: Vec<ShareView> = {
        let mut v: Vec<ShareView> = Randomness::all()
            .map(|r| honest_run(F5::ONE, CMode::Crashed, r).view_b)
            .collect();
        v.sort();
        v
    };

    // Honest enumeration is over 5^4 with nu_c free (irrelevant to the
    // crashed-C views, so each distinct view appears 5x more often);
    // attack enumeration is over 5^4 too. Compare normalised histograms.
    fn normalised(h: Vec<(ShareView, usize)>) -> Vec<(ShareView, f64)> {
        let total: usize = h.iter().map(|(_, c)| c).sum();
        h.into_iter()
            .map(|(v, c)| (v, c as f64 / total as f64))
            .collect()
    }

    let a_match = normalised(histogram(&attack_a)) == normalised(histogram(&honest0));
    let b_match = normalised(histogram(&attack_b)) == normalised(histogram(&honest1));
    (a_match, b_match)
}

/// Exact Claim 2 statistics, by exhausting all `5⁵` executions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim2Exact {
    /// `Pr[A outputs a value of parity 1]` when the honest dealer shared
    /// the binary secret 0 — the wrong-output probability.
    pub wrong_output_prob: f64,
    /// Whether A and C always output the same value (consistency of the
    /// attack: honest parties cannot even detect a problem).
    pub honest_consistent: bool,
    /// Whether A's view multiset equals the honest `s=0` delayed-C world
    /// (Lemma 2.10's first bullet).
    pub views_match: bool,
}

/// Computes the exact Claim 2 statistics.
pub fn claim2_exact() -> Claim2Exact {
    let mut wrong = 0usize;
    let mut total = 0usize;
    let mut consistent = true;
    let mut attack_views: Vec<ShareView> = Vec::new();
    for rand in Claim2Randomness::all() {
        let o = claim2_run(rand);
        total += 1;
        if o.out_a.parity() {
            wrong += 1;
        }
        consistent &= o.out_a == o.out_c;
        attack_views.push(o.view_a);
    }
    attack_views.sort();

    // Honest s=0 views of A with C delayed (mask_c absent during S).
    let mut honest_views: Vec<ShareView> = Randomness::all()
        .map(|r| honest_run(F5::ZERO, CMode::Delayed, r).view_a)
        .collect();
    honest_views.sort();

    // Attack enumerates 5^5 (honest 5^4 x c_hat); A's view ignores c_hat,
    // so each honest view appears exactly 5 times — compare after
    // deduplication with counts scaled.
    let views_match = {
        let dedup = |mut v: Vec<ShareView>| {
            v.dedup();
            v
        };
        let mut a = attack_views.clone();
        let mut h = honest_views.clone();
        // Multiset equality up to uniform multiplicity:
        let ha = dedup(std::mem::take(&mut a));
        let hh = dedup(std::mem::take(&mut h));
        ha == hh && attack_views.len() == (5 * honest_views.len()) && {
            // every view must appear exactly 5x as often in the attack
            let count = |v: &[ShareView], x: ShareView| v.iter().filter(|&&y| y == x).count();
            ha.iter()
                .all(|&v| count(&attack_views, v) == 5 * count(&honest_views, v))
        }
    };

    Claim2Exact {
        wrong_output_prob: wrong as f64 / total as f64,
        honest_consistent: consistent,
        views_match,
    }
}

/// The assembled Theorem 2.2 verdict (experiment E1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem22Report {
    /// Honest-run correctness of the toy AVSS (exact; must be 1.0 — the
    /// toy *claims* far more than (2/3 + ε)-correctness).
    pub honest_correctness: f64,
    /// Perfect hiding verified exhaustively.
    pub hiding_exact: bool,
    /// Claim 1: A's attack views match honest `π_{0,A}` exactly.
    pub claim1_a_views_match: bool,
    /// Claim 1: B's attack views match honest `π_{1,B}` exactly.
    pub claim1_b_views_match: bool,
    /// Claim 1: all honest parties output one common bound value ρ.
    pub claim1_outputs_consistent: bool,
    /// Claim 2: exact `Pr[A outputs 1]` under an honest dealer sharing 0.
    pub claim2_wrong_output_prob: f64,
    /// The ceiling `(2/3+ε)`-correctness imposes on that probability for
    /// ε → 0⁺ (the attack must stay below `1/3 − ε` for the protocol to
    /// be correct; it does not).
    pub allowed_wrong_output_sup: f64,
}

impl Theorem22Report {
    /// Whether the measurements exhibit the Theorem 2.2 contradiction:
    /// the toy AVSS is perfectly correct and hiding in honest runs, yet
    /// the Claim 2 adversary forces wrong outputs more often than any
    /// `(2/3 + ε)`-correct protocol may allow.
    pub fn contradiction_established(&self) -> bool {
        self.honest_correctness == 1.0
            && self.hiding_exact
            && self.claim1_a_views_match
            && self.claim1_b_views_match
            && self.claim1_outputs_consistent
            && self.claim2_wrong_output_prob > self.allowed_wrong_output_sup
    }
}

/// Runs every exhaustive check and assembles the report.
pub fn theorem_2_2_report() -> Theorem22Report {
    // Honest correctness over all runs/modes/secrets.
    let mut correct = true;
    for s in F5::all() {
        for mode in [CMode::Honest, CMode::Crashed, CMode::Delayed] {
            for r in Randomness::all() {
                let t = honest_run(s, mode, r);
                correct &= t.out_a == Some(s) && t.out_b == Some(s);
            }
        }
    }

    // Hiding: each single party's view multiset identical across secrets.
    let hiding = {
        let base_a = honest_view_multiset(F5::ZERO, CMode::Crashed, true);
        let base_b = honest_view_multiset(F5::ZERO, CMode::Crashed, false);
        F5::all().all(|s| {
            honest_view_multiset(s, CMode::Crashed, true) == base_a
                && honest_view_multiset(s, CMode::Crashed, false) == base_b
        })
    };

    let (c1a, c1b) = claim1_views_match_honest();
    let c1_consistent = Claim1Randomness::all().all(|r| {
        let t = claim1_run(r);
        t.out_a == t.out_b && t.out_b == t.out_c
    });

    let c2 = claim2_exact();

    Theorem22Report {
        honest_correctness: if correct { 1.0 } else { 0.0 },
        hiding_exact: hiding,
        claim1_a_views_match: c1a,
        claim1_b_views_match: c1b,
        claim1_outputs_consistent: c1_consistent,
        claim2_wrong_output_prob: c2.wrong_output_prob,
        allowed_wrong_output_sup: 1.0 / 3.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim2_wrong_output_is_exactly_two_fifths() {
        let c2 = claim2_exact();
        assert!((c2.wrong_output_prob - 0.4).abs() < 1e-12, "{c2:?}");
        assert!(c2.honest_consistent);
        assert!(c2.views_match);
    }

    #[test]
    fn claim1_view_distributions_match() {
        let (a, b) = claim1_views_match_honest();
        assert!(a, "A's attack views differ from honest s=0 distribution");
        assert!(b, "B's attack views differ from honest s=1 distribution");
    }

    #[test]
    fn full_report_establishes_contradiction() {
        let report = theorem_2_2_report();
        assert!(report.contradiction_established(), "{report:?}");
        assert_eq!(report.honest_correctness, 1.0);
        assert!(report.claim2_wrong_output_prob > 1.0 / 3.0);
    }
}
