//! The five-element field `GF(5)` used by the toy AVSS.
//!
//! The lower-bound machinery needs *enumerable* randomness and message
//! spaces (the proof of Theorem 2.2 assumes bounded per-round randomness),
//! so the toy protocol works over the smallest field admitting degree-1
//! Shamir sharing among four parties.

use std::ops::{Add, Mul, Neg, Sub};

/// An element of `GF(5)`, kept in canonical range `0..5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct F5(u8);

impl F5 {
    /// The field size.
    pub const ORDER: u8 = 5;
    /// Zero.
    pub const ZERO: F5 = F5(0);
    /// One.
    pub const ONE: F5 = F5(1);

    /// Constructs an element, reducing modulo 5.
    pub const fn new(v: u8) -> F5 {
        F5(v % 5)
    }

    /// The canonical representative in `0..5`.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// All five field elements, for exhaustive enumeration.
    pub fn all() -> impl Iterator<Item = F5> {
        (0..5).map(F5)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn inv(self) -> F5 {
        // 1⁻¹=1, 2⁻¹=3, 3⁻¹=2, 4⁻¹=4
        match self.0 {
            1 => F5(1),
            2 => F5(3),
            3 => F5(2),
            4 => F5(4),
            _ => panic!("inverse of zero in GF(5)"),
        }
    }

    /// The parity interpretation used for binary secrets: field values
    /// `{1, 3}` read as bit 1, `{0, 2, 4}` as bit 0.
    pub fn parity(self) -> bool {
        self.0 % 2 == 1
    }
}

impl Add for F5 {
    type Output = F5;
    fn add(self, r: F5) -> F5 {
        F5((self.0 + r.0) % 5)
    }
}

impl Sub for F5 {
    type Output = F5;
    fn sub(self, r: F5) -> F5 {
        F5((self.0 + 5 - r.0) % 5)
    }
}

impl Mul for F5 {
    type Output = F5;
    fn mul(self, r: F5) -> F5 {
        F5((self.0 * r.0) % 5)
    }
}

impl Neg for F5 {
    type Output = F5;
    fn neg(self) -> F5 {
        F5((5 - self.0) % 5)
    }
}

impl std::fmt::Display for F5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The line through `(x1, y1)` and `(x2, y2)`, evaluated at zero — the
/// reconstruction primitive of the toy AVSS.
///
/// # Panics
///
/// Panics if `x1 == x2`.
pub fn line_at_zero(x1: F5, y1: F5, x2: F5, y2: F5) -> F5 {
    assert_ne!(x1, x2, "distinct x-coordinates required");
    // slope = (y2 - y1)/(x2 - x1); value at 0 = y1 - slope * x1.
    let slope = (y2 - y1) * (x2 - x1).inv();
    y1 - slope * x1
}

/// Whether three points are collinear.
pub fn collinear(p1: (F5, F5), p2: (F5, F5), p3: (F5, F5)) -> bool {
    // (y2-y1)(x3-x1) == (y3-y1)(x2-x1)
    (p2.1 - p1.1) * (p3.0 - p1.0) == (p3.1 - p1.1) * (p2.0 - p1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_exhaustive() {
        for a in F5::all() {
            assert_eq!(a + F5::ZERO, a);
            assert_eq!(a * F5::ONE, a);
            assert_eq!(a - a, F5::ZERO);
            assert_eq!(a + (-a), F5::ZERO);
            if a != F5::ZERO {
                assert_eq!(a * a.inv(), F5::ONE);
            }
            for b in F5::all() {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                assert_eq!((a + b) - b, a);
                for c in F5::all() {
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn parity_mapping() {
        assert!(!F5::new(0).parity());
        assert!(F5::new(1).parity());
        assert!(!F5::new(2).parity());
        assert!(F5::new(3).parity());
        assert!(!F5::new(4).parity());
    }

    #[test]
    fn line_reconstruction() {
        // f(x) = 3 + 2x: points (1,0), (2,2) — f(1)=5=0, f(2)=7=2.
        let at0 = line_at_zero(F5::new(1), F5::new(0), F5::new(2), F5::new(2));
        assert_eq!(at0, F5::new(3));
    }

    #[test]
    fn line_recovers_all_secrets_exhaustively() {
        for s in F5::all() {
            for c in F5::all() {
                let f = |x: F5| s + c * x;
                let r = line_at_zero(F5::new(1), f(F5::new(1)), F5::new(2), f(F5::new(2)));
                assert_eq!(r, s);
            }
        }
    }

    #[test]
    fn collinearity() {
        // On f(x) = 1 + x: (1,2), (2,3), (3,4).
        let on = [
            (F5::new(1), F5::new(2)),
            (F5::new(2), F5::new(3)),
            (F5::new(3), F5::new(4)),
        ];
        assert!(collinear(on[0], on[1], on[2]));
        assert!(!collinear(on[0], on[1], (F5::new(3), F5::new(0))));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn line_same_x_panics() {
        let _ = line_at_zero(F5::new(1), F5::new(0), F5::new(1), F5::new(1));
    }
}
