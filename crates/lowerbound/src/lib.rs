//! # aft-lowerbound
//!
//! **Theorem 2.2, executable**: for any ε > 0 and `n ≤ 4t` there is no
//! almost-surely-terminating `(2/3 + ε)`-correct `t`-resilient Byzantine
//! AVSS. This crate turns Section 2 of Abraham–Dolev–Stern (PODC 2020)
//! into code:
//!
//! * a **toy AVSS** at `n = 4, t = 1` ([`honest_run`]) with *perfect*
//!   honest-run correctness, *perfect* hiding (verified **exhaustively** —
//!   the toy's randomness space is 625 executions), and unconditional
//!   termination: exactly the protocol the theorem says cannot exist;
//! * the **Claim 1 attack** ([`claim1_run`]): an equivocating dealer makes
//!   A complete the share phase with a view distributed as an honest
//!   `s = 0` execution while B's view is distributed as `s = 1` — view
//!   distributions matched exactly, not statistically;
//! * the **Claim 2 attack** ([`claim2_run`]): against an *honest* dealer
//!   sharing 0, a faulty B simulates the `s = 1` world consistent with its
//!   transcript and forces honest A to output 1 with probability exactly
//!   **2/5 > 1/3 ≥ 1/3 − ε** — contradicting `(2/3+ε)`-correctness for
//!   every ε > 0;
//! * the assembled verdict ([`theorem_2_2_report`]), which experiment E1
//!   prints.
//!
//! The toy AVSS masks shares with one-time pads, which is what makes its
//! hiding perfect **and** its reveals unforgeable-proof-free: a reveal can
//! be forged to match any mask. Weakening the pad to make reveals
//! verifiable breaks hiding — the `n ≤ 4t` wall, concretely.
//!
//! # Example
//!
//! ```
//! let report = aft_lowerbound::theorem_2_2_report();
//! assert!(report.contradiction_established());
//! assert!((report.claim2_wrong_output_prob - 0.4).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod attacks;
mod f5;
mod protocol;

pub use analysis::{
    claim1_views_match_honest, claim2_exact, honest_view_multiset, theorem_2_2_report, Claim2Exact,
    Theorem22Report,
};
pub use attacks::{claim1_run, claim2_run, Claim1Randomness, Claim2Outcome, Claim2Randomness};
pub use f5::{collinear, line_at_zero, F5};
pub use protocol::{honest_run, CMode, Party, Randomness, Reveal, ShareView, Transcript};
