//! The two attacks of the Theorem 2.2 proof, as executable adversaries
//! against the toy AVSS.

use crate::f5::F5;
use crate::protocol::{toy_decide, Party, Randomness, Reveal, ShareView, ToyRecInput, Transcript};
use rand::Rng;

/// Randomness of the Claim 1 attack: the faulty dealer's two line
/// coefficients (the `s = 0` world shown to A, the `s = 1` world shown to
/// B) and the honest parties' pads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim1Randomness {
    /// Coefficient of the line `f₀(x) = 0 + c0·x` dealt to A.
    pub c0: F5,
    /// Coefficient of the line `f₁(x) = 1 + c1·x` dealt to B.
    pub c1: F5,
    /// A's pad.
    pub nu_a: F5,
    /// B's pad.
    pub nu_b: F5,
}

impl Claim1Randomness {
    /// Enumerates all 625 assignments.
    pub fn all() -> impl Iterator<Item = Claim1Randomness> {
        F5::all().flat_map(move |c0| {
            F5::all().flat_map(move |c1| {
                F5::all().flat_map(move |nu_a| {
                    F5::all().map(move |nu_b| Claim1Randomness { c0, c1, nu_a, nu_b })
                })
            })
        })
    }

    /// Samples uniformly.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut f = || F5::new(rng.gen_range(0..5));
        Claim1Randomness {
            c0: f(),
            c1: f(),
            nu_a: f(),
            nu_b: f(),
        }
    }
}

/// **Claim 1** — the equivocating-dealer attack.
///
/// The faulty dealer `D` deals A a share of a secret-0 line and B a share
/// of a secret-1 line, sends nothing to C, and the scheduler keeps C
/// silent through `S` (the paper's conditioning world). A and B complete
/// the share phase; A's view is distributed exactly like an honest-dealer
/// `s = 0` run with crashed C, B's like an `s = 1` run
/// (`claim1_views_match_honest` in `analysis` verifies both
/// *exhaustively*). During `R` the dealer stays silent; the honest
/// parties' reveals fix a *bound value* `ρ` chosen by neither the "0" nor
/// the "1" world — but consistently output by everyone, so no property is
/// violated *yet*. Claim 2 weaponises this ambiguity.
///
/// The toy protocol is non-adaptive (the dealer sends nothing after its
/// shares), so the proof's rejection-sampling over guessed randomness
/// collapses: the guessing event `G` has probability 1 here. DESIGN.md §4.6
/// records this simplification.
pub fn claim1_run(rand: Claim1Randomness) -> Transcript {
    let share_a = F5::ZERO + rand.c0 * Party::A.x(); // f0(1)
    let share_b = F5::ONE + rand.c1 * Party::B.x(); // f1(2)

    let mask_a = share_a + rand.nu_a;
    let mask_b = share_b + rand.nu_b;

    let view_a = ShareView {
        share: Some(share_a),
        nonce: rand.nu_a,
        mask_ab: Some(mask_b),
        mask_c: None,
    };
    let view_b = ShareView {
        share: Some(share_b),
        nonce: rand.nu_b,
        mask_ab: Some(mask_a),
        mask_c: None,
    };

    // Reconstruction: D silent; C participates (it was only slow) but has
    // no share to reveal.
    let reveal_a = Reveal {
        share: Some(share_a),
        nonce: rand.nu_a,
    };
    let reveal_b = Reveal {
        share: Some(share_b),
        nonce: rand.nu_b,
    };
    let reveal_c = Reveal {
        share: None,
        nonce: F5::ZERO,
    };

    let a_input = ToyRecInput {
        own: Some((Party::A.x(), share_a)),
        entries: vec![
            (Party::B, reveal_b, Some(mask_b)),
            (Party::C, reveal_c, None),
        ],
    };
    let b_input = ToyRecInput {
        own: Some((Party::B.x(), share_b)),
        entries: vec![
            (Party::A, reveal_a, Some(mask_a)),
            (Party::C, reveal_c, None),
        ],
    };
    let c_input = ToyRecInput {
        own: None,
        entries: vec![(Party::A, reveal_a, None), (Party::B, reveal_b, None)],
    };

    Transcript {
        view_a,
        view_b,
        out_a: Some(toy_decide(&a_input)),
        out_b: Some(toy_decide(&b_input)),
        out_c: Some(toy_decide(&c_input)),
    }
}

/// Randomness of the Claim 2 attack: an honest `s = 0` execution plus the
/// attacker B's *simulation sample* — the line coefficient of the fake
/// `s = 1` world B pretends it lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim2Randomness {
    /// The honest run's randomness (dealer's `c` and the three pads).
    pub honest: Randomness,
    /// B's sampled coefficient `ĉ` for its simulated `s = 1` world,
    /// drawn from `R¹_B | m¹_AB = m̂_AB` — which, thanks to the one-time
    /// pad, is the unconditioned distribution.
    pub c_hat: F5,
}

impl Claim2Randomness {
    /// Enumerates all `5⁵ = 3125` assignments.
    pub fn all() -> impl Iterator<Item = Claim2Randomness> {
        Randomness::all()
            .flat_map(move |honest| F5::all().map(move |c_hat| Claim2Randomness { honest, c_hat }))
    }

    /// Samples uniformly.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Claim2Randomness {
            honest: Randomness::sample(rng),
            c_hat: F5::new(rng.gen_range(0..5)),
        }
    }
}

/// Result of a Claim 2 run: the honest target A's output (and C's,
/// to check consistency), plus whether B's fake reveal was detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim2Outcome {
    /// A's reconstruction output (the attacked quantity).
    pub out_a: F5,
    /// C's output (the attack keeps honest parties consistent).
    pub out_c: F5,
    /// A's share-phase view (distributed per the honest `s=0` world).
    pub view_a: ShareView,
}

/// **Claim 2** — the simulating-B attack.
///
/// The dealer honestly shares `s = 0`; B plays the share phase honestly
/// (so A's view is *exactly* the honest distribution — Lemma 2.10's first
/// bullet); C's messages are delayed past `S`. After completing `S`, B
/// simulates the `s = 1` executions consistent with the messages `m̂_AB` it
/// exchanged with A — by the pad's perfect hiding this conditioning is
/// vacuous, so B samples a fresh line coefficient `ĉ` — and then runs `R`
/// *as if* its view were from that world: it reveals
/// `share′_B = 1 + 2ĉ` with the pad `ν′_B = m_B − share′_B` that makes the
/// reveal consistent with the mask it already sent. The dealer is silenced
/// by the scheduler during `R`.
///
/// A cannot distinguish this from the Claim 1 world, reconstructs the line
/// through its real point and B's fake point, and outputs 1 with
/// probability exactly **2/5 > 1/3** (`analysis::claim2_exact`), while
/// `(2/3 + ε)`-correctness allows wrong outputs with probability at most
/// `1/3 − ε` — the Theorem 2.2 contradiction, measured.
pub fn claim2_run(rand: Claim2Randomness) -> Claim2Outcome {
    let r = rand.honest;
    let s = F5::ZERO;
    let f = |x: F5| s + r.c * x;
    let share_a = f(Party::A.x());
    let share_b = f(Party::B.x());
    let share_c = f(Party::C.x());

    let mask_a = share_a + r.nu_a;
    let mask_b = share_b + r.nu_b;
    let mask_c = share_c + r.nu_c;

    let view_a = ShareView {
        share: Some(share_a),
        nonce: r.nu_a,
        mask_ab: Some(mask_b),
        mask_c: None, // C delayed through S
    };

    // B's fake world: share'_B = f̂₁(2) = 1 + 2ĉ, pad forged to match the
    // mask B already sent.
    let share_b_fake = F5::ONE + rand.c_hat * Party::B.x();
    let nu_b_fake = mask_b - share_b_fake;
    debug_assert_eq!(share_b_fake + nu_b_fake, mask_b, "forged reveal validates");

    let reveal_a = Reveal {
        share: Some(share_a),
        nonce: r.nu_a,
    };
    let reveal_b_fake = Reveal {
        share: Some(share_b_fake),
        nonce: nu_b_fake,
    };
    let reveal_c = Reveal {
        share: Some(share_c),
        nonce: r.nu_c,
    };

    // D is silent during R; C's delayed share-phase messages arrive before
    // R, so A can validate C's reveal.
    let a_input = ToyRecInput {
        own: Some((Party::A.x(), share_a)),
        entries: vec![
            (Party::B, reveal_b_fake, Some(mask_b)),
            (Party::C, reveal_c, Some(mask_c)),
        ],
    };
    let c_input = ToyRecInput {
        own: Some((Party::C.x(), share_c)),
        entries: vec![
            (Party::A, reveal_a, Some(mask_a)),
            (Party::B, reveal_b_fake, Some(mask_b)),
        ],
    };
    let _ = share_b; // B's true share is abandoned by the attack

    Claim2Outcome {
        out_a: toy_decide(&a_input),
        out_c: toy_decide(&c_input),
        view_a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim1_everyone_outputs_the_same_bound_value() {
        for rand in Claim1Randomness::all() {
            let t = claim1_run(rand);
            assert_eq!(t.out_a, t.out_b, "{rand:?}");
            assert_eq!(t.out_a, t.out_c, "{rand:?}");
        }
    }

    #[test]
    fn claim1_bound_value_is_the_ab_line() {
        // ρ = line through (1, c0) and (2, 1 + 2 c1) at 0 = 2c0 - 1 - 2c1.
        for rand in Claim1Randomness::all() {
            let t = claim1_run(rand);
            let expect = F5::new(2) * rand.c0 - F5::ONE - F5::new(2) * rand.c1;
            assert_eq!(t.out_a, Some(expect));
        }
    }

    #[test]
    fn claim2_forged_reveal_always_validates() {
        // The pad gives B full freedom: its forged reveal passes A's mask
        // check in every execution (this is the hiding/bindability
        // trade-off at the heart of the theorem).
        for rand in Claim2Randomness::all() {
            let _ = claim2_run(rand); // debug_assert inside checks validity
        }
    }

    #[test]
    fn claim2_keeps_honest_parties_consistent() {
        for rand in Claim2Randomness::all() {
            let o = claim2_run(rand);
            assert_eq!(o.out_a, o.out_c, "{rand:?}");
        }
    }
}
