//! The toy AVSS of the lower-bound demonstration.
//!
//! A deliberately simple 4-party (`A`, `B`, `C`, dealer `D`), 1-resilient
//! AVSS that *claims* to always terminate, with perfect hiding and perfect
//! honest-run correctness — the kind of protocol Theorem 2.2 proves cannot
//! exist. Every run is a pure function of the explicit [`Randomness`], so
//! all probability statements about it are verified **exhaustively** (the
//! proof's bounded-randomness assumption, taken literally).
//!
//! ## Protocol
//!
//! *Share*, with secret `s ∈ GF(5)` (binary secrets use `{0, 1}`):
//!
//! 1. `D` samples a line `f(x) = s + c·x` and sends `share_P = f(x_P)` to
//!    each of `A, B, C` (`x_A = 1, x_B = 2, x_C = 3`).
//! 2. Each of `A, B, C` samples a pad `ν_P ∈ GF(5)` and sends every other
//!    non-dealer the *mask* `m_P = share_P + ν_P`. (A one-time pad: this
//!    is what makes hiding perfect — and reveals unverifiable, which is
//!    the crack Theorem 2.2 wedges open.)
//! 3. A party completes `S` after holding its share and a mask from at
//!    least one other non-dealer (so one crashed party cannot block).
//!
//! *Rec*: every non-dealer reveals `(share_P, ν_P)`; a reveal is *valid*
//! at `Q` if it matches the mask `Q` received in step 2 (`share + ν = m`).
//! From the valid revealed points: if all are collinear, output the line
//! at zero; otherwise output the line through the two smallest-`x` valid
//! points (a deterministic tiebreak). Binary outputs read the field value
//! through [`F5::parity`].

use crate::f5::{collinear, line_at_zero, F5};
use rand::Rng;

/// The four parties of the lower-bound setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Party {
    /// Honest party A (x = 1).
    A,
    /// Party B (x = 2) — the Claim 2 attacker.
    B,
    /// Party C (x = 3) — "crashed"/delayed in the attacks.
    C,
    /// The dealer — the Claim 1 attacker.
    D,
}

impl Party {
    /// The share x-coordinate of a non-dealer party.
    ///
    /// # Panics
    ///
    /// Panics for [`Party::D`] (the dealer holds no share point).
    pub fn x(self) -> F5 {
        match self {
            Party::A => F5::new(1),
            Party::B => F5::new(2),
            Party::C => F5::new(3),
            Party::D => panic!("dealer has no share coordinate"),
        }
    }
}

/// Explicit randomness of one toy-AVSS execution: the dealer's line
/// coefficient and the three pads. Enumerating all `5⁴ = 625` values
/// enumerates all executions for a fixed secret.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Randomness {
    /// Dealer's line coefficient `c`.
    pub c: F5,
    /// A's pad.
    pub nu_a: F5,
    /// B's pad.
    pub nu_b: F5,
    /// C's pad.
    pub nu_c: F5,
}

impl Randomness {
    /// Enumerates all 625 randomness assignments.
    pub fn all() -> impl Iterator<Item = Randomness> {
        F5::all().flat_map(move |c| {
            F5::all().flat_map(move |nu_a| {
                F5::all().flat_map(move |nu_b| {
                    F5::all().map(move |nu_c| Randomness {
                        c,
                        nu_a,
                        nu_b,
                        nu_c,
                    })
                })
            })
        })
    }

    /// Samples uniform randomness.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Randomness {
        let mut f = || F5::new(rng.gen_range(0..5));
        Randomness {
            c: f(),
            nu_a: f(),
            nu_b: f(),
            nu_c: f(),
        }
    }
}

/// How party C behaves/is scheduled in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CMode {
    /// C participates normally in both phases.
    Honest,
    /// C is faulty-and-silent: it never sends anything (the conditioning
    /// world of the view distributions `π_{s,P}`).
    Crashed,
    /// C is honest but all its messages are delayed past the share phase
    /// (delivered before reconstruction) — the Claim 2 scheduling.
    Delayed,
}

/// One non-dealer party's view of the share phase: everything it received
/// plus its own randomness. `Ord`/`Eq` make views directly comparable and
/// histogrammable — the objects the lower-bound lemmas reason about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ShareView {
    /// The share received from the dealer (`None` = withheld).
    pub share: Option<F5>,
    /// Own pad.
    pub nonce: F5,
    /// Mask received from the other of {A, B} (`None` = not received).
    pub mask_ab: Option<F5>,
    /// Mask received from C (`None` in the Crashed/Delayed-S worlds).
    pub mask_c: Option<F5>,
}

/// A reveal message of the reconstruction phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reveal {
    /// The share being revealed (`None` = "I never received one").
    pub share: Option<F5>,
    /// The claimed pad.
    pub nonce: F5,
}

/// The full transcript of a run: share-phase views, reveals, and outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// A's share-phase view.
    pub view_a: ShareView,
    /// B's share-phase view.
    pub view_b: ShareView,
    /// Reconstruction outputs of A, B, C (`None` if the party did not
    /// participate).
    pub out_a: Option<F5>,
    /// B's output.
    pub out_b: Option<F5>,
    /// C's output.
    pub out_c: Option<F5>,
}

/// The reveals each party holds at reconstruction time, with the masks it
/// can validate against.
pub(crate) struct RecInput {
    /// (party, reveal, mask-I-received-from-them-or-None)
    pub(crate) entries: Vec<(Party, Reveal, Option<F5>)>,
    /// own point, always trusted
    pub(crate) own: Option<(F5, F5)>,
}

/// The toy reconstruction decision rule (identical for every party).
pub(crate) fn decide(input: &RecInput) -> F5 {
    let mut points: Vec<(F5, F5)> = Vec::new();
    if let Some(p) = input.own {
        points.push(p);
    }
    for &(party, reveal, mask) in &input.entries {
        let Some(share) = reveal.share else { continue };
        // Validate against the mask when one was received; a missing mask
        // (C crashed during S) leaves the reveal unverifiable but usable —
        // the protocol must terminate regardless.
        if let Some(m) = mask {
            if share + reveal.nonce != m {
                continue; // provably inconsistent reveal: drop
            }
        }
        points.push((party.x(), share));
    }
    points.sort();
    points.dedup_by_key(|p| p.0);
    match points.len() {
        0 | 1 => F5::ZERO,
        2 => line_at_zero(points[0].0, points[0].1, points[1].0, points[1].1),
        _ => {
            if collinear(points[0], points[1], points[2]) {
                line_at_zero(points[0].0, points[0].1, points[1].0, points[1].1)
            } else {
                // Deterministic tiebreak: the two smallest x-coordinates.
                line_at_zero(points[0].0, points[0].1, points[1].0, points[1].1)
            }
        }
    }
}

/// Runs the toy AVSS honestly (dealer shares `s`), with C in the given
/// mode, fully determined by `rand`.
pub fn honest_run(s: F5, c_mode: CMode, rand: Randomness) -> Transcript {
    let f = |x: F5| s + rand.c * x;
    let share_a = f(Party::A.x());
    let share_b = f(Party::B.x());
    let share_c = f(Party::C.x());

    let mask_a = share_a + rand.nu_a;
    let mask_b = share_b + rand.nu_b;
    let mask_c = share_c + rand.nu_c;

    let c_in_s = c_mode == CMode::Honest;
    let view_a = ShareView {
        share: Some(share_a),
        nonce: rand.nu_a,
        mask_ab: Some(mask_b),
        mask_c: if c_in_s { Some(mask_c) } else { None },
    };
    let view_b = ShareView {
        share: Some(share_b),
        nonce: rand.nu_b,
        mask_ab: Some(mask_a),
        mask_c: if c_in_s { Some(mask_c) } else { None },
    };

    // Reconstruction. C participates unless crashed; its delayed share-
    // phase masks are delivered before R in Delayed mode.
    let c_in_r = c_mode != CMode::Crashed;
    let mask_c_at_r = if c_mode == CMode::Crashed {
        None
    } else {
        Some(mask_c)
    };

    let reveal_a = Reveal {
        share: Some(share_a),
        nonce: rand.nu_a,
    };
    let reveal_b = Reveal {
        share: Some(share_b),
        nonce: rand.nu_b,
    };
    let reveal_c = Reveal {
        share: Some(share_c),
        nonce: rand.nu_c,
    };

    let a_input = RecInput {
        own: Some((Party::A.x(), share_a)),
        entries: {
            let mut e = vec![(Party::B, reveal_b, Some(mask_b))];
            if c_in_r {
                e.push((Party::C, reveal_c, mask_c_at_r));
            }
            e
        },
    };
    let b_input = RecInput {
        own: Some((Party::B.x(), share_b)),
        entries: {
            let mut e = vec![(Party::A, reveal_a, Some(mask_a))];
            if c_in_r {
                e.push((Party::C, reveal_c, mask_c_at_r));
            }
            e
        },
    };
    let c_input = RecInput {
        own: Some((Party::C.x(), share_c)),
        entries: vec![
            (Party::A, reveal_a, Some(mask_a)),
            (Party::B, reveal_b, Some(mask_b)),
        ],
    };

    Transcript {
        view_a,
        view_b,
        out_a: Some(decide(&a_input)),
        out_b: Some(decide(&b_input)),
        out_c: if c_in_r { Some(decide(&c_input)) } else { None },
    }
}

pub(crate) use {decide as toy_decide, RecInput as ToyRecInput};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_correctness_exhaustive_all_modes() {
        // Perfect correctness: every party that outputs, outputs s — over
        // ALL randomness, secrets and C-modes. (This is the toy's claimed
        // "1-correctness", which Theorem 2.2 shows must be attackable.)
        for s in F5::all() {
            for mode in [CMode::Honest, CMode::Crashed, CMode::Delayed] {
                for rand in Randomness::all() {
                    let t = honest_run(s, mode, rand);
                    assert_eq!(t.out_a, Some(s), "{mode:?} {rand:?}");
                    assert_eq!(t.out_b, Some(s));
                    if mode == CMode::Crashed {
                        assert_eq!(t.out_c, None);
                    } else {
                        assert_eq!(t.out_c, Some(s));
                    }
                }
            }
        }
    }

    #[test]
    fn perfect_hiding_exhaustive() {
        // The multiset of each SINGLE party's share-phase views is
        // identical for every secret — perfect hiding against t = 1
        // corruption, verified exhaustively. (The JOINT view of A and B
        // determines the line and hence the secret: that is not hiding's
        // concern, the adversary corrupts at most one party.)
        for mode in [CMode::Honest, CMode::Crashed] {
            let views_a = |s: F5| {
                let mut v: Vec<ShareView> = Randomness::all()
                    .map(|r| honest_run(s, mode, r).view_a)
                    .collect();
                v.sort();
                v
            };
            let views_b = |s: F5| {
                let mut v: Vec<ShareView> = Randomness::all()
                    .map(|r| honest_run(s, mode, r).view_b)
                    .collect();
                v.sort();
                v
            };
            let (a0, b0) = (views_a(F5::ZERO), views_b(F5::ZERO));
            for s in F5::all() {
                assert_eq!(views_a(s), a0, "A's view depends on secret for {mode:?}");
                assert_eq!(views_b(s), b0, "B's view depends on secret for {mode:?}");
            }
        }
    }

    #[test]
    fn joint_views_do_determine_the_secret() {
        // Sanity counterpoint: the JOINT (A, B) view multiset differs
        // across secrets — two shares pin the line down. This is why
        // hiding is stated against t = 1 corruption only.
        let joint = |s: F5| {
            let mut v: Vec<(ShareView, ShareView)> = Randomness::all()
                .map(|r| {
                    let t = honest_run(s, CMode::Crashed, r);
                    (t.view_a, t.view_b)
                })
                .collect();
            v.sort();
            v
        };
        assert_ne!(joint(F5::ZERO), joint(F5::ONE));
    }

    #[test]
    fn crashed_c_views_lack_c_messages() {
        let t = honest_run(
            F5::ZERO,
            CMode::Crashed,
            Randomness {
                c: F5::new(2),
                nu_a: F5::new(1),
                nu_b: F5::new(3),
                nu_c: F5::new(4),
            },
        );
        assert_eq!(t.view_a.mask_c, None);
        assert_eq!(t.view_b.mask_c, None);
        assert!(t.view_a.share.is_some());
    }

    #[test]
    fn invalid_reveal_is_dropped() {
        // A reveal inconsistent with its mask must be ignored by decide().
        let input = RecInput {
            own: Some((F5::new(1), F5::new(2))), // on line f(x)=1+x
            entries: vec![
                (
                    Party::B,
                    Reveal {
                        share: Some(F5::new(3)),
                        nonce: F5::new(0),
                    },
                    Some(F5::new(4)), // 3 + 0 != 4: invalid
                ),
                (
                    Party::C,
                    Reveal {
                        share: Some(F5::new(4)),
                        nonce: F5::new(1),
                    },
                    Some(F5::new(0)), // 4 + 1 = 5 = 0: valid
                ),
            ],
        };
        // Line through (1,2) and (3,4): f(0) = 1.
        assert_eq!(decide(&input), F5::new(1));
    }
}
