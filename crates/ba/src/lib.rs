//! # aft-ba
//!
//! Almost-surely terminating **binary Byzantine agreement** with optimal
//! resilience `n = 3t + 1`, the `BA` primitive of Definition 3.3 in
//! Abraham–Dolev–Stern (PODC 2020), built after Bracha'87's validated
//! three-step voting with a pluggable common coin.
//!
//! Properties (all verified by the test suite):
//!
//! * **Termination** — almost-sure: the probability of running `r` rounds
//!   decays geometrically in the coin's common-and-uniform probability.
//!   If some nonfaulty party completes, all nonfaulty participants do
//!   (Bracha-style `Decide` gadget).
//! * **Validity** — unanimous honest inputs decide that value in round 0,
//!   *deterministically*: vote validation blocks Byzantine counter-votes.
//! * **Correctness** (agreement) — independent of coin quality; two honest
//!   parties never output different values.
//!
//! Coin sources ([`CoinSource`]): [`LocalCoin`] (Ben-Or baseline,
//! exponential expected rounds), [`WeakSharedCoin`] (SVSS-based weak coin,
//! expected O(1) rounds under the simulator's schedulers — the configuration
//! matching the paper's reference \[2\]), and [`OracleCoin`] (ideal
//! functionality for ablations).
//!
//! # Example
//!
//! ```
//! use aft_ba::{BinaryBa, OracleCoin};
//! use aft_sim::{NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SimNetwork};
//!
//! let (n, t) = (4, 1);
//! let mut net = SimNetwork::new(NetConfig::new(n, t, 3), Box::new(RandomScheduler));
//! let sid = SessionId::root().child(SessionTag::new("ba", 0));
//! for p in 0..n {
//!     // Parties 0-1 propose true, 2-3 propose false.
//!     let input = p < 2;
//!     net.spawn(
//!         PartyId(p),
//!         sid.clone(),
//!         Box::new(BinaryBa::new(input, Box::new(OracleCoin::new(99)))),
//!     );
//! }
//! net.run(5_000_000);
//! let out: Vec<bool> = (0..n)
//!     .map(|p| *net.output_as::<bool>(PartyId(p), &sid).expect("terminated"))
//!     .collect();
//! assert!(out.windows(2).all(|w| w[0] == w[1]), "agreement: {out:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
mod ba;
mod coin;

pub use ba::{BinaryBa, V1, V2, V3};
pub use coin::{Coin, CoinSource, LocalCoin, OracleCoin, WeakCoinInstance, WeakSharedCoin};

/// Registers this crate's wire kinds: the three vote values, their
/// A-Cast wrappers, the termination-gadget `Decide`, and the weak coin's
/// gather set.
pub fn register_codecs(registry: &mut aft_sim::CodecRegistry) {
    registry.register::<V1>();
    registry.register::<V2>();
    registry.register::<V3>();
    registry.register::<aft_broadcast::AcastMsg<V1>>();
    registry.register::<aft_broadcast::AcastMsg<V2>>();
    registry.register::<aft_broadcast::AcastMsg<V3>>();
    ba::register_private_codecs(registry);
    coin::register_private_codecs(registry);
    attacks::register_codecs(registry);
}
