//! Byzantine behaviours against binary BA.

use crate::ba::{V1, V2, V3};
use aft_broadcast::Acast;
use aft_sim::{
    AttackRegistry, AttackRole, Context, CorruptMode, CorruptionPlan, Instance, ObsEvent, PartyId,
    Payload, SessionTag,
};
use rand::Rng;

/// Registers this module's message kinds (the decoy `Decide`).
pub(crate) fn register_codecs(registry: &mut aft_sim::CodecRegistry) {
    registry.register::<FakeDecide>();
}

/// Registers this crate's attacks with a scenario [`AttackRegistry`]:
///
/// * `random-voter[:rounds]` — [`RandomVoter`] (default 5 rounds);
/// * `fixed-voter[:true|false[:rounds]]` — [`FixedVoter`] (default
///   `true`, 5 rounds).
///
/// Both are single-episode attacks: they vote in whatever session they
/// are spawned in, so they apply to any episode of a BA-bearing stack.
pub fn register_attacks(registry: &mut AttackRegistry) {
    registry.register("random-voter", |ctx| {
        let rounds = if ctx.args.is_empty() {
            5
        } else {
            ctx.args.parse().ok()?
        };
        Some(AttackRole::Instance(Box::new(RandomVoter::new(rounds))))
    });
    registry.register("fixed-voter", |ctx| {
        let (target, rounds) = match ctx.args.split_once(':') {
            Some((v, r)) => (v, r.parse().ok()?),
            None => (ctx.args, 5),
        };
        let target = match target {
            "" | "true" => true,
            "false" => false,
            _ => return None,
        };
        Some(AttackRole::Instance(Box::new(FixedVoter::new(
            target, rounds,
        ))))
    });
    registry.register_adaptive("coin-favorite", |ctx| {
        let equivocate = match ctx.args {
            "" | "mute" => false,
            "equivocate" => true,
            _ => return None,
        };
        Some(Box::new(CoinFavorite::new(equivocate)))
    });
}

/// The adaptive adversary the BA termination bound is stated against:
/// watch the vote traffic, identify the party the schedule currently
/// favors (most BA-vote deliveries — the one whose voice is reaching
/// everyone, i.e. whoever the weak coin would likely elect), and corrupt
/// it mid-run. Strikes are paced (one per ~`2n²` vote deliveries) so the
/// adversary adapts round over round instead of spending its whole t-cap
/// on round 0.
///
/// Registered as `adaptive:coin-favorite[:mute|equivocate]@*`: the victim
/// is either muted or made to equivocate with a small budget.
pub struct CoinFavorite {
    equivocate: bool,
    /// Per-party BA-vote delivery counts (lazily sized from the plan).
    counts: Vec<u64>,
    seen: u64,
    next_strike: u64,
}

impl CoinFavorite {
    /// Creates the policy; `equivocate` selects the corruption mode.
    pub fn new(equivocate: bool) -> Self {
        CoinFavorite {
            equivocate,
            counts: Vec::new(),
            seen: 0,
            next_strike: 0,
        }
    }
}

impl aft_sim::AdaptiveAttack for CoinFavorite {
    fn observe(&mut self, ev: &ObsEvent, plan: &mut CorruptionPlan) {
        // Only BA vote traffic (acast sessions tagged bav1/bav2/bav3)
        // counts toward "favored": scheduler picks and other kinds say
        // nothing about who the coin would elect.
        let ObsEvent::Deliver { from, kind, .. } = ev else {
            return;
        };
        if !kind.starts_with("bav") {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; plan.n()];
            self.next_strike = 2 * (plan.n() as u64) * (plan.n() as u64);
        }
        if let Some(c) = self.counts.get_mut(from.0) {
            *c += 1;
        }
        self.seen += 1;
        if self.seen < self.next_strike {
            return;
        }
        self.next_strike += 2 * (plan.n() as u64) * (plan.n() as u64);
        // Argmax over non-victims, ties to the lowest id — deterministic.
        let favorite = self
            .counts
            .iter()
            .enumerate()
            .filter(|(p, _)| !plan.is_victim(PartyId(*p)))
            .max_by_key(|(p, c)| (**c, std::cmp::Reverse(*p)))
            .map(|(p, _)| PartyId(p));
        if let Some(p) = favorite {
            let mode = if self.equivocate {
                CorruptMode::Equivocate { budget: 8 }
            } else {
                CorruptMode::Mute
            };
            plan.corrupt(p, mode);
        }
    }
}

/// A Byzantine party that broadcasts uniformly random votes in every phase
/// of rounds `0..rounds` and sprays `Decide` claims for both values.
///
/// Vote validation at honest receivers caps its influence: its phase-2/3
/// votes are accepted only when the honest vote distribution makes them
/// plausible, so it can delay but not derail agreement — which is exactly
/// what the agreement tests assert.
pub struct RandomVoter {
    rounds: u64,
}

impl RandomVoter {
    /// Creates the attacker, active for the first `rounds` rounds.
    pub fn new(rounds: u64) -> Self {
        RandomVoter { rounds }
    }
}

/// Mirror of the BA's private `DecideMsg`, under a *different* wire kind;
/// honest parties match on their own kind, so this exercises the
/// type-confusion path on in-memory backends and the kind-mismatch path
/// on the wire backend alike.
#[derive(Debug, Clone, Copy)]
struct FakeDecide;

impl aft_sim::WireMessage for FakeDecide {
    const KIND: u16 = aft_sim::wire::KIND_BA_BASE + 5;
    const KIND_NAME: &'static str = "ba-fake-decide";
    const MAX_BODY_HINT: Option<usize> = Some(0);
    fn encode_body(&self, _out: &mut Vec<u8>) {}
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(FakeDecide)
    }
}

impl Instance for RandomVoter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let n = ctx.n();
        let me = ctx.me();
        for r in 0..self.rounds {
            let idx = r * n as u64 + me.0 as u64;
            let b1: bool = ctx.rng().gen();
            let b2: bool = ctx.rng().gen();
            let d: Option<bool> = match ctx.rng().gen_range(0..3) {
                0 => Some(true),
                1 => Some(false),
                _ => None,
            };
            ctx.spawn(
                SessionTag::new("bav1", idx),
                Box::new(Acast::sender(me, V1(b1))),
            );
            ctx.spawn(
                SessionTag::new("bav2", idx),
                Box::new(Acast::sender(me, V2(b2))),
            );
            ctx.spawn(
                SessionTag::new("bav3", idx),
                Box::new(Acast::sender(me, V3(d))),
            );
        }
        ctx.send_all(FakeDecide);
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}
}

/// A Byzantine party that tries to push a fixed value `target`: it votes
/// `target` in every phase regardless of its input or the honest
/// distribution.
pub struct FixedVoter {
    target: bool,
    rounds: u64,
}

impl FixedVoter {
    /// Creates the attacker pushing `target` for `rounds` rounds.
    pub fn new(target: bool, rounds: u64) -> Self {
        FixedVoter { target, rounds }
    }
}

impl Instance for FixedVoter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let n = ctx.n();
        let me = ctx.me();
        for r in 0..self.rounds {
            let idx = r * n as u64 + me.0 as u64;
            ctx.spawn(
                SessionTag::new("bav1", idx),
                Box::new(Acast::sender(me, V1(self.target))),
            );
            ctx.spawn(
                SessionTag::new("bav2", idx),
                Box::new(Acast::sender(me, V2(self.target))),
            );
            ctx.spawn(
                SessionTag::new("bav3", idx),
                Box::new(Acast::sender(me, V3(Some(self.target)))),
            );
        }
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}
}
