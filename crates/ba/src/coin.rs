//! Common-coin sources for binary Byzantine agreement.
//!
//! The BA protocol (Definition 3.3) is *safe* with any coin — agreement and
//! validity never depend on coin quality — but its expected round count
//! does. The three sources span the design space the paper discusses:
//!
//! * [`LocalCoin`] — Ben-Or'83: private fair coins. Almost-surely
//!   terminating, exponential expected rounds (the baseline of
//!   experiment E8).
//! * [`OracleCoin`] — an ideal common-coin functionality (every party
//!   derives the same pseudo-random bit from the round number). Used for
//!   ablations and fast tests; not a real protocol.
//! * [`WeakSharedCoin`] — an SVSS-based weak coin in the spirit of the
//!   paper's reference [2] (Abraham–Dolev–Halpern'08): every party deals a
//!   hidden random bit, parties gather `n − t` completed dealings,
//!   exchange gather sets and output the parity of the union they adopt.
//!   Parties may disagree on the output (that is what makes it *weak*),
//!   but it is common-and-uniform often enough to make BA terminate in
//!   expected O(1) rounds under the schedulers of `aft-sim`.

use aft_field::Fp;
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag};
use aft_svss::{ShareBundle, SvssRec, SvssShare};
use rand::Rng;
use std::collections::{BTreeSet, HashMap, HashSet};

/// What a [`CoinSource`] produces for a given round.
pub enum Coin {
    /// The coin value is immediately available locally.
    Immediate(bool),
    /// A protocol instance must be spawned; it outputs a `bool`.
    Protocol(Box<dyn Instance>),
}

/// A per-round coin supplier for binary BA.
pub trait CoinSource: Send {
    /// Produces the round-`round` coin (value or protocol).
    fn flip(&mut self, round: u64, ctx: &mut Context<'_>) -> Coin;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Ben-Or's private coin: each party flips locally. Unbiased but
/// uncorrelated across parties — agreement of all honest coins happens
/// with probability `2^-(h-1)` per round, so expected round counts grow
/// exponentially with `n`. The classic baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalCoin;

impl CoinSource for LocalCoin {
    fn flip(&mut self, _round: u64, ctx: &mut Context<'_>) -> Coin {
        Coin::Immediate(ctx.rng().gen())
    }
    fn name(&self) -> &'static str {
        "local"
    }
}

/// An ideal common coin: all parties derive the same unbiased bit from
/// `(salt, round)` via an integer hash. Models a perfect coin
/// functionality for tests and ablations (experiment E9); it is *not* a
/// distributed protocol.
#[derive(Debug, Clone, Copy)]
pub struct OracleCoin {
    salt: u64,
}

impl OracleCoin {
    /// Creates the oracle with a shared salt (all parties must use the same
    /// salt for the coin to be common).
    pub fn new(salt: u64) -> Self {
        OracleCoin { salt }
    }
}

/// SplitMix64 finalizer — a well-distributed integer hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CoinSource for OracleCoin {
    fn flip(&mut self, round: u64, _ctx: &mut Context<'_>) -> Coin {
        Coin::Immediate(mix(self.salt ^ mix(round)) & 1 == 1)
    }
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Factory for the SVSS-based weak shared coin: each flip spawns a
/// [`WeakCoinInstance`].
#[derive(Debug, Default, Clone, Copy)]
pub struct WeakSharedCoin;

impl CoinSource for WeakSharedCoin {
    fn flip(&mut self, _round: u64, _ctx: &mut Context<'_>) -> Coin {
        Coin::Protocol(Box::new(WeakCoinInstance::new()))
    }
    fn name(&self) -> &'static str {
        "weak-shared"
    }
}

/// Messages of the weak shared coin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WeakCoinMsg {
    /// "These n − t dealers' share phases completed for me."
    Gather(BTreeSet<usize>),
}

impl aft_sim::WireMessage for WeakCoinMsg {
    const KIND: u16 = aft_sim::wire::KIND_BA_BASE + 4;
    const KIND_NAME: &'static str = "ba-gather";

    fn encode_body(&self, out: &mut Vec<u8>) {
        let WeakCoinMsg::Gather(set) = self;
        for &d in set {
            aft_sim::wire::WireWriter::u64(out, d as u64);
        }
    }

    fn decode_body(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let mut r = aft_sim::wire::WireReader::new(bytes);
        let mut set = BTreeSet::new();
        let mut prev = None;
        while r.remaining() > 0 {
            let d = usize::try_from(r.u64()?).ok()?;
            // Strictly ascending: the canonical (BTreeSet iteration)
            // order is the only accepted one, so encode ∘ decode = id.
            if prev.is_some_and(|p| p >= d) {
                return None;
            }
            prev = Some(d);
            set.insert(d);
        }
        Some(WeakCoinMsg::Gather(set))
    }
}

/// Registers this module's private message kinds.
pub(crate) fn register_private_codecs(registry: &mut aft_sim::CodecRegistry) {
    registry.register::<WeakCoinMsg>();
}

/// Session tag kinds for the weak coin's children.
const WSHARE_TAG: &str = "wc-share";
const WREC_TAG: &str = "wc-rec";

/// One execution of the SVSS-based weak common coin (one instance per BA
/// round, spawned by the BA through [`WeakSharedCoin`]).
///
/// Protocol: every party deals an SVSS of a uniformly random bit; on
/// completing `n − t` dealings it broadcasts its *gather set*; having
/// received `n − t` gather sets it reconstructs every dealer in their
/// union and outputs the parity of the sum of reconstructed values.
///
/// Output commonality is *not* guaranteed (parties may adopt different
/// unions) — this is exactly the weak coin/strong coin gap the paper's
/// Section 3 closes. Unbiasedness-in-the-common-case comes from every
/// union containing at least one honest dealer whose bit is hidden until
/// the unions are fixed.
pub struct WeakCoinInstance {
    bundles: HashMap<usize, ShareBundle>,
    gather_sent: bool,
    gathers: HashMap<PartyId, BTreeSet<usize>>,
    /// The adopted union, fixed once n − t gather sets arrived.
    union: Option<BTreeSet<usize>>,
    /// Dealers in the union whose reconstruction has been spawned.
    rec_spawned: HashSet<usize>,
    rec_values: HashMap<usize, Fp>,
    done: bool,
}

impl WeakCoinInstance {
    /// Creates the instance.
    pub fn new() -> Self {
        WeakCoinInstance {
            bundles: HashMap::new(),
            gather_sent: false,
            gathers: HashMap::new(),
            union: None,
            rec_spawned: HashSet::new(),
            rec_values: HashMap::new(),
            done: false,
        }
    }

    fn try_progress(&mut self, ctx: &mut Context<'_>) {
        let (n, t) = (ctx.n(), ctx.t());
        if !self.gather_sent && self.bundles.len() >= n - t {
            self.gather_sent = true;
            let set: BTreeSet<usize> = self.bundles.keys().copied().collect();
            ctx.send_all(WeakCoinMsg::Gather(set));
        }
        if self.union.is_none() && self.gathers.len() >= n - t {
            let mut u = BTreeSet::new();
            for set in self.gathers.values() {
                u.extend(set.iter().copied());
            }
            self.union = Some(u);
        }
        // Once my own gather set is fixed, participate in the
        // reconstruction of EVERY completed dealing — not only my union's.
        // Parties may adopt different unions (that is what makes the coin
        // weak), so a dealer can be in a peer's union but not mine; if only
        // union members reconstructed, such dealings would lack the 2t+1
        // honest participants reconstruction needs and the peer would stall
        // forever. Universal participation keeps every reconstruction live;
        // my union only gates my own output.
        if self.gather_sent {
            let mut available: Vec<usize> = self
                .bundles
                .keys()
                .copied()
                .filter(|d| !self.rec_spawned.contains(d))
                .collect();
            // Sorted: spawn order must not depend on HashMap iteration
            // order, or deterministic replay breaks.
            available.sort_unstable();
            for dealer in available {
                self.rec_spawned.insert(dealer);
                let bundle = self.bundles[&dealer].clone();
                ctx.spawn(
                    SessionTag::new(WREC_TAG, dealer as u64),
                    Box::new(SvssRec::new(bundle)),
                );
            }
        }
        if let Some(union) = self.union.clone() {
            if !self.done && union.iter().all(|d| self.rec_values.contains_key(d)) {
                self.done = true;
                let sum: Fp = union.iter().map(|d| self.rec_values[d]).sum();
                ctx.output(sum.value() & 1 == 1);
            }
        }
    }
}

impl Default for WeakCoinInstance {
    fn default() -> Self {
        Self::new()
    }
}

impl Instance for WeakCoinInstance {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me();
        let bit = Fp::from(ctx.rng().gen::<bool>());
        for d in ctx.parties().collect::<Vec<_>>() {
            let inst: Box<dyn Instance> = if d == me {
                Box::new(SvssShare::dealer(me, bit))
            } else {
                Box::new(SvssShare::party(d))
            };
            ctx.spawn(SessionTag::new(WSHARE_TAG, d.0 as u64), inst);
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        let Some(WeakCoinMsg::Gather(set)) = payload.to_msg::<WeakCoinMsg>() else {
            return;
        };
        let (n, t) = (ctx.n(), ctx.t());
        if set.len() < n - t || set.iter().any(|&d| d >= n) {
            return; // malformed gather
        }
        if self.gathers.contains_key(&from) {
            return;
        }
        self.gathers.insert(from, set);
        self.try_progress(ctx);
    }

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        match child.kind {
            WSHARE_TAG => {
                if let Some(bundle) = output.downcast_ref::<ShareBundle>() {
                    self.bundles.insert(child.index as usize, bundle.clone());
                    self.try_progress(ctx);
                }
            }
            WREC_TAG => {
                if let Some(v) = output.downcast_ref::<Fp>() {
                    self.rec_values.insert(child.index as usize, *v);
                    self.try_progress(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use aft_sim::wire::{decode_frame_as, encode_frame};
    use aft_sim::WireMessage;

    #[test]
    fn gather_round_trips_in_canonical_order_only() {
        let msg = WeakCoinMsg::Gather([3usize, 0, 7].into_iter().collect());
        let mut frame = Vec::new();
        encode_frame(&msg, &mut frame);
        assert_eq!(decode_frame_as::<WeakCoinMsg>(&frame), Some(msg));
        // Duplicates and out-of-order entries are non-canonical bytes.
        let mut body = Vec::new();
        for d in [3u64, 3] {
            body.extend_from_slice(&d.to_le_bytes());
        }
        assert_eq!(WeakCoinMsg::decode_body(&body), None, "duplicate");
        let mut body = Vec::new();
        for d in [7u64, 3] {
            body.extend_from_slice(&d.to_le_bytes());
        }
        assert_eq!(WeakCoinMsg::decode_body(&body), None, "descending");
        assert_eq!(WeakCoinMsg::decode_body(&[1, 2, 3]), None, "ragged");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_sim::{scheduler_by_name, NetConfig, SessionId, SimNetwork};

    #[test]
    fn oracle_coin_is_common_and_roughly_fair() {
        // Same salt ⇒ same bits; distribution roughly balanced.
        let mut a = OracleCoin::new(7);
        let mut ones = 0;
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 0), scheduler_by_name("fifo").unwrap());
        // A context is needed only for the trait signature; oracle ignores it.
        let _ = &mut net;
        // Count bits through the raw mix function to avoid a context.
        for round in 0..1000u64 {
            if mix(7 ^ mix(round)) & 1 == 1 {
                ones += 1;
            }
        }
        assert!((350..650).contains(&ones), "ones={ones}");
        assert_eq!(a.name(), "oracle");
        let _ = &mut a;
    }

    #[test]
    fn weak_coin_standalone_terminates_and_is_boolean() {
        for seed in 0..5u64 {
            let (n, t) = (4usize, 1usize);
            let mut net = SimNetwork::new(
                NetConfig::new(n, t, seed),
                scheduler_by_name("random").unwrap(),
            );
            let sid = SessionId::root().child(SessionTag::new("wcoin", 0));
            for p in 0..n {
                net.spawn(PartyId(p), sid.clone(), Box::new(WeakCoinInstance::new()));
            }
            let report = net.run(10_000_000);
            assert_eq!(report.stop, aft_sim::StopReason::Quiescent, "seed={seed}");
            for p in 0..n {
                assert!(
                    net.output_as::<bool>(PartyId(p), &sid).is_some(),
                    "seed={seed} p={p} no coin output"
                );
            }
        }
    }

    #[test]
    fn weak_coin_often_agrees_under_random_scheduling() {
        let mut agree = 0;
        let trials = 10;
        for seed in 0..trials {
            let (n, t) = (4usize, 1usize);
            let mut net = SimNetwork::new(
                NetConfig::new(n, t, seed),
                scheduler_by_name("random").unwrap(),
            );
            let sid = SessionId::root().child(SessionTag::new("wcoin", 0));
            for p in 0..n {
                net.spawn(PartyId(p), sid.clone(), Box::new(WeakCoinInstance::new()));
            }
            net.run(10_000_000);
            let vals: Vec<bool> = (0..n)
                .filter_map(|p| net.output_as::<bool>(PartyId(p), &sid).copied())
                .collect();
            if vals.len() == n && vals.windows(2).all(|w| w[0] == w[1]) {
                agree += 1;
            }
        }
        assert!(agree >= trials / 2, "agreement too rare: {agree}/{trials}");
    }
}
