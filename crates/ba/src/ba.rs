//! Binary Byzantine agreement (Definition 3.3), after Bracha'87's
//! three-step validated-voting rounds with a pluggable common coin.

use crate::coin::{Coin, CoinSource};
use aft_broadcast::Acast;
use aft_sim::wire::{WireReader, WireWriter, KIND_BA_BASE};
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag, WireMessage};
use std::collections::{HashMap, HashSet};

/// Phase-1 vote value (A-Cast payload/output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct V1(pub bool);
/// Phase-2 vote value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct V2(pub bool);
/// Phase-3 vote value; `None` is the "no candidate" (⊥) vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct V3(pub Option<bool>);

/// Direct (non-broadcast) termination-gadget message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DecideMsg(pub(crate) bool);

macro_rules! bool_vote_wire {
    ($ty:ident, $kind:expr, $name:literal) => {
        impl WireMessage for $ty {
            const KIND: u16 = $kind;
            const KIND_NAME: &'static str = $name;
            const MAX_BODY_HINT: Option<usize> = Some(1);
            fn encode_body(&self, out: &mut Vec<u8>) {
                WireWriter::bool(out, self.0);
            }
            fn decode_body(bytes: &[u8]) -> Option<Self> {
                let mut r = WireReader::new(bytes);
                let v = r.bool()?;
                r.finish()?;
                Some($ty(v))
            }
        }
    };
}

bool_vote_wire!(V1, KIND_BA_BASE, "ba-v1");
bool_vote_wire!(V2, KIND_BA_BASE + 1, "ba-v2");
bool_vote_wire!(DecideMsg, KIND_BA_BASE + 3, "ba-decide");

/// Registers this module's private message kinds.
pub(crate) fn register_private_codecs(registry: &mut aft_sim::CodecRegistry) {
    registry.register::<DecideMsg>();
}

impl WireMessage for V3 {
    const KIND: u16 = KIND_BA_BASE + 2;
    const KIND_NAME: &'static str = "ba-v3";
    const MAX_BODY_HINT: Option<usize> = Some(1);
    fn encode_body(&self, out: &mut Vec<u8>) {
        WireWriter::u8(
            out,
            match self.0 {
                None => 2,
                Some(false) => 0,
                Some(true) => 1,
            },
        );
    }
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let v = match r.u8()? {
            0 => Some(false),
            1 => Some(true),
            2 => None,
            _ => return None,
        };
        r.finish()?;
        Some(V3(v))
    }
}

/// Session tag kinds for per-round vote broadcasts (index packs
/// `round * n + voter`).
const V1_TAG: &str = "bav1";
/// Phase-2 tag kind.
const V2_TAG: &str = "bav2";
/// Phase-3 tag kind.
const V3_TAG: &str = "bav3";
/// Coin child tag kind (index = round).
const COIN_TAG: &str = "bacoin";

/// Hard cap on rounds — almost-sure termination makes hitting this
/// practically impossible; it converts a liveness bug into a loud panic.
const MAX_ROUNDS: u64 = 10_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseState {
    /// Sent my phase-1 vote, waiting for n−t accepted phase-1 votes.
    Await1,
    /// Sent phase-2, waiting for n−t accepted phase-2 votes.
    Await2,
    /// Sent phase-3, waiting for n−t accepted phase-3 votes.
    Await3,
    /// Waiting for an asynchronous coin protocol.
    AwaitCoin,
}

#[derive(Default)]
struct RoundVotes {
    v1: HashMap<PartyId, bool>,
    v2: HashMap<PartyId, bool>,
    v3: HashMap<PartyId, Option<bool>>,
    /// Votes delivered but not yet validated.
    pending2: Vec<(PartyId, bool)>,
    pending3: Vec<(PartyId, Option<bool>)>,
    /// Whether my own phase-2 / phase-3 votes were broadcast.
    sent2: bool,
    sent3: bool,
    /// Whether the round's coin was already requested. The coin is flipped
    /// EVERY round by EVERY party — even parties that decide without
    /// consulting it — because a protocol coin (the SVSS-based weak coin)
    /// only terminates when all honest parties participate.
    coin_requested: bool,
}

/// One party's binary Byzantine agreement instance.
///
/// Structure per round (all vote messages via [`Acast`], which pins
/// Byzantine voters to a single value per broadcast):
///
/// 1. broadcast `V1(est)`; await `n−t` accepted phase-1 votes, set
///    `est₁ :=` their majority;
/// 2. broadcast `V2(est₁)` — accepted at a receiver only once `t+1` of its
///    accepted phase-1 votes support the value; await `n−t` accepted, set
///    the candidate `d := Some(w)` if `2t+1` accepted phase-2 votes carry
///    `w`, else `d := None`;
/// 3. broadcast `V3(d)` — `Some(w)` accepted only with `2t+1` accepted
///    phase-2 `w`-votes, `None` only if both values appear among accepted
///    phase-2 votes; await `n−t` accepted: `2t+1 × Some(w)` ⇒ **decide
///    `w`**, `t+1 × Some(w)` ⇒ `est := w`, otherwise `est :=` coin.
///
/// The validation rules make a unanimous round decide *deterministically*
/// (Byzantine counter-votes fail validation), which yields the Validity
/// property outright; agreement is threshold arithmetic (see the test
/// suite); and termination is almost-sure because every round that flips
/// the common coin onto the locked value ends in unanimity.
///
/// Deciding parties keep participating until a Bracha-style termination
/// gadget (`Decide` at `t+1` → relay, `2t+1` → halt) lets everyone stop,
/// which gives Definition 3.3's "if some nonfaulty party completes, all
/// do".
pub struct BinaryBa {
    input: bool,
    est: bool,
    round: u64,
    state: PhaseState,
    rounds: HashMap<u64, RoundVotes>,
    coin: Box<dyn CoinSource>,
    decided: Option<bool>,
    decide_sent: bool,
    decide_votes: HashMap<bool, HashSet<PartyId>>,
    halted: bool,
    output_done: bool,
}

impl BinaryBa {
    /// Creates the instance with this party's `input` bit and a coin
    /// source.
    pub fn new(input: bool, coin: Box<dyn CoinSource>) -> Self {
        BinaryBa {
            input,
            est: input,
            round: 0,
            state: PhaseState::Await1,
            rounds: HashMap::new(),
            coin,
            decided: None,
            decide_sent: false,
            decide_votes: HashMap::new(),
            halted: false,
            output_done: false,
        }
    }

    /// Number of rounds executed so far (diagnostics / experiments).
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    fn vote_tag(kind: &'static str, round: u64, voter: PartyId, n: usize) -> SessionTag {
        SessionTag::new(kind, round * n as u64 + voter.0 as u64)
    }

    /// Enters `round`: spawn receivers for everyone's three vote
    /// broadcasts and the sender for my phase-1 vote.
    fn start_round(&mut self, ctx: &mut Context<'_>) {
        if self.halted {
            return;
        }
        assert!(
            self.round < MAX_ROUNDS,
            "BA liveness failure: round cap hit"
        );
        let n = ctx.n();
        let me = ctx.me();
        let r = self.round;
        self.state = PhaseState::Await1;
        self.rounds.entry(r).or_default();
        for p in ctx.parties().collect::<Vec<_>>() {
            if p != me {
                ctx.spawn(
                    Self::vote_tag(V1_TAG, r, p, n),
                    Box::new(Acast::<V1>::receiver(p)),
                );
                ctx.spawn(
                    Self::vote_tag(V2_TAG, r, p, n),
                    Box::new(Acast::<V2>::receiver(p)),
                );
                ctx.spawn(
                    Self::vote_tag(V3_TAG, r, p, n),
                    Box::new(Acast::<V3>::receiver(p)),
                );
            }
        }
        ctx.spawn(
            Self::vote_tag(V1_TAG, r, me, n),
            Box::new(Acast::sender(me, V1(self.est))),
        );
        self.advance(ctx);
    }

    /// Validation + phase-progression fixpoint for the current round.
    fn advance(&mut self, ctx: &mut Context<'_>) {
        if self.halted {
            return;
        }
        let n = ctx.n();
        let t = ctx.t();
        let me = ctx.me();
        loop {
            let r = self.round;
            let votes = self.rounds.entry(r).or_default();

            // Validate pending phase-2 votes: value w needs t+1 accepted
            // phase-1 votes for w.
            let mut progressed = false;
            let mut i = 0;
            while i < votes.pending2.len() {
                let (voter, w) = votes.pending2[i];
                let support = votes.v1.values().filter(|&&v| v == w).count();
                if support > t {
                    votes.pending2.swap_remove(i);
                    votes.v2.entry(voter).or_insert(w);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            // Validate pending phase-3 votes.
            let mut i = 0;
            while i < votes.pending3.len() {
                let (voter, d) = votes.pending3[i];
                let ok = match d {
                    Some(w) => votes.v2.values().filter(|&&v| v == w).count() >= n - t,
                    None => votes.v2.values().any(|&v| v) && votes.v2.values().any(|&v| !v),
                };
                if ok {
                    votes.pending3.swap_remove(i);
                    votes.v3.entry(voter).or_insert(d);
                    progressed = true;
                } else {
                    i += 1;
                }
            }

            match self.state {
                PhaseState::Await1 => {
                    let votes = self.rounds.entry(r).or_default();
                    if votes.v1.len() >= n - t && !votes.sent2 {
                        votes.sent2 = true;
                        let trues = votes.v1.values().filter(|&&v| v).count();
                        let falses = votes.v1.len() - trues;
                        let maj = match trues.cmp(&falses) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => self.est,
                        };
                        self.state = PhaseState::Await2;
                        ctx.spawn(
                            Self::vote_tag(V2_TAG, r, me, n),
                            Box::new(Acast::sender(me, V2(maj))),
                        );
                        continue;
                    }
                }
                PhaseState::Await2 => {
                    let votes = self.rounds.entry(r).or_default();
                    if votes.v2.len() >= n - t && !votes.sent3 {
                        votes.sent3 = true;
                        let cand = [true, false]
                            .into_iter()
                            .find(|&w| votes.v2.values().filter(|&&v| v == w).count() >= n - t);
                        self.state = PhaseState::Await3;
                        ctx.spawn(
                            Self::vote_tag(V3_TAG, r, me, n),
                            Box::new(Acast::sender(me, V3(cand))),
                        );
                        continue;
                    }
                }
                PhaseState::Await3 => {
                    let votes = self.rounds.entry(r).or_default();
                    if votes.v3.len() >= n - t && !votes.coin_requested {
                        votes.coin_requested = true;
                        // Flip the coin unconditionally (see RoundVotes::
                        // coin_requested); the decision logic runs when the
                        // value is available.
                        match self.coin.flip(r, ctx) {
                            Coin::Immediate(b) => {
                                self.finish_round(b, ctx);
                                return;
                            }
                            Coin::Protocol(inst) => {
                                self.state = PhaseState::AwaitCoin;
                                ctx.spawn(SessionTag::new(COIN_TAG, r), inst);
                                return;
                            }
                        }
                    }
                }
                PhaseState::AwaitCoin => {}
            }
            if !progressed {
                break;
            }
        }
    }

    /// End-of-round transition, once the round's coin value is known:
    /// `2t+1 × Some(w)` ⇒ decide `w`; `t+1 × Some(w)` ⇒ `est := w`;
    /// otherwise `est :=` coin. At most one value can hold phase-3
    /// candidates (both would need `2t+1` accepted phase-2 votes each,
    /// more than `n` in total), so the winner is unambiguous.
    fn finish_round(&mut self, coin_value: bool, ctx: &mut Context<'_>) {
        let (n, t) = (ctx.n(), ctx.t());
        let votes = self.rounds.entry(self.round).or_default();
        let cand_count = |w: bool| votes.v3.values().filter(|&&d| d == Some(w)).count();
        let winner = [true, false].into_iter().find(|&w| cand_count(w) > 0);
        if let Some(w) = winner {
            let count = cand_count(w);
            if count >= n - t {
                self.decide(w, ctx);
                self.est = w;
                self.next_round(ctx);
                return;
            } else if count > t {
                self.est = w;
                self.next_round(ctx);
                return;
            }
        }
        self.est = coin_value;
        self.next_round(ctx);
    }

    fn next_round(&mut self, ctx: &mut Context<'_>) {
        // Old rounds' votes stay around (A-Cast stragglers still route),
        // but are no longer consulted.
        self.round += 1;
        self.start_round(ctx);
    }

    fn decide(&mut self, v: bool, ctx: &mut Context<'_>) {
        if let Some(prev) = self.decided {
            assert_eq!(prev, v, "BA decided two different values — safety bug");
            return;
        }
        self.decided = Some(v);
        if !self.output_done {
            self.output_done = true;
            ctx.output(v);
        }
        if !self.decide_sent {
            self.decide_sent = true;
            ctx.send_all(DecideMsg(v));
        }
    }

    fn on_decide_msg(&mut self, from: PartyId, v: bool, ctx: &mut Context<'_>) {
        if self.halted {
            return;
        }
        let (n, t) = (ctx.n(), ctx.t());
        let set = self.decide_votes.entry(v).or_default();
        if !set.insert(from) {
            return;
        }
        let count = set.len();
        if count > t {
            // At least one honest party decided v: adopt and relay.
            self.est = v;
            if !self.decide_sent {
                self.decide_sent = true;
                self.decided.get_or_insert(v);
                if !self.output_done {
                    self.output_done = true;
                    ctx.output(v);
                }
                ctx.send_all(DecideMsg(v));
            }
        }
        if count >= n - t {
            self.halted = true;
            if !self.output_done {
                self.output_done = true;
                ctx.output(v);
            }
        }
    }
}

impl Instance for BinaryBa {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.est = self.input;
        self.start_round(ctx);
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        if self.halted {
            return;
        }
        if let Some(DecideMsg(v)) = payload.to_msg::<DecideMsg>() {
            self.on_decide_msg(from, v, ctx);
        }
    }

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        if self.halted {
            return;
        }
        let n = ctx.n();
        let round = child.index / n as u64;
        let voter = PartyId((child.index % n as u64) as usize);
        match child.kind {
            V1_TAG => {
                if let Some(V1(v)) = output.downcast_ref::<V1>() {
                    self.rounds
                        .entry(round)
                        .or_default()
                        .v1
                        .entry(voter)
                        .or_insert(*v);
                }
            }
            V2_TAG => {
                if let Some(V2(v)) = output.downcast_ref::<V2>() {
                    self.rounds
                        .entry(round)
                        .or_default()
                        .pending2
                        .push((voter, *v));
                }
            }
            V3_TAG => {
                if let Some(V3(d)) = output.downcast_ref::<V3>() {
                    self.rounds
                        .entry(round)
                        .or_default()
                        .pending3
                        .push((voter, *d));
                }
            }
            COIN_TAG => {
                if child.index == self.round && self.state == PhaseState::AwaitCoin {
                    if let Some(&b) = output.downcast_ref::<bool>() {
                        self.finish_round(b, ctx);
                        return;
                    }
                }
            }
            _ => return,
        }
        if round == self.round {
            self.advance(ctx);
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use aft_sim::wire::{decode_frame_as, encode_frame};

    #[test]
    fn decide_msg_round_trips_and_rejects_junk() {
        for v in [true, false] {
            let mut frame = Vec::new();
            encode_frame(&DecideMsg(v), &mut frame);
            assert_eq!(decode_frame_as::<DecideMsg>(&frame), Some(DecideMsg(v)));
        }
        assert_eq!(DecideMsg::decode_body(&[2]), None);
        assert_eq!(DecideMsg::decode_body(&[0, 0]), None, "trailing bytes");
        assert_eq!(DecideMsg::decode_body(&[]), None);
    }

    #[test]
    fn v3_rejects_non_ternary_bodies() {
        assert_eq!(V3::decode_body(&[3]), None);
        assert_eq!(V3::decode_body(&[]), None);
        assert_eq!(V3::decode_body(&[1, 1]), None);
    }
}
