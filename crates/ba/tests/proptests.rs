//! Property-based tests of binary BA: agreement, validity, termination
//! under randomized inputs, schedulers, coins, and fault placements.

use aft_ba::{BinaryBa, CoinSource, LocalCoin, OracleCoin};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};
use proptest::prelude::*;

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("ba", 0))
}

fn sched_name(i: usize) -> &'static str {
    ["fifo", "random", "lifo", "window4"][i % 4]
}

fn coin(i: usize, salt: u64) -> Box<dyn CoinSource> {
    match i % 2 {
        0 => Box::new(OracleCoin::new(salt)),
        _ => Box::new(LocalCoin),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any input vector, scheduler, and coin source: all honest
    /// parties terminate with the same value; if inputs are unanimous the
    /// output is that value.
    #[test]
    fn agreement_validity_termination(
        seed in any::<u64>(),
        inputs in proptest::collection::vec(any::<bool>(), 4..=4),
        sched in 0usize..4,
        coin_idx in 0usize..2,
    ) {
        let (n, t) = (4usize, 1usize);
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name(sched_name(sched)).unwrap(),
        );
        for (p, &input) in inputs.iter().enumerate().take(n) {
            net.spawn(
                PartyId(p),
                sid(),
                Box::new(BinaryBa::new(input, coin(coin_idx, seed))),
            );
        }
        let report = net.run(500_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let outs: Vec<bool> = (0..n)
            .map(|p| *net.output_as::<bool>(PartyId(p), &sid()).expect("terminates"))
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "disagreement: {outs:?}");
        if inputs.windows(2).all(|w| w[0] == w[1]) {
            prop_assert_eq!(outs[0], inputs[0], "validity violated");
        }
    }

    /// With up to t silent parties at n = 7: honest agreement and
    /// unanimous-honest validity still hold.
    #[test]
    fn faulty_parties_cannot_break_agreement(
        seed in any::<u64>(),
        honest_input in any::<bool>(),
        mixed in any::<bool>(),
        byz_a in 0usize..7,
        byz_b in 0usize..7,
    ) {
        let (n, t) = (7usize, 2usize);
        let byz = [byz_a % n, byz_b % n];
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name("random").unwrap(),
        );
        for p in 0..n {
            let inst: Box<dyn Instance> = if byz.contains(&p) {
                Box::new(SilentInstance)
            } else {
                let input = if mixed { p % 2 == 0 } else { honest_input };
                Box::new(BinaryBa::new(input, Box::new(OracleCoin::new(seed))))
            };
            net.spawn(PartyId(p), sid(), inst);
        }
        let report = net.run(500_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let honest: Vec<usize> = (0..n).filter(|p| !byz.contains(p)).collect();
        let outs: Vec<bool> = honest
            .iter()
            .map(|&p| *net.output_as::<bool>(PartyId(p), &sid()).expect("terminates"))
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        if !mixed {
            prop_assert_eq!(outs[0], honest_input);
        }
    }
}

/// Codec laws for the BA vote kinds: round trips (bare and A-Cast
/// wrapped), kind separation between the three phases, totality on junk.
mod codec_props {
    use aft_ba::{V1, V2, V3};
    use aft_broadcast::AcastMsg;
    use aft_sim::wire::{decode_frame_as, encode_frame, parse_frame};
    use proptest::collection::vec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn vote_kinds_round_trip_and_stay_separated(b in any::<bool>(), d in 0u8..3) {
            let v3 = V3(match d { 0 => None, 1 => Some(false), _ => Some(true) });
            let mut f1 = Vec::new();
            encode_frame(&V1(b), &mut f1);
            let mut f2 = Vec::new();
            encode_frame(&V2(b), &mut f2);
            let mut f3 = Vec::new();
            encode_frame(&v3, &mut f3);
            prop_assert_eq!(decode_frame_as::<V1>(&f1), Some(V1(b)));
            prop_assert_eq!(decode_frame_as::<V2>(&f2), Some(V2(b)));
            prop_assert_eq!(decode_frame_as::<V3>(&f3), Some(v3));
            // Same body layout, different kinds: never cross-decode.
            prop_assert_eq!(decode_frame_as::<V2>(&f1), None);
            prop_assert_eq!(decode_frame_as::<V1>(&f2), None);

            let wrapped = AcastMsg::Echo(V1(b));
            let mut fw = Vec::new();
            encode_frame(&wrapped, &mut fw);
            prop_assert_eq!(decode_frame_as::<AcastMsg<V1>>(&fw.clone()), Some(wrapped));
            prop_assert_eq!(decode_frame_as::<AcastMsg<V2>>(&fw.clone()), None);
            prop_assert_eq!(decode_frame_as::<V1>(&fw), None, "wrapper kind differs");
        }

        #[test]
        fn vote_decoders_total_and_kind_honest(bytes in vec(any::<u8>(), 0..32)) {
            for kind in [
                decode_frame_as::<V1>(&bytes).map(|_| <V1 as aft_sim::WireMessage>::KIND),
                decode_frame_as::<V2>(&bytes).map(|_| <V2 as aft_sim::WireMessage>::KIND),
                decode_frame_as::<V3>(&bytes).map(|_| <V3 as aft_sim::WireMessage>::KIND),
            ]
            .into_iter()
            .flatten()
            {
                prop_assert_eq!(parse_frame(&bytes).unwrap().0, kind);
            }
        }
    }
}
