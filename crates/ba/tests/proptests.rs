//! Property-based tests of binary BA: agreement, validity, termination
//! under randomized inputs, schedulers, coins, and fault placements.

use aft_ba::{BinaryBa, CoinSource, LocalCoin, OracleCoin};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};
use proptest::prelude::*;

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("ba", 0))
}

fn sched_name(i: usize) -> &'static str {
    ["fifo", "random", "lifo", "window4"][i % 4]
}

fn coin(i: usize, salt: u64) -> Box<dyn CoinSource> {
    match i % 2 {
        0 => Box::new(OracleCoin::new(salt)),
        _ => Box::new(LocalCoin),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any input vector, scheduler, and coin source: all honest
    /// parties terminate with the same value; if inputs are unanimous the
    /// output is that value.
    #[test]
    fn agreement_validity_termination(
        seed in any::<u64>(),
        inputs in proptest::collection::vec(any::<bool>(), 4..=4),
        sched in 0usize..4,
        coin_idx in 0usize..2,
    ) {
        let (n, t) = (4usize, 1usize);
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name(sched_name(sched)).unwrap(),
        );
        for (p, &input) in inputs.iter().enumerate().take(n) {
            net.spawn(
                PartyId(p),
                sid(),
                Box::new(BinaryBa::new(input, coin(coin_idx, seed))),
            );
        }
        let report = net.run(500_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let outs: Vec<bool> = (0..n)
            .map(|p| *net.output_as::<bool>(PartyId(p), &sid()).expect("terminates"))
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "disagreement: {outs:?}");
        if inputs.windows(2).all(|w| w[0] == w[1]) {
            prop_assert_eq!(outs[0], inputs[0], "validity violated");
        }
    }

    /// With up to t silent parties at n = 7: honest agreement and
    /// unanimous-honest validity still hold.
    #[test]
    fn faulty_parties_cannot_break_agreement(
        seed in any::<u64>(),
        honest_input in any::<bool>(),
        mixed in any::<bool>(),
        byz_a in 0usize..7,
        byz_b in 0usize..7,
    ) {
        let (n, t) = (7usize, 2usize);
        let byz = [byz_a % n, byz_b % n];
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name("random").unwrap(),
        );
        for p in 0..n {
            let inst: Box<dyn Instance> = if byz.contains(&p) {
                Box::new(SilentInstance)
            } else {
                let input = if mixed { p % 2 == 0 } else { honest_input };
                Box::new(BinaryBa::new(input, Box::new(OracleCoin::new(seed))))
            };
            net.spawn(PartyId(p), sid(), inst);
        }
        let report = net.run(500_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let honest: Vec<usize> = (0..n).filter(|p| !byz.contains(p)).collect();
        let outs: Vec<bool> = honest
            .iter()
            .map(|&p| *net.output_as::<bool>(PartyId(p), &sid()).expect("terminates"))
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        if !mixed {
            prop_assert_eq!(outs[0], honest_input);
        }
    }
}
