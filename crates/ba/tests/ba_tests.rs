//! Definition 3.3 properties of binary BA: termination, validity,
//! correctness — across coin sources, schedulers, and adversaries.

use aft_ba::attacks::{FixedVoter, RandomVoter};
use aft_ba::{BinaryBa, CoinSource, LocalCoin, OracleCoin, WeakSharedCoin};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("ba", 0))
}

fn coin_by_name(name: &str, salt: u64) -> Box<dyn CoinSource> {
    match name {
        "local" => Box::new(LocalCoin),
        "oracle" => Box::new(OracleCoin::new(salt)),
        "weak-shared" => Box::new(WeakSharedCoin),
        other => panic!("unknown coin {other}"),
    }
}

/// Runs BA with the given per-party instances; returns the network.
fn run_ba(
    n: usize,
    t: usize,
    seed: u64,
    sched: &str,
    mk: impl Fn(usize) -> Box<dyn Instance>,
) -> SimNetwork {
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        scheduler_by_name(sched).unwrap(),
    );
    for p in 0..n {
        net.spawn(PartyId(p), sid(), mk(p));
    }
    let report = net.run(50_000_000);
    assert_eq!(
        report.stop,
        StopReason::Quiescent,
        "BA must reach quiescence"
    );
    net
}

fn honest_outputs(net: &SimNetwork, honest: &[usize]) -> Vec<bool> {
    honest
        .iter()
        .filter_map(|&p| net.output_as::<bool>(PartyId(p), &sid()).copied())
        .collect()
}

#[test]
fn validity_unanimous_inputs_decide_that_value() {
    for coin in ["local", "oracle", "weak-shared"] {
        for input in [true, false] {
            let net = run_ba(4, 1, 7, "random", |_| {
                Box::new(BinaryBa::new(input, coin_by_name(coin, 5)))
            });
            for p in 0..4 {
                assert_eq!(
                    net.output_as::<bool>(PartyId(p), &sid()),
                    Some(&input),
                    "coin={coin} input={input} p={p}"
                );
            }
        }
    }
}

#[test]
fn agreement_split_inputs_all_schedulers() {
    for sched in ["fifo", "random", "lifo", "window4"] {
        for seed in 0..10u64 {
            let net = run_ba(4, 1, seed, sched, |p| {
                Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(seed))))
            });
            let outs = honest_outputs(&net, &[0, 1, 2, 3]);
            assert_eq!(
                outs.len(),
                4,
                "sched={sched} seed={seed}: someone didn't terminate"
            );
            assert!(
                outs.windows(2).all(|w| w[0] == w[1]),
                "sched={sched} seed={seed}: {outs:?}"
            );
        }
    }
}

#[test]
fn agreement_with_silent_party() {
    for seed in 0..10u64 {
        let net = run_ba(4, 1, seed, "random", |p| {
            if p == 3 {
                Box::new(SilentInstance)
            } else {
                Box::new(BinaryBa::new(p == 0, Box::new(OracleCoin::new(seed))))
            }
        });
        let outs = honest_outputs(&net, &[0, 1, 2]);
        assert_eq!(outs.len(), 3, "seed={seed}");
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn agreement_with_random_voter() {
    for seed in 0..10u64 {
        let net = run_ba(4, 1, seed, "random", |p| {
            if p == 2 {
                Box::new(RandomVoter::new(30))
            } else {
                Box::new(BinaryBa::new(p == 0, Box::new(OracleCoin::new(seed))))
            }
        });
        let outs = honest_outputs(&net, &[0, 1, 3]);
        assert_eq!(outs.len(), 3, "seed={seed}");
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn validity_resists_fixed_voter_pushing_other_value() {
    // All honest input true; the Byzantine pushes false. Validation must
    // make honest parties decide true regardless.
    for seed in 0..10u64 {
        let net = run_ba(4, 1, seed, "random", |p| {
            if p == 1 {
                Box::new(FixedVoter::new(false, 30))
            } else {
                Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(seed))))
            }
        });
        for p in [0usize, 2, 3] {
            assert_eq!(
                net.output_as::<bool>(PartyId(p), &sid()),
                Some(&true),
                "seed={seed}"
            );
        }
    }
}

#[test]
fn larger_system_split_inputs() {
    for seed in 0..5u64 {
        let net = run_ba(7, 2, seed, "random", |p| {
            Box::new(BinaryBa::new(p < 3, Box::new(OracleCoin::new(seed))))
        });
        let outs = honest_outputs(&net, &[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(outs.len(), 7, "seed={seed}");
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn local_coin_terminates_split_inputs() {
    // Ben-Or baseline: still almost-surely terminating (just slower).
    for seed in 0..5u64 {
        let net = run_ba(4, 1, seed, "random", |p| {
            Box::new(BinaryBa::new(p % 2 == 0, Box::new(LocalCoin)))
        });
        let outs = honest_outputs(&net, &[0, 1, 2, 3]);
        assert_eq!(outs.len(), 4, "seed={seed}");
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn weak_shared_coin_terminates_split_inputs() {
    for seed in 0..3u64 {
        let net = run_ba(4, 1, seed, "random", |p| {
            Box::new(BinaryBa::new(p % 2 == 0, Box::new(WeakSharedCoin)))
        });
        let outs = honest_outputs(&net, &[0, 1, 2, 3]);
        assert_eq!(outs.len(), 4, "seed={seed}");
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "seed={seed}: {outs:?}"
        );
    }
}

#[test]
fn output_is_some_honest_input_under_split() {
    // Binary domain: with mixed inputs any output is trivially some honest
    // party's input — asserted anyway as a regression guard on outputs.
    for seed in 0..5u64 {
        let net = run_ba(4, 1, seed, "random", |p| {
            Box::new(BinaryBa::new(p == 0, Box::new(OracleCoin::new(seed))))
        });
        let outs = honest_outputs(&net, &[0, 1, 2, 3]);
        assert!(outs.iter().all(|&b| b == outs[0]));
    }
}

#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let net = run_ba(4, 1, seed, "random", |p| {
            Box::new(BinaryBa::new(p % 2 == 0, Box::new(OracleCoin::new(1))))
        });
        honest_outputs(&net, &[0, 1, 2, 3])
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn unanimous_true_with_starved_party() {
    // Starving one party's messages delays but cannot break validity.
    let net = run_ba(4, 1, 3, "starve:1", |_| {
        Box::new(BinaryBa::new(true, Box::new(OracleCoin::new(2))))
    });
    for p in 0..4 {
        assert_eq!(net.output_as::<bool>(PartyId(p), &sid()), Some(&true));
    }
}

/// The identical BA deployment driven through the `Runtime` trait on every
/// backend: agreement and termination hold over real threads exactly as
/// over the simulator.
#[test]
fn ba_through_runtime_trait_on_every_backend() {
    use aft_sim::{runtime_by_name, Runtime, RuntimeExt};
    for backend in ["sim", "threaded"] {
        let mut rt: Box<dyn Runtime> = runtime_by_name(backend, NetConfig::new(4, 1, 19)).unwrap();
        for p in 0..4 {
            rt.spawn(
                PartyId(p),
                sid(),
                Box::new(BinaryBa::new(p % 2 == 0, coin_by_name("oracle", 9))),
            );
        }
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend}");
        let outs: Vec<bool> = (0..4)
            .map(|p| *rt.output_as::<bool>(PartyId(p), &sid()).expect("decides"))
            .collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{backend}: {outs:?}");
    }
}
