//! Property tests for SVSS against Definition 3.2 of the paper:
//! validity of termination, termination, binding-or-shun, validity, hiding.

use aft_field::{BivarPoly, Fp};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};
use aft_svss::attacks::{EquivocalReveal, SilentRec, TwoFacedDealer, WrongCross, WrongSigma};
use aft_svss::{party_point, ShareBundle, SvssRec, SvssShare};
use rand::SeedableRng;

fn share_sid() -> SessionId {
    SessionId::root().child(SessionTag::new("svss-share", 0))
}

fn rec_sid() -> SessionId {
    SessionId::root().child(SessionTag::new("svss-rec", 0))
}

/// Spawns a share phase with per-party instance selection and runs to
/// quiescence.
fn run_share(
    n: usize,
    t: usize,
    seed: u64,
    sched: &str,
    mk: impl Fn(usize) -> Box<dyn Instance>,
) -> SimNetwork {
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, seed),
        scheduler_by_name(sched).unwrap(),
    );
    for p in 0..n {
        net.spawn(PartyId(p), share_sid(), mk(p));
    }
    let report = net.run(5_000_000);
    assert_eq!(report.stop, StopReason::Quiescent, "share must not hang");
    net
}

/// Spawns reconstruction for every party that has a bundle, using `mk_rec`
/// to choose the instance, then runs to quiescence.
fn run_rec(
    net: &mut SimNetwork,
    n: usize,
    mk_rec: impl Fn(usize, ShareBundle) -> Box<dyn Instance>,
) {
    let bundles: Vec<Option<ShareBundle>> = (0..n)
        .map(|p| {
            net.output_as::<ShareBundle>(PartyId(p), &share_sid())
                .cloned()
        })
        .collect();
    for (p, bundle) in bundles.into_iter().enumerate() {
        if let Some(b) = bundle {
            net.spawn(PartyId(p), rec_sid(), mk_rec(p, b));
        }
    }
    let report = net.run(5_000_000);
    assert_eq!(report.stop, StopReason::Quiescent, "rec must not hang");
}

fn honest(dealer: usize, secret: Fp) -> impl Fn(usize) -> Box<dyn Instance> {
    move |p| {
        if p == dealer {
            Box::new(SvssShare::dealer(PartyId(dealer), secret))
        } else {
            Box::new(SvssShare::party(PartyId(dealer)))
        }
    }
}

#[test]
fn honest_dealer_all_complete_share_all_schedulers() {
    for (n, t) in [(4, 1), (7, 2), (10, 3)] {
        for sched in ["fifo", "random", "lifo", "window4"] {
            let net = run_share(n, t, 11, sched, honest(0, Fp::new(5)));
            for p in 0..n {
                let b = net
                    .output_as::<ShareBundle>(PartyId(p), &share_sid())
                    .unwrap_or_else(|| panic!("n={n} sched={sched} p={p} did not complete"));
                assert_eq!(b.core.len(), n - t);
                // Core members voted OK, which requires having their row;
                // their bundles must therefore carry it. (Non-members may
                // complete via Done-amplification before their Shares
                // message arrives under adversarial schedulers.)
                if b.in_core() {
                    assert!(
                        b.row.is_some() && b.col.is_some(),
                        "core member without shares: n={n} sched={sched} p={p}"
                    );
                }
                // Under FIFO the dealer's Shares always land first.
                if sched == "fifo" {
                    assert!(b.row.is_some() && b.col.is_some());
                }
            }
        }
    }
}

#[test]
fn honest_dealer_validity_reconstruction_exact() {
    for (n, t) in [(4, 1), (7, 2)] {
        for seed in 0..10u64 {
            let secret = Fp::new(1000 + seed);
            let mut net = run_share(n, t, seed, "random", honest(0, secret));
            run_rec(&mut net, n, |_, b| Box::new(SvssRec::new(b)));
            for p in 0..n {
                assert_eq!(
                    net.output_as::<Fp>(PartyId(p), &rec_sid()),
                    Some(&secret),
                    "n={n} seed={seed} p={p}"
                );
            }
            assert_eq!(net.metrics().shun_events, 0, "no shun in honest runs");
        }
    }
}

#[test]
fn silent_party_does_not_block_share_or_rec() {
    for (n, t) in [(4, 1), (7, 2)] {
        let secret = Fp::new(99);
        let mut net = run_share(n, t, 3, "random", |p| {
            if p == 0 {
                Box::new(SvssShare::dealer(PartyId(0), secret))
            } else if p <= t {
                Box::new(SilentInstance)
            } else {
                Box::new(SvssShare::party(PartyId(0)))
            }
        });
        // Honest parties complete share despite t silent parties.
        for p in (t + 1)..n {
            assert!(
                net.output_as::<ShareBundle>(PartyId(p), &share_sid())
                    .is_some(),
                "n={n} p={p}"
            );
        }
        run_rec(&mut net, n, |_, b| Box::new(SvssRec::new(b)));
        for p in (t + 1)..n {
            assert_eq!(net.output_as::<Fp>(PartyId(p), &rec_sid()), Some(&secret));
        }
    }
}

#[test]
fn silent_during_rec_only_is_tolerated() {
    let (n, t) = (7, 2);
    let secret = Fp::new(4242);
    let mut net = run_share(n, t, 5, "random", honest(0, secret));
    // Parties 1 and 2 complete share but withhold reconstruction messages.
    run_rec(&mut net, n, |p, b| {
        if p == 1 || p == 2 {
            Box::new(SilentRec)
        } else {
            Box::new(SvssRec::new(b))
        }
    });
    for p in [0usize, 3, 4, 5, 6] {
        assert_eq!(net.output_as::<Fp>(PartyId(p), &rec_sid()), Some(&secret));
    }
}

#[test]
fn wrong_sigma_absorbed_by_error_correction() {
    let (n, t) = (7, 2);
    let secret = Fp::new(31337);
    for seed in 0..5 {
        let mut net = run_share(n, t, seed, "random", honest(0, secret));
        run_rec(&mut net, n, |p, b| {
            if p == 5 || p == 6 {
                Box::new(WrongSigma::new(b, Fp::new(17), false))
            } else {
                Box::new(SvssRec::new(b))
            }
        });
        for p in 0..5 {
            assert_eq!(
                net.output_as::<Fp>(PartyId(p), &rec_sid()),
                Some(&secret),
                "seed={seed} p={p}"
            );
        }
    }
}

#[test]
fn contradictory_sigma_and_reveal_causes_shun() {
    let (n, t) = (4, 1);
    let secret = Fp::new(8);
    let mut net = run_share(n, t, 7, "random", honest(0, secret));
    // Party 3 sends σ+17 but reveals the true row: self-contradiction.
    let in_core = net
        .output_as::<ShareBundle>(PartyId(3), &share_sid())
        .unwrap()
        .in_core();
    run_rec(&mut net, n, |p, b| {
        if p == 3 {
            Box::new(WrongSigma::new(b, Fp::new(17), true))
        } else {
            Box::new(SvssRec::new(b))
        }
    });
    for p in 0..3 {
        assert_eq!(net.output_as::<Fp>(PartyId(p), &rec_sid()), Some(&secret));
    }
    if in_core {
        assert!(
            net.metrics().shun_events > 0,
            "contradiction must trigger shunning"
        );
        // P3 must be shunned by at least one honest party.
        let shunned_by: usize = (0..3)
            .filter(|&p| {
                net.node(PartyId(p))
                    .shun_registry()
                    .shunned()
                    .any(|x| x == PartyId(3))
            })
            .count();
        assert!(shunned_by > 0);
    }
}

#[test]
fn equivocal_reveal_shunned_and_value_preserved() {
    let (n, t) = (7, 2);
    let secret = Fp::new(606);
    for seed in 0..5 {
        let mut net = run_share(n, t, seed, "random", honest(0, secret));
        let b5 = net
            .output_as::<ShareBundle>(PartyId(5), &share_sid())
            .unwrap()
            .clone();
        let attacker_in_core = b5.in_core();
        run_rec(&mut net, n, |p, b| {
            if p == 5 {
                Box::new(EquivocalReveal::new(b))
            } else {
                Box::new(SvssRec::new(b))
            }
        });
        for p in [0usize, 1, 2, 3, 4, 6] {
            assert_eq!(
                net.output_as::<Fp>(PartyId(p), &rec_sid()),
                Some(&secret),
                "seed={seed} p={p}"
            );
        }
        if attacker_in_core {
            assert!(net.metrics().shun_events > 0, "seed={seed}");
        }
    }
}

#[test]
fn honest_parties_never_shun_honest_parties() {
    // Across many seeds/schedulers with honest dealers and one byzantine
    // cross-corruptor, no honest party ever shuns an honest one.
    let (n, t) = (7, 2);
    for seed in 0..10u64 {
        for sched in ["random", "lifo"] {
            let mut net = run_share(n, t, seed, sched, |p| {
                if p == 0 {
                    Box::new(SvssShare::dealer(PartyId(0), Fp::new(1)))
                } else if p == 6 {
                    Box::new(WrongCross::new(PartyId(0), vec![PartyId(1), PartyId(2)]))
                } else {
                    Box::new(SvssShare::party(PartyId(0)))
                }
            });
            run_rec(&mut net, n, |_, b| Box::new(SvssRec::new(b)));
            for p in 0..6 {
                for shunned in net.node(PartyId(p)).shun_registry().shunned() {
                    assert_eq!(
                        shunned,
                        PartyId(6),
                        "honest P{p} shunned honest {shunned:?} (seed={seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn two_faced_dealer_majority_group_binds_consistently() {
    // Dealer deals secret_a to a group of size n-t (incl. itself) and
    // secret_b to the rest: the core forms inside group A and every honest
    // party that reconstructs outputs the SAME value (binding-or-shun).
    let (n, t) = (4, 1);
    for seed in 0..20u64 {
        let group_a: Vec<PartyId> = vec![PartyId(0), PartyId(1), PartyId(2)];
        let mut net = run_share(n, t, seed, "random", |p| {
            if p == 0 {
                Box::new(TwoFacedDealer::new(
                    PartyId(0),
                    group_a.clone(),
                    Fp::new(111),
                    Fp::new(222),
                ))
            } else {
                Box::new(SvssShare::party(PartyId(0)))
            }
        });
        let completed: Vec<usize> = (1..n)
            .filter(|&p| {
                net.output_as::<ShareBundle>(PartyId(p), &share_sid())
                    .is_some()
            })
            .collect();
        if completed.is_empty() {
            continue; // faulty dealer may stall the share phase: allowed
        }
        run_rec(&mut net, n, |_, b| Box::new(SvssRec::new(b)));
        let outputs: Vec<Fp> = completed
            .iter()
            .filter_map(|&p| net.output_as::<Fp>(PartyId(p), &rec_sid()).copied())
            .collect();
        // Binding-or-shun: all equal, or at least one shun event recorded.
        let all_equal = outputs.windows(2).all(|w| w[0] == w[1]);
        assert!(
            all_equal || net.metrics().shun_events > 0,
            "seed={seed}: outputs {outputs:?} with no shun"
        );
        // In this configuration group A hosts the core, so the bound value
        // is secret_a.
        if all_equal && !outputs.is_empty() {
            assert_eq!(outputs[0], Fp::new(111), "seed={seed}");
        }
    }
}

#[test]
fn two_faced_dealer_even_split_stalls_but_quiesces() {
    // 2-2 split at n=4 leaves no (n-t)-clique: nobody completes the share
    // phase, and the run still reaches quiescence (no hang).
    let (n, t) = (4, 1);
    let net = run_share(n, t, 2, "random", |p| {
        if p == 0 {
            Box::new(TwoFacedDealer::new(
                PartyId(0),
                vec![PartyId(0), PartyId(1)],
                Fp::new(1),
                Fp::new(2),
            ))
        } else {
            Box::new(SvssShare::party(PartyId(0)))
        }
    });
    for p in 1..n {
        assert!(net
            .output_as::<ShareBundle>(PartyId(p), &share_sid())
            .is_none());
    }
}

#[test]
fn termination_totality_if_one_completes_all_complete() {
    // Under every scheduler: if any honest party completed the share
    // phase, every honest party did (Definition 3.2, Termination).
    for seed in 0..10u64 {
        for sched in ["random", "lifo", "starve:2"] {
            let net = run_share(7, 2, seed, sched, honest(3, Fp::new(50)));
            let done: Vec<bool> = (0..7)
                .map(|p| {
                    net.output_as::<ShareBundle>(PartyId(p), &share_sid())
                        .is_some()
                })
                .collect();
            let any = done.iter().any(|&b| b);
            let all = done.iter().all(|&b| b);
            assert!(
                !any || all,
                "sched={sched} seed={seed}: partial completion {done:?}"
            );
        }
    }
}

#[test]
fn cores_agree_across_parties() {
    let net = run_share(7, 2, 9, "random", honest(0, Fp::new(7)));
    let cores: Vec<Vec<PartyId>> = (0..7)
        .map(|p| {
            net.output_as::<ShareBundle>(PartyId(p), &share_sid())
                .unwrap()
                .core
                .clone()
        })
        .collect();
    for c in &cores[1..] {
        assert_eq!(c, &cores[0], "A-Cast must yield one agreed core");
    }
}

#[test]
fn perfect_hiding_constructive_witness() {
    // For ANY t rows+cols an adversary holds, and ANY alternative secret
    // s', there is a sharing polynomial consistent with that exact view and
    // secret s'. We construct it: F' = F + (s' - s)/Z(0,0) * Z with
    // Z = prod_{i in T} (x - x_i)(y - x_i), which vanishes on all of the
    // adversary's rows and columns.
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(99);
    let t = 2usize;
    let s = Fp::new(10);
    let s_alt = Fp::new(999);
    let f = BivarPoly::random_with_secret(s, t, &mut rng);
    let adversary: Vec<PartyId> = vec![PartyId(1), PartyId(4)]; // |T| = t

    // Z(x,y) as an evaluation closure.
    let z = |x: Fp, y: Fp| -> Fp {
        adversary
            .iter()
            .map(|&i| {
                let xi = party_point(i);
                (x - xi) * (y - xi)
            })
            .product()
    };
    let z00 = z(Fp::ZERO, Fp::ZERO);
    assert!(!z00.is_zero());
    let scale = (s_alt - s) / z00;
    let f_alt = |x: Fp, y: Fp| f.eval(x, y) + scale * z(x, y);

    // Same view: rows and cols of adversary parties agree everywhere.
    for &i in &adversary {
        let xi = party_point(i);
        for probe in 0..20u64 {
            let y = Fp::new(probe * 7 + 1);
            assert_eq!(f_alt(xi, y), f.eval(xi, y), "row of {i:?}");
            assert_eq!(f_alt(y, xi), f.eval(y, xi), "col of {i:?}");
        }
    }
    // Different secret.
    assert_eq!(f_alt(Fp::ZERO, Fp::ZERO), s_alt);
    // F' still has degree <= 2t in each variable... but crucially the
    // degree-t hiding argument needs |T| = t so deg Z = t per variable and
    // F' stays degree-t-per-variable: verify by interpolating a row of F'
    // from t+1 points and checking a fresh point.
    let pts: Vec<(Fp, Fp)> = (1..=t as u64 + 1)
        .map(|k| (Fp::new(100 + k), f_alt(Fp::new(55), Fp::new(100 + k))))
        .collect();
    let row_poly = aft_field::interpolate(&pts).unwrap();
    assert_eq!(
        row_poly.eval(Fp::new(777)),
        f_alt(Fp::new(55), Fp::new(777)),
        "F' row must still be degree t"
    );
}

#[test]
fn hiding_adversary_view_statistics_independent_of_secret() {
    // Statistical regression test: the parity of the adversary's row value
    // at a fixed probe point should be ~independent of the secret.
    let trials = 400;
    let mut count = [0usize; 2];
    for (si, s) in [Fp::ZERO, Fp::ONE].into_iter().enumerate() {
        for seed in 0..trials {
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let f = BivarPoly::random_with_secret(s, 1, &mut rng);
            // adversary = party 2's row, probe at y=5
            let v = f.row(party_point(PartyId(2))).eval(Fp::new(5));
            if v.value() % 2 == 1 {
                count[si] += 1;
            }
        }
    }
    let diff = (count[0] as i64 - count[1] as i64).abs();
    assert!(
        diff < (trials as f64 * 0.15) as i64,
        "view statistic correlates with secret: {count:?}"
    );
}

#[test]
fn shun_bound_under_repeated_attacks() {
    // Run many SVSS instances with an equivocal revealer: total shun
    // events stay below n^2 because each ordered pair shuns once.
    let (n, t) = (4, 1);
    let mut net = SimNetwork::new(
        NetConfig::new(n, t, 77),
        scheduler_by_name("random").unwrap(),
    );
    let instances = 12;
    for k in 0..instances {
        let ssid = SessionId::root().child(SessionTag::new("svss-share", k));
        for p in 0..n {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(SvssShare::dealer(PartyId(0), Fp::new(k)))
            } else {
                Box::new(SvssShare::party(PartyId(0)))
            };
            net.spawn(PartyId(p), ssid.clone(), inst);
        }
    }
    net.run(20_000_000);
    for k in 0..instances {
        let ssid = SessionId::root().child(SessionTag::new("svss-share", k));
        let rsid = SessionId::root().child(SessionTag::new("svss-rec", k));
        let bundles: Vec<Option<ShareBundle>> = (0..n)
            .map(|p| net.output_as::<ShareBundle>(PartyId(p), &ssid).cloned())
            .collect();
        for (p, b) in bundles.into_iter().enumerate() {
            if let Some(b) = b {
                let inst: Box<dyn Instance> = if p == 3 {
                    Box::new(EquivocalReveal::new(b))
                } else {
                    Box::new(SvssRec::new(b))
                };
                net.spawn(PartyId(p), rsid.clone(), inst);
            }
        }
    }
    net.run(20_000_000);
    let shuns = net.metrics().shun_events;
    assert!(
        shuns < (n * n) as u64,
        "shun events {shuns} must stay under n^2 = {}",
        n * n
    );
    // And the attacker really is shunned by some honest party after the
    // first detected equivocation.
    assert!(shuns >= 1);
}

#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let mut net = run_share(4, 1, seed, "random", honest(0, Fp::new(5)));
        run_rec(&mut net, 4, |_, b| Box::new(SvssRec::new(b)));
        (0..4)
            .map(|p| net.output_as::<Fp>(PartyId(p), &rec_sid()).copied())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(123), run(123));
}

#[test]
fn dealer_byzantine_junk_core_proposal_ignored() {
    // A dealer that A-Casts an invalid core (wrong size) must not crash
    // honest parties; nobody completes, run stays quiescent.
    struct JunkCoreDealer;
    impl Instance for JunkCoreDealer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            // Send no shares, propose garbage core straight away.
            ctx.spawn(
                SessionTag::new(aft_svss::CORE_TAG, 0),
                Box::new(aft_broadcast::Acast::sender(
                    PartyId(0),
                    vec![0usize, 0, 99],
                )),
            );
        }
        fn on_message(&mut self, _f: PartyId, _p: &aft_sim::Payload, _c: &mut Context<'_>) {}
    }
    use aft_sim::Context;

    let net = run_share(4, 1, 4, "random", |p| {
        if p == 0 {
            Box::new(JunkCoreDealer)
        } else {
            Box::new(SvssShare::party(PartyId(0)))
        }
    });
    for p in 1..4 {
        assert!(net
            .output_as::<ShareBundle>(PartyId(p), &share_sid())
            .is_none());
    }
}

/// The identical SVSS share phase driven through the `Runtime` trait on
/// every backend: all parties complete with consistent bundles.
#[test]
fn svss_share_through_runtime_trait_on_every_backend() {
    use aft_sim::{runtime_by_name, Runtime, RuntimeExt};
    for backend in ["sim", "threaded"] {
        let mut rt: Box<dyn Runtime> = runtime_by_name(backend, NetConfig::new(4, 1, 41)).unwrap();
        for p in 0..4 {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(SvssShare::dealer(PartyId(0), Fp::new(77)))
            } else {
                Box::new(SvssShare::party(PartyId(0)))
            };
            rt.spawn(PartyId(p), share_sid(), inst);
        }
        let report = rt.run(1_000_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend}");
        for p in 0..4 {
            assert!(
                rt.output_as::<ShareBundle>(PartyId(p), &share_sid())
                    .is_some(),
                "{backend}: party {p} must complete the share phase"
            );
        }
    }
}
