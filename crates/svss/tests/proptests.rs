//! Property-based tests of SVSS: share→reconstruct round-trips under
//! randomized system sizes, schedulers, fault placements and secrets.

use aft_field::Fp;
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};
use aft_svss::attacks::WrongSigma;
use aft_svss::{ShareBundle, SvssRec, SvssShare};
use proptest::prelude::*;

fn share_sid() -> SessionId {
    SessionId::root().child(SessionTag::new("svss-share", 0))
}

fn rec_sid() -> SessionId {
    SessionId::root().child(SessionTag::new("svss-rec", 0))
}

fn scheduler_name(idx: usize) -> &'static str {
    ["fifo", "random", "lifo", "window4"][idx % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Honest dealer, arbitrary scheduler, any dealer position, any secret:
    /// all parties reconstruct the secret and nobody shuns anybody.
    #[test]
    fn share_rec_roundtrip(
        seed in any::<u64>(),
        secret in 0u64..1_000_000,
        sys in 0usize..2,
        dealer_idx in 0usize..4,
        sched in 0usize..4,
    ) {
        let (n, t) = [(4usize, 1usize), (7, 2)][sys];
        let dealer = dealer_idx % n;
        let secret = Fp::new(secret);
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name(scheduler_name(sched)).unwrap(),
        );
        for p in 0..n {
            let inst: Box<dyn Instance> = if p == dealer {
                Box::new(SvssShare::dealer(PartyId(dealer), secret))
            } else {
                Box::new(SvssShare::party(PartyId(dealer)))
            };
            net.spawn(PartyId(p), share_sid(), inst);
        }
        let report = net.run(50_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let bundles: Vec<Option<ShareBundle>> = (0..n)
            .map(|p| net.output_as::<ShareBundle>(PartyId(p), &share_sid()).cloned())
            .collect();
        for (p, b) in bundles.iter().enumerate() {
            prop_assert!(b.is_some(), "party {p} did not complete share");
        }
        for (p, b) in bundles.into_iter().enumerate() {
            net.spawn(PartyId(p), rec_sid(), Box::new(SvssRec::new(b.unwrap())));
        }
        let report = net.run(50_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..n {
            prop_assert_eq!(net.output_as::<Fp>(PartyId(p), &rec_sid()), Some(&secret));
        }
        prop_assert_eq!(net.metrics().shun_events, 0);
    }

    /// With up to t silent parties and up to t wrong-σ reconstructors
    /// (within the combined Byzantine budget), honest parties still
    /// reconstruct the dealer's secret, and no honest party shuns an
    /// honest party.
    #[test]
    fn roundtrip_with_faults(
        seed in any::<u64>(),
        secret in 0u64..1000,
        silent_mask in 0usize..3,
    ) {
        let (n, t) = (7usize, 2usize);
        let dealer = 0usize;
        // The Byzantine set: two parties, either silent or wrong-σ.
        let byz: Vec<usize> = vec![5, 6];
        let secret = Fp::new(secret);
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name("random").unwrap(),
        );
        for p in 0..n {
            let inst: Box<dyn Instance> = if byz.contains(&p) && silent_mask == 0 {
                Box::new(SilentInstance)
            } else if p == dealer {
                Box::new(SvssShare::dealer(PartyId(dealer), secret))
            } else {
                Box::new(SvssShare::party(PartyId(dealer)))
            };
            net.spawn(PartyId(p), share_sid(), inst);
        }
        net.run(50_000_000);
        let bundles: Vec<Option<ShareBundle>> = (0..n)
            .map(|p| net.output_as::<ShareBundle>(PartyId(p), &share_sid()).cloned())
            .collect();
        let honest: Vec<usize> = (0..n).filter(|p| !byz.contains(p)).collect();
        for &p in &honest {
            prop_assert!(bundles[p].is_some(), "honest {p} must complete share");
        }
        for (p, b) in bundles.into_iter().enumerate() {
            let Some(b) = b else { continue };
            let inst: Box<dyn Instance> = if byz.contains(&p) {
                match silent_mask {
                    0 => Box::new(SilentInstance),
                    1 => Box::new(WrongSigma::new(b, Fp::new(3), false)),
                    _ => Box::new(SvssRec::new(b)), // byz behaves honestly
                }
            } else {
                Box::new(SvssRec::new(b))
            };
            net.spawn(PartyId(p), rec_sid(), inst);
        }
        let report = net.run(50_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        for &p in &honest {
            prop_assert_eq!(
                net.output_as::<Fp>(PartyId(p), &rec_sid()),
                Some(&secret),
                "honest {} reconstructed wrong value", p
            );
        }
        // No honest party ever shuns another honest party.
        for &p in &honest {
            for shunned in net.node(PartyId(p)).shun_registry().shunned() {
                prop_assert!(byz.contains(&shunned.0), "honest shunned honest");
            }
        }
    }
}

/// Codec laws for the SVSS wire messages, whose bodies carry field
/// elements and polynomials: exact round trips, canonical-form
/// rejection, totality on junk bytes.
mod codec_props {
    use aft_field::{Fp, Poly};
    use aft_sim::wire::{decode_frame_as, encode_frame};
    use aft_svss::{RecMsg, ShareMsg};
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn fp(raw: u64) -> Fp {
        Fp::new(raw)
    }

    fn poly(raw: &[u64]) -> Poly {
        Poly::from_coeffs(raw.iter().map(|&c| fp(c)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn share_msgs_round_trip(
            sel in 0u8..4,
            a in any::<u64>(),
            b in any::<u64>(),
            row in vec(any::<u64>(), 1..6),
            col in vec(any::<u64>(), 1..6),
            peer in 0usize..16,
        ) {
            let msg = match sel {
                0 => ShareMsg::Shares { row: poly(&row), col: poly(&col) },
                1 => ShareMsg::Cross { a: fp(a), b: fp(b) },
                2 => ShareMsg::Ok(aft_sim::PartyId(peer)),
                _ => ShareMsg::Done,
            };
            let mut frame = Vec::new();
            encode_frame(&msg, &mut frame);
            prop_assert_eq!(decode_frame_as::<ShareMsg>(&frame), Some(msg));
        }

        #[test]
        fn rec_msgs_round_trip(
            sel in 0u8..2,
            v in any::<u64>(),
            row in vec(any::<u64>(), 1..6),
            col in vec(any::<u64>(), 1..6),
        ) {
            let msg = match sel {
                0 => RecMsg::Sigma(fp(v)),
                _ => RecMsg::Reveal { row: poly(&row), col: poly(&col) },
            };
            let mut frame = Vec::new();
            encode_frame(&msg, &mut frame);
            prop_assert_eq!(decode_frame_as::<RecMsg>(&frame), Some(msg));
        }

        #[test]
        fn svss_decoders_total_on_junk_and_truncation(
            bytes in vec(any::<u8>(), 0..96),
            row in vec(any::<u64>(), 1..5),
            cut_frac in 0usize..100,
        ) {
            // Arbitrary junk never panics.
            let _ = decode_frame_as::<ShareMsg>(&bytes);
            let _ = decode_frame_as::<RecMsg>(&bytes);
            // Truncating a real Shares frame is always rejected.
            let msg = ShareMsg::Shares { row: poly(&row), col: poly(&row) };
            let mut frame = Vec::new();
            encode_frame(&msg, &mut frame);
            let cut = cut_frac * (frame.len() - 1) / 100;
            prop_assert_eq!(decode_frame_as::<ShareMsg>(&frame[..cut]), None);
        }
    }
}
