//! # aft-svss
//!
//! *Shunning verifiable secret sharing* (SVSS) with optimal resilience
//! `n = 3t + 1`, after the SVSS of Abraham–Dolev–Halpern (PODC'08) as used
//! by Definition 3.2 of Abraham–Dolev–Stern (PODC 2020).
//!
//! An SVSS relaxes asynchronous VSS exactly enough to evade the paper's
//! own lower bound (Theorem 2.2): it always terminates, but **binding** may
//! fail — and when it does, some honest party *shuns* a faulty party
//! forever. Since each ordered pair shuns at most once, fewer than `n²`
//! failures can ever occur, which is the budget the strong common coin
//! (`aft-core`) is engineered to absorb.
//!
//! ## Protocol
//!
//! * **Share** ([`SvssShare`]): bivariate sharing, pairwise cross-point
//!   checks, a public OK-graph, an `(n−t)`-core proposed by the dealer over
//!   A-Cast, and Bracha-style completion amplification. Outputs a
//!   [`ShareBundle`].
//! * **Rec** ([`SvssRec`]): a sound online-error-correcting *point track*
//!   (exact and live for honest dealers) plus a `(t+1)`-clique *reveal
//!   track* that guarantees termination under faulty dealers; every
//!   detectable self-contradiction triggers a shun. Outputs the secret as
//!   an [`aft_field::Fp`].
//!
//! Properties (Definition 3.2) and the adversary classes they are verified
//! against are catalogued in `DESIGN.md` §4.3; the [`attacks`] module
//! implements those adversaries.
//!
//! # Example: share and reconstruct under a random scheduler
//!
//! ```
//! use aft_field::Fp;
//! use aft_svss::{ShareBundle, SvssRec, SvssShare};
//! use aft_sim::{NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SimNetwork};
//!
//! let (n, t) = (4, 1);
//! let mut net = SimNetwork::new(NetConfig::new(n, t, 1), Box::new(RandomScheduler));
//! let share_sid = SessionId::root().child(SessionTag::new("svss-share", 0));
//! let secret = Fp::new(777);
//! for p in 0..n {
//!     let inst = if p == 0 {
//!         SvssShare::dealer(PartyId(0), secret)
//!     } else {
//!         SvssShare::party(PartyId(0))
//!     };
//!     net.spawn(PartyId(p), share_sid.clone(), Box::new(inst));
//! }
//! net.run(1_000_000);
//!
//! // Every party completed the share phase; now reconstruct.
//! let rec_sid = SessionId::root().child(SessionTag::new("svss-rec", 0));
//! for p in 0..n {
//!     let bundle = net.output_as::<ShareBundle>(PartyId(p), &share_sid).unwrap().clone();
//!     net.spawn(PartyId(p), rec_sid.clone(), Box::new(SvssRec::new(bundle)));
//! }
//! net.run(1_000_000);
//! for p in 0..n {
//!     assert_eq!(net.output_as::<Fp>(PartyId(p), &rec_sid), Some(&secret));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
mod clique;
mod msgs;
mod rec;
mod share;

pub use clique::find_clique;
pub use msgs::{party_point, RecMsg, ShareBundle, ShareMsg};
pub use rec::SvssRec;
pub use share::{SvssShare, CORE_TAG};

/// Registers this crate's wire kinds: the share/rec message enums and
/// the A-Cast wrapper carrying the dealer's core proposal.
pub fn register_codecs(registry: &mut aft_sim::CodecRegistry) {
    registry.register::<ShareMsg>();
    registry.register::<RecMsg>();
    registry.register::<aft_broadcast::AcastMsg<Vec<usize>>>();
}
