//! Lexicographically-first clique search on small consistency graphs.
//!
//! The share phase needs a clique of size `n − t` in the pairwise-OK graph
//! (the dealer's core proposal); reconstruction needs a clique of size
//! `t + 1` among revealed rows. The graphs have at most `n ≤ ~16` vertices
//! in this workspace, where plain backtracking is instantaneous; the search
//! returns the lexicographically smallest clique so that every party with
//! the same view picks the same set deterministically.

/// Finds the lexicographically-first clique of exactly `target` vertices in
/// the undirected graph given by the symmetric adjacency closure of `adj`
/// (an edge exists iff `adj[u][v] && adj[v][u]`).
///
/// Returns vertex indices in increasing order, or `None` if no clique of
/// that size exists. `target == 0` returns an empty clique.
///
/// # Panics
///
/// Panics if `adj` is not square.
///
/// # Examples
///
/// ```
/// use aft_svss::find_clique;
/// // Triangle 0-1-2 plus isolated 3.
/// let mut adj = vec![vec![false; 4]; 4];
/// for (u, v) in [(0, 1), (0, 2), (1, 2)] {
///     adj[u][v] = true;
///     adj[v][u] = true;
/// }
/// assert_eq!(find_clique(&adj, 3), Some(vec![0, 1, 2]));
/// assert_eq!(find_clique(&adj, 4), None);
/// ```
pub fn find_clique(adj: &[Vec<bool>], target: usize) -> Option<Vec<usize>> {
    let n = adj.len();
    for row in adj {
        assert_eq!(row.len(), n, "adjacency matrix must be square");
    }
    if target == 0 {
        return Some(Vec::new());
    }
    if target > n {
        return None;
    }
    let edge = |u: usize, v: usize| adj[u][v] && adj[v][u];
    let mut chosen: Vec<usize> = Vec::with_capacity(target);

    fn backtrack(
        chosen: &mut Vec<usize>,
        start: usize,
        n: usize,
        target: usize,
        edge: &dyn Fn(usize, usize) -> bool,
    ) -> bool {
        if chosen.len() == target {
            return true;
        }
        // Prune: not enough vertices left.
        let needed = target - chosen.len();
        if n - start < needed {
            return false;
        }
        for v in start..n {
            if chosen.iter().all(|&u| edge(u, v)) {
                chosen.push(v);
                if backtrack(chosen, v + 1, n, target, edge) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }

    if backtrack(&mut chosen, 0, n, target, &edge) {
        Some(chosen)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
        let mut adj = vec![vec![false; n]; n];
        for &(u, v) in edges {
            adj[u][v] = true;
            adj[v][u] = true;
        }
        adj
    }

    #[test]
    fn empty_target_is_empty_clique() {
        assert_eq!(find_clique(&graph(3, &[]), 0), Some(vec![]));
    }

    #[test]
    fn single_vertices_are_cliques_of_one() {
        assert_eq!(find_clique(&graph(3, &[]), 1), Some(vec![0]));
    }

    #[test]
    fn finds_lex_first_among_multiple() {
        // Two triangles: {0,1,2} and {2,3,4}; lex-first is {0,1,2}.
        let adj = graph(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        assert_eq!(find_clique(&adj, 3), Some(vec![0, 1, 2]));
    }

    #[test]
    fn prefers_smaller_ids_even_when_larger_clique_elsewhere() {
        // K4 on {2,3,4,5}, edge {0,1}: target 2 must return {0,1}.
        let adj = graph(6, &[(0, 1), (2, 3), (2, 4), (2, 5), (3, 4), (3, 5), (4, 5)]);
        assert_eq!(find_clique(&adj, 2), Some(vec![0, 1]));
        assert_eq!(find_clique(&adj, 4), Some(vec![2, 3, 4, 5]));
    }

    #[test]
    fn asymmetric_claims_are_not_edges() {
        // Edge requires both directions.
        let mut adj = vec![vec![false; 2]; 2];
        adj[0][1] = true; // only one direction
        assert_eq!(find_clique(&adj, 2), None);
        adj[1][0] = true;
        assert_eq!(find_clique(&adj, 2), Some(vec![0, 1]));
    }

    #[test]
    fn no_clique_returns_none() {
        let adj = graph(4, &[(0, 1), (1, 2), (2, 3)]); // path
        assert_eq!(find_clique(&adj, 3), None);
    }

    #[test]
    fn target_larger_than_n() {
        assert_eq!(find_clique(&graph(2, &[(0, 1)]), 3), None);
    }

    #[test]
    fn dense_graph_stress() {
        // Complete graph K12 minus one edge; target 11 must avoid the
        // missing edge's endpoints together.
        let n = 12;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                if !(u == 0 && v == 1) {
                    edges.push((u, v));
                }
            }
        }
        let adj = graph(n, &edges);
        let c = find_clique(&adj, 11).unwrap();
        assert!(!(c.contains(&0) && c.contains(&1)));
        assert_eq!(c.len(), 11);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let adj = vec![vec![false; 2], vec![false; 3]];
        let _ = find_clique(&adj, 1);
    }
}
