//! Wire messages and shared types of the SVSS protocol.

use aft_field::{Fp, Poly};
use aft_sim::wire::{WireReader, WireWriter, KIND_SVSS_BASE};
use aft_sim::{PartyId, WireMessage};
use std::collections::HashMap;

/// Appends a field element's canonical 8-byte form.
fn put_fp(out: &mut Vec<u8>, v: Fp) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a canonical field element (non-canonical bytes are malformed).
fn get_fp(r: &mut WireReader<'_>) -> Option<Fp> {
    Fp::from_le_bytes(r.u64()?.to_le_bytes())
}

/// Appends a polynomial's canonical encoding.
fn put_poly(out: &mut Vec<u8>, p: &Poly) {
    p.encode_to(out);
}

/// Reads a canonical polynomial, advancing the reader past it.
fn get_poly(r: &mut WireReader<'_>) -> Option<Poly> {
    let (poly, used) = Poly::decode_from(r.peek_rest())?;
    r.skip(used)?;
    Some(poly)
}

/// The field point assigned to party `i`: `x_i = i + 1` (zero is reserved
/// for the secret).
pub fn party_point(p: PartyId) -> Fp {
    Fp::new(p.0 as u64 + 1)
}

/// Messages of the SVSS share phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShareMsg {
    /// Dealer → party `i`: its row `f_i(y) = F(x_i, y)` and column
    /// `g_i(x) = F(x, x_i)` of the sharing bivariate polynomial.
    Shares {
        /// The recipient's row polynomial.
        row: Poly,
        /// The recipient's column polynomial.
        col: Poly,
    },
    /// Party `i` → party `j`: the cross points `a = f_i(x_j)` and
    /// `b = g_i(x_j)`, which `j` checks against its own column and row.
    Cross {
        /// `f_i(x_j) = F(x_i, x_j)`.
        a: Fp,
        /// `g_i(x_j) = F(x_j, x_i)`.
        b: Fp,
    },
    /// Broadcast vote: "my cross-checks with `peer` succeeded".
    Ok(PartyId),
    /// Share-completion amplification (Bracha-style `t+1 / 2t+1`).
    Done,
}

impl WireMessage for ShareMsg {
    const KIND: u16 = KIND_SVSS_BASE;
    const KIND_NAME: &'static str = "svss-share-msg";

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            ShareMsg::Shares { row, col } => {
                WireWriter::u8(out, 0);
                put_poly(out, row);
                put_poly(out, col);
            }
            ShareMsg::Cross { a, b } => {
                WireWriter::u8(out, 1);
                put_fp(out, *a);
                put_fp(out, *b);
            }
            ShareMsg::Ok(p) => {
                WireWriter::u8(out, 2);
                WireWriter::u32(out, p.0 as u32);
            }
            ShareMsg::Done => WireWriter::u8(out, 3),
        }
    }

    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            0 => ShareMsg::Shares {
                row: get_poly(&mut r)?,
                col: get_poly(&mut r)?,
            },
            1 => ShareMsg::Cross {
                a: get_fp(&mut r)?,
                b: get_fp(&mut r)?,
            },
            2 => ShareMsg::Ok(PartyId(r.u32()? as usize)),
            3 => ShareMsg::Done,
            _ => return None,
        };
        r.finish()?;
        Some(msg)
    }
}

/// Messages of the SVSS reconstruction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecMsg {
    /// The sender's row evaluated at zero: its point of
    /// `h(x) = F(x, 0)` — input to online error correction.
    Sigma(Fp),
    /// Core members additionally reveal their full row and column for the
    /// clique fallback (faulty-dealer path).
    Reveal {
        /// Claimed row polynomial.
        row: Poly,
        /// Claimed column polynomial.
        col: Poly,
    },
}

impl WireMessage for RecMsg {
    const KIND: u16 = KIND_SVSS_BASE + 1;
    const KIND_NAME: &'static str = "svss-rec-msg";

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            RecMsg::Sigma(v) => {
                WireWriter::u8(out, 0);
                put_fp(out, *v);
            }
            RecMsg::Reveal { row, col } => {
                WireWriter::u8(out, 1);
                put_poly(out, row);
                put_poly(out, col);
            }
        }
    }

    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            0 => RecMsg::Sigma(get_fp(&mut r)?),
            1 => RecMsg::Reveal {
                row: get_poly(&mut r)?,
                col: get_poly(&mut r)?,
            },
            _ => return None,
        };
        r.finish()?;
        Some(msg)
    }
}

/// A party's state after completing the share phase — the input to
/// [`SvssRec`](crate::SvssRec).
#[derive(Debug, Clone)]
pub struct ShareBundle {
    /// The dealer of this SVSS instance.
    pub dealer: PartyId,
    /// The party this bundle belongs to.
    pub me: PartyId,
    /// The party's row `F(x_me, ·)`, if the dealer sent one (of valid
    /// degree).
    pub row: Option<Poly>,
    /// The party's column `F(·, x_me)`, if the dealer sent one.
    pub col: Option<Poly>,
    /// The agreed core set `C` (`|C| = n − t`), delivered by the dealer's
    /// A-Cast and edge-verified by at least one honest party.
    pub core: Vec<PartyId>,
    /// Cross points received from each peer `j` during the share phase:
    /// `(a, b)` where `a` claims `F(x_j, x_me)` and `b` claims
    /// `F(x_me, x_j)`. Used by reconstruction to detect self-contradiction
    /// (the shunning trigger).
    pub crosses: HashMap<PartyId, (Fp, Fp)>,
}

impl ShareBundle {
    /// Whether this party is a member of the agreed core.
    pub fn in_core(&self) -> bool {
        self.core.contains(&self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_point_is_one_based() {
        assert_eq!(party_point(PartyId(0)), Fp::new(1));
        assert_eq!(party_point(PartyId(6)), Fp::new(7));
    }

    #[test]
    fn bundle_in_core() {
        let b = ShareBundle {
            dealer: PartyId(0),
            me: PartyId(2),
            row: None,
            col: None,
            core: vec![PartyId(1), PartyId(2)],
            crosses: HashMap::new(),
        };
        assert!(b.in_core());
        let b2 = ShareBundle {
            me: PartyId(3),
            ..b
        };
        assert!(!b2.in_core());
    }
}
