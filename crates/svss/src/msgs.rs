//! Wire messages and shared types of the SVSS protocol.

use aft_field::{Fp, Poly};
use aft_sim::PartyId;
use std::collections::HashMap;

/// The field point assigned to party `i`: `x_i = i + 1` (zero is reserved
/// for the secret).
pub fn party_point(p: PartyId) -> Fp {
    Fp::new(p.0 as u64 + 1)
}

/// Messages of the SVSS share phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShareMsg {
    /// Dealer → party `i`: its row `f_i(y) = F(x_i, y)` and column
    /// `g_i(x) = F(x, x_i)` of the sharing bivariate polynomial.
    Shares {
        /// The recipient's row polynomial.
        row: Poly,
        /// The recipient's column polynomial.
        col: Poly,
    },
    /// Party `i` → party `j`: the cross points `a = f_i(x_j)` and
    /// `b = g_i(x_j)`, which `j` checks against its own column and row.
    Cross {
        /// `f_i(x_j) = F(x_i, x_j)`.
        a: Fp,
        /// `g_i(x_j) = F(x_j, x_i)`.
        b: Fp,
    },
    /// Broadcast vote: "my cross-checks with `peer` succeeded".
    Ok(PartyId),
    /// Share-completion amplification (Bracha-style `t+1 / 2t+1`).
    Done,
}

/// Messages of the SVSS reconstruction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecMsg {
    /// The sender's row evaluated at zero: its point of
    /// `h(x) = F(x, 0)` — input to online error correction.
    Sigma(Fp),
    /// Core members additionally reveal their full row and column for the
    /// clique fallback (faulty-dealer path).
    Reveal {
        /// Claimed row polynomial.
        row: Poly,
        /// Claimed column polynomial.
        col: Poly,
    },
}

/// A party's state after completing the share phase — the input to
/// [`SvssRec`](crate::SvssRec).
#[derive(Debug, Clone)]
pub struct ShareBundle {
    /// The dealer of this SVSS instance.
    pub dealer: PartyId,
    /// The party this bundle belongs to.
    pub me: PartyId,
    /// The party's row `F(x_me, ·)`, if the dealer sent one (of valid
    /// degree).
    pub row: Option<Poly>,
    /// The party's column `F(·, x_me)`, if the dealer sent one.
    pub col: Option<Poly>,
    /// The agreed core set `C` (`|C| = n − t`), delivered by the dealer's
    /// A-Cast and edge-verified by at least one honest party.
    pub core: Vec<PartyId>,
    /// Cross points received from each peer `j` during the share phase:
    /// `(a, b)` where `a` claims `F(x_j, x_me)` and `b` claims
    /// `F(x_me, x_j)`. Used by reconstruction to detect self-contradiction
    /// (the shunning trigger).
    pub crosses: HashMap<PartyId, (Fp, Fp)>,
}

impl ShareBundle {
    /// Whether this party is a member of the agreed core.
    pub fn in_core(&self) -> bool {
        self.core.contains(&self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_point_is_one_based() {
        assert_eq!(party_point(PartyId(0)), Fp::new(1));
        assert_eq!(party_point(PartyId(6)), Fp::new(7));
    }

    #[test]
    fn bundle_in_core() {
        let b = ShareBundle {
            dealer: PartyId(0),
            me: PartyId(2),
            row: None,
            col: None,
            core: vec![PartyId(1), PartyId(2)],
            crosses: HashMap::new(),
        };
        assert!(b.in_core());
        let b2 = ShareBundle {
            me: PartyId(3),
            ..b
        };
        assert!(!b2.in_core());
    }
}
