//! The SVSS reconstruction phase (`SVSS-Rec` of Definition 3.2).

use crate::clique::find_clique;
use crate::msgs::{party_point, RecMsg, ShareBundle};
use aft_field::{interpolate_at_zero, Fp, OnlineDecoder, Poly};
use aft_sim::{Context, Instance, PartyId, Payload};
use std::collections::HashMap;

/// One party's reconstruction instance, built from the [`ShareBundle`] the
/// share phase produced. Outputs the reconstructed secret as an [`Fp`].
///
/// Reconstruction runs two tracks concurrently and outputs whichever
/// certifies first:
///
/// * **Point track** — every party holding a row sends
///   `σ = row(0) = F(x, 0)`; a sound [`OnlineDecoder`] (degree `t`, at most
///   `t` bad points) decodes `h(x) = F(x, 0)` and outputs `h(0)`. With an
///   honest dealer all `2t+1` honest parties hold genuine rows, so this
///   track terminates and is exact.
/// * **Clique track** — core members additionally reveal their full
///   row/column; a `(t+1)`-clique of pairwise cross-consistent reveals
///   determines the bound polynomial `F̂` and yields `F̂(0,0)` (Lagrange at
///   zero over the clique rows' σ values). This track guarantees
///   termination when a faulty dealer handed some honest parties garbage:
///   the ≥ `t+1` honest core members always eventually form a clique.
///
/// **Shunning triggers** (the binding escape hatch of Definition 3.2):
/// a peer whose reveal contradicts the cross points it sent *me* during the
/// share phase is shunned, as is a peer sending duplicate σ/reveals or
/// reveals of invalid degree. An honest party never trips these (it never
/// contradicts itself), so honest parties never shun honest parties.
///
/// Against adversaries that craft globally-consistent-but-wrong data a
/// faulty dealer can still split the clique track between honest parties —
/// the paper's own lower bound (Theorem 2.2) shows *some* such gap is
/// unavoidable for a terminating protocol at `n ≤ 4t`; DESIGN.md §4.3
/// documents the boundary relative to full ADH08.
pub struct SvssRec {
    bundle: ShareBundle,
    decoder: OnlineDecoder,
    /// Reveals accepted from core members.
    reveals: HashMap<PartyId, (Poly, Poly)>,
    /// Parties whose σ was received (duplicate detection).
    sigma_seen: HashMap<PartyId, Fp>,
    done: bool,
}

impl SvssRec {
    /// Creates the reconstruction instance for this party.
    pub fn new(bundle: ShareBundle) -> Self {
        SvssRec {
            bundle,
            // degree t, up to t adversarial points — set in on_start when t
            // is known; re-created there.
            decoder: OnlineDecoder::new(0, 0),
            reveals: HashMap::new(),
            sigma_seen: HashMap::new(),
            done: false,
        }
    }

    fn output_once(&mut self, value: Fp, ctx: &mut Context<'_>) {
        if !self.done {
            self.done = true;
            ctx.output(value);
        }
    }

    /// Clique track: find a `(t+1)`-clique of mutually consistent reveals
    /// among core members and interpolate the secret.
    fn try_clique(&mut self, ctx: &mut Context<'_>) {
        if self.done {
            return;
        }
        let t = ctx.t();
        let members: Vec<PartyId> = {
            let mut m: Vec<PartyId> = self.reveals.keys().copied().collect();
            m.sort();
            m
        };
        if members.len() < t + 1 {
            return;
        }
        // Edge (u, v): u's row at x_v equals v's col at x_u, and vice
        // versa — both claim grid values of the same bivariate.
        let k = members.len();
        let mut adj = vec![vec![false; k]; k];
        for a in 0..k {
            for b in a + 1..k {
                let (u, v) = (members[a], members[b]);
                let (ru, cu) = &self.reveals[&u];
                let (rv, cv) = &self.reveals[&v];
                let (xu, xv) = (party_point(u), party_point(v));
                let ok = ru.eval(xv) == cv.eval(xu) && rv.eval(xu) == cu.eval(xv);
                adj[a][b] = ok;
                adj[b][a] = ok;
            }
        }
        if let Some(clique) = find_clique(&adj, t + 1) {
            let pts: Vec<(Fp, Fp)> = clique
                .iter()
                .map(|&idx| {
                    let u = members[idx];
                    (party_point(u), self.reveals[&u].0.eval(Fp::ZERO))
                })
                .collect();
            let secret = interpolate_at_zero(&pts).expect("distinct party points");
            self.output_once(secret, ctx);
        }
    }
}

impl Instance for SvssRec {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let t = ctx.t();
        self.decoder = OnlineDecoder::new(t, t);
        if let Some(row) = self.bundle.row.clone() {
            ctx.send_all(RecMsg::Sigma(row.eval(Fp::ZERO)));
            if self.bundle.in_core() {
                if let Some(col) = self.bundle.col.clone() {
                    ctx.send_all(RecMsg::Reveal { row, col });
                }
            }
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        let Some(msg) = payload.view::<RecMsg>() else {
            return;
        };
        let t = ctx.t();
        match &*msg {
            RecMsg::Sigma(v) => {
                if let Some(prev) = self.sigma_seen.get(&from) {
                    if prev != v {
                        // An honest party never equivocates its σ.
                        ctx.shun(from);
                    }
                    return;
                }
                self.sigma_seen.insert(from, *v);
                // A σ that contradicts the same party's reveal is a
                // self-contradiction: shun (honest parties send
                // σ = row(0) and reveal the same row).
                if let Some((row, _)) = self.reveals.get(&from) {
                    if row.eval(Fp::ZERO) != *v {
                        ctx.shun(from);
                        return;
                    }
                }
                if self.done {
                    return;
                }
                if let Ok(Some(poly)) = self.decoder.add_point(party_point(from), *v) {
                    let secret = poly.eval(Fp::ZERO);
                    self.output_once(secret, ctx);
                }
            }
            RecMsg::Reveal { row, col } => {
                if !self.bundle.core.contains(&from) {
                    return; // only core members reveal
                }
                if self.reveals.contains_key(&from) {
                    return; // first reveal wins; repeats are harmless noise
                }
                if row.degree().unwrap_or(0) > t || col.degree().unwrap_or(0) > t {
                    // Malformed reveal from a core member: provably faulty.
                    ctx.shun(from);
                    return;
                }
                // Self-contradiction checks: the reveal must match the
                // cross points this peer sent me during the share phase,
                // and the σ it already sent (if any).
                if let Some(&(a, b)) = self.bundle.crosses.get(&from) {
                    let x_me = party_point(self.bundle.me);
                    if row.eval(x_me) != a || col.eval(x_me) != b {
                        ctx.shun(from);
                        return;
                    }
                }
                if let Some(&sigma) = self.sigma_seen.get(&from) {
                    if row.eval(Fp::ZERO) != sigma {
                        ctx.shun(from);
                        return;
                    }
                }
                self.reveals.insert(from, (row.clone(), col.clone()));
                self.try_clique(ctx);
            }
        }
    }
}
