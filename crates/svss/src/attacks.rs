//! Byzantine behaviours against SVSS, used by the test suite and the
//! shunning experiments (E7).

use crate::msgs::{party_point, RecMsg, ShareBundle, ShareMsg};
use crate::share::SvssShare;
use aft_field::{BivarPoly, Fp, Poly};
use aft_sim::{
    AttackCtx, AttackRegistry, AttackRole, Context, CorruptMode, CorruptionPlan, Instance,
    ObsEvent, PartyId, Payload,
};

/// Registers this crate's attacks with a scenario [`AttackRegistry`].
///
/// SVSS attacks are *episode-aware*: the share→rec stack deploys two
/// episodes (leaf session kinds `"svss-share"` then `"svss-rec"`), and a
/// reconstruction attack needs the [`ShareBundle`] the corrupted party
/// legitimately obtained in the share phase — which arrives as the
/// episode carry. The scenario stacks place the dealer at party 0.
///
/// * `two-faced-dealer` — [`TwoFacedDealer`] in the share phase (group A
///   is the first `n − t` parties, so a core can still form), silent in
///   rec; corrupt only the dealer (party 0) with it.
/// * `wrong-cross[:victims]` — [`WrongCross`] in the share phase against
///   the comma-separated victim list (default: the next party), honest in
///   rec.
/// * `wrong-sigma[:reveal]` — honest share phase; in rec, a σ off by one
///   ([`WrongSigma`]), optionally also revealing (which exposes the
///   self-contradiction and draws shuns).
/// * `equivocal-reveal` — honest share phase; in rec, reveals a shifted
///   row/col ([`EquivocalReveal`]) — the canonical shun generator.
/// * `silent-rec` — honest share phase; withholds everything in rec
///   ([`SilentRec`]), the adversary online error correction must absorb.
pub fn register_attacks(registry: &mut AttackRegistry) {
    fn carry_bundle(ctx: &AttackCtx<'_>) -> Option<ShareBundle> {
        ctx.carry
            .and_then(|c| c.downcast_ref::<ShareBundle>())
            .cloned()
    }
    /// Rec-phase role from the share-phase bundle: attack if the party
    /// holds one, stay silent if the share phase never completed for it.
    fn rec_role(
        ctx: &AttackCtx<'_>,
        attack: impl FnOnce(ShareBundle) -> Box<dyn Instance>,
    ) -> Option<AttackRole> {
        Some(AttackRole::Instance(match carry_bundle(ctx) {
            Some(bundle) => attack(bundle),
            None => Box::new(SilentRec),
        }))
    }

    registry.register("two-faced-dealer", |ctx| {
        if ctx.episode != "svss-share" {
            return Some(AttackRole::Instance(Box::new(SilentRec)));
        }
        let group_a: Vec<PartyId> = (0..ctx.n - ctx.t).map(PartyId).collect();
        let secret_a = Fp::new(ctx.seed.wrapping_mul(3).wrapping_add(1));
        let secret_b = Fp::new(ctx.seed.wrapping_mul(5).wrapping_add(2));
        Some(AttackRole::Instance(Box::new(TwoFacedDealer::new(
            ctx.party, group_a, secret_a, secret_b,
        ))))
    });
    registry.register("wrong-cross", |ctx| {
        if ctx.episode != "svss-share" {
            return Some(AttackRole::Honest);
        }
        let victims: Vec<PartyId> = if ctx.args.is_empty() {
            vec![PartyId((ctx.party.0 + 1) % ctx.n)]
        } else {
            ctx.args
                .split(',')
                .map(|part| {
                    let id: usize = part.trim().parse().ok()?;
                    (id < ctx.n).then_some(PartyId(id))
                })
                .collect::<Option<_>>()?
        };
        let attack = if ctx.party == PartyId(0) {
            // Placed at the dealer seat: deal a seed-derived secret so the
            // inner share machinery has something to run on.
            let secret = Fp::new(ctx.seed.wrapping_mul(11).wrapping_add(4));
            WrongCross::dealer(PartyId(0), secret, victims)
        } else {
            WrongCross::new(PartyId(0), victims)
        };
        Some(AttackRole::Instance(Box::new(attack)))
    });
    registry.register("wrong-sigma", |ctx| {
        if ctx.episode == "svss-share" {
            return Some(AttackRole::Honest);
        }
        let reveal_too = match ctx.args {
            "" => false,
            "reveal" => true,
            _ => return None,
        };
        rec_role(ctx, |bundle| {
            Box::new(WrongSigma::new(bundle, Fp::ONE, reveal_too))
        })
    });
    registry.register("equivocal-reveal", |ctx| {
        if ctx.episode == "svss-share" {
            return Some(AttackRole::Honest);
        }
        rec_role(ctx, |bundle| Box::new(EquivocalReveal::new(bundle)))
    });
    registry.register("silent-rec", |ctx| {
        Some(if ctx.episode == "svss-share" {
            AttackRole::Honest
        } else {
            AttackRole::Instance(Box::new(SilentRec))
        })
    });
    registry.register_adaptive("core-candidates", |ctx| {
        let threshold = if ctx.args.is_empty() {
            None
        } else {
            Some(ctx.args.parse().ok()?)
        };
        Some(Box::new(CoreCandidates::new(threshold)))
    });
}

/// The adaptive adversary against SVSS / common-subset core formation:
/// watch who the schedule favors during the run (most deliveries of any
/// kind — the parties whose traffic is landing are the likely core /
/// common-subset members), and mute the most-favored candidates once
/// enough traffic has been observed. In multi-episode stacks the strike
/// is timed at the *reconstruction* episode boundary: the share phase
/// must complete for a carry to exist (the model lets the adversary pick
/// its victims after seeing the share-phase schedule), and the rec-phase
/// online error correction is what must then absorb the muted cores.
///
/// Registered as `adaptive:core-candidates[:<threshold>]@*` where
/// `threshold` overrides the default observation threshold of `3n²`
/// deliveries for single-episode stacks (common-subset).
pub struct CoreCandidates {
    threshold: Option<u64>,
    counts: Vec<u64>,
    seen: u64,
    struck: bool,
    episode: String,
}

impl CoreCandidates {
    /// Creates the policy; `threshold` overrides the `3n²` default.
    pub fn new(threshold: Option<u64>) -> Self {
        CoreCandidates {
            threshold,
            counts: Vec::new(),
            seen: 0,
            struck: false,
            episode: String::new(),
        }
    }

    /// Mute the most-delivered-to-date non-victims, up to the cap.
    fn strike(&mut self, plan: &mut CorruptionPlan) {
        self.struck = true;
        let mut order: Vec<usize> = (0..plan.n()).collect();
        // Descending by observed deliveries, ties to the lowest id.
        order.sort_by_key(|&p| {
            (
                std::cmp::Reverse(self.counts.get(p).copied().unwrap_or(0)),
                p,
            )
        });
        for p in order {
            let p = PartyId(p);
            if !plan.is_victim(p) && !plan.corrupt(p, CorruptMode::Mute) {
                break;
            }
        }
    }
}

impl aft_sim::AdaptiveAttack for CoreCandidates {
    fn on_episode(&mut self, episode: &str, plan: &mut CorruptionPlan) {
        // Strike at the share→rec boundary: the share schedule has been
        // observed in full, and muting cores now is exactly the adversary
        // reconstruction's online error correction is specified against.
        if self.episode == "svss-share" && episode != "svss-share" && !self.struck {
            self.strike(plan);
        }
        self.episode = episode.to_string();
    }

    fn observe(&mut self, ev: &ObsEvent, plan: &mut CorruptionPlan) {
        let ObsEvent::Deliver { party, .. } = ev else {
            return;
        };
        if self.counts.is_empty() {
            self.counts = vec![0; plan.n()];
        }
        if let Some(c) = self.counts.get_mut(party.0) {
            *c += 1;
        }
        self.seen += 1;
        // Mid-episode strike for single-episode stacks only: muting a
        // party mid-share would break share-phase liveness, which even the
        // adaptive adversary is not entitled to (it may mute *after* the
        // core forms — the episode boundary above).
        if self.struck || self.episode == "svss-share" {
            return;
        }
        let threshold = self
            .threshold
            .unwrap_or(3 * (plan.n() as u64) * (plan.n() as u64));
        if self.seen >= threshold {
            self.strike(plan);
        }
    }
}

/// A Byzantine dealer that deals shares of **two different secrets**: the
/// parties in `group_a` receive rows/columns of a polynomial with secret
/// `secret_a`, everyone else of one with `secret_b`.
///
/// If one group has at least `n − t` members a core can still form inside
/// it and the share phase completes; reconstruction then binds to that
/// group's secret. If neither group is large enough, no core forms and the
/// share phase never completes (allowed for a faulty dealer — and the
/// simulator still reaches quiescence).
pub struct TwoFacedDealer {
    inner: SvssShare,
    group_a: Vec<PartyId>,
    secret_a: Fp,
    secret_b: Fp,
}

impl TwoFacedDealer {
    /// Creates the attack instance; must be spawned at `dealer`.
    pub fn new(dealer: PartyId, group_a: Vec<PartyId>, secret_a: Fp, secret_b: Fp) -> Self {
        TwoFacedDealer {
            inner: SvssShare::party(dealer),
            group_a,
            secret_a,
            secret_b,
        }
    }
}

impl Instance for TwoFacedDealer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let t = ctx.t();
        let fa = BivarPoly::random_with_secret(self.secret_a, t, ctx.rng());
        let fb = BivarPoly::random_with_secret(self.secret_b, t, ctx.rng());
        for p in ctx.parties().collect::<Vec<_>>() {
            let f = if self.group_a.contains(&p) { &fa } else { &fb };
            let x = party_point(p);
            ctx.send(
                p,
                ShareMsg::Shares {
                    row: f.row(x),
                    col: f.col(x),
                },
            );
        }
        // From here on behave like an ordinary participant (the dealer is
        // in group A iff listed there); the inner instance will propose a
        // core once it sees a clique, because `me == dealer`.
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        self.inner.on_message(from, payload, ctx);
    }

    fn on_child_output(
        &mut self,
        child: &aft_sim::SessionTag,
        output: &Payload,
        ctx: &mut Context<'_>,
    ) {
        self.inner.on_child_output(child, output, ctx);
    }
}

/// A party that runs the share phase honestly except that the cross points
/// it sends to `victims` are corrupted (off by one). The victims simply
/// never OK it, so it is excluded from the core when the dealer is honest;
/// the share phase still completes for everyone.
pub struct WrongCross {
    inner: SvssShare,
    victims: Vec<PartyId>,
}

impl WrongCross {
    /// Creates the attack instance for a non-dealer party.
    pub fn new(dealer: PartyId, victims: Vec<PartyId>) -> Self {
        WrongCross {
            inner: SvssShare::party(dealer),
            victims,
        }
    }

    /// Creates the attack instance for the dealer seat itself: the inner
    /// deals `secret` (a Byzantine dealer may deal anything) while the
    /// cross points sent to `victims` are still corrupted. Without this
    /// the inner would be a secretless dealer, which panics on start —
    /// found by the scenario search retargeting `wrong-cross` onto the
    /// dealer.
    pub fn dealer(dealer: PartyId, secret: Fp, victims: Vec<PartyId>) -> Self {
        WrongCross {
            inner: SvssShare::dealer(dealer, secret),
            victims,
        }
    }
}

impl Instance for WrongCross {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        // Intercept our own Shares delivery: forward to inner, then send
        // corrected/corrupted crosses. The inner already sends honest
        // crosses, so instead we corrupt the *victims'* view by sending a
        // second, conflicting cross first. Since receivers keep the first
        // cross per peer, flood the victims with the corrupted value before
        // the inner handles the message.
        if let Some(msg) = payload.view::<ShareMsg>() {
            if let ShareMsg::Shares { row, col } = &*msg {
                for &v in &self.victims {
                    let x = party_point(v);
                    ctx.send(
                        v,
                        ShareMsg::Cross {
                            a: row.eval(x) + Fp::ONE,
                            b: col.eval(x) + Fp::ONE,
                        },
                    );
                }
            }
        }
        self.inner.on_message(from, payload, ctx);
    }

    fn on_child_output(
        &mut self,
        child: &aft_sim::SessionTag,
        output: &Payload,
        ctx: &mut Context<'_>,
    ) {
        self.inner.on_child_output(child, output, ctx);
    }
}

/// Reconstruction attack: sends a wrong σ (off by `delta`) but otherwise
/// plays honestly. If the party is a core member and also reveals, every
/// honest party detects the self-contradiction and **shuns** it; if it
/// withholds the reveal, the wrong σ is absorbed by online error
/// correction.
pub struct WrongSigma {
    bundle: ShareBundle,
    delta: Fp,
    reveal_too: bool,
}

impl WrongSigma {
    /// Creates the attack; `reveal_too` controls whether the (honest)
    /// reveal is also sent, which exposes the contradiction.
    pub fn new(bundle: ShareBundle, delta: Fp, reveal_too: bool) -> Self {
        WrongSigma {
            bundle,
            delta,
            reveal_too,
        }
    }
}

impl Instance for WrongSigma {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some(row) = self.bundle.row.clone() {
            ctx.send_all(RecMsg::Sigma(row.eval(Fp::ZERO) + self.delta));
            if self.reveal_too && self.bundle.in_core() {
                if let Some(col) = self.bundle.col.clone() {
                    ctx.send_all(RecMsg::Reveal { row, col });
                }
            }
        }
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}
}

/// Reconstruction attack: reveals a row different from the cross points it
/// distributed during the share phase. Every honest party that holds this
/// party's share-phase cross detects the contradiction and shuns it —
/// the canonical shunning-event generator for experiment E7.
pub struct EquivocalReveal {
    bundle: ShareBundle,
}

impl EquivocalReveal {
    /// Creates the attack instance.
    pub fn new(bundle: ShareBundle) -> Self {
        EquivocalReveal { bundle }
    }
}

impl Instance for EquivocalReveal {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let (Some(row), Some(col)) = (self.bundle.row.clone(), self.bundle.col.clone()) {
            // Honest σ, lying reveal: shifted row/col.
            ctx.send_all(RecMsg::Sigma(row.eval(Fp::ZERO)));
            if self.bundle.in_core() {
                let shift = Poly::constant(Fp::ONE);
                ctx.send_all(RecMsg::Reveal {
                    row: &row + &shift,
                    col: &col + &shift,
                });
            }
        }
    }

    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}
}

/// Runs the share phase honestly but stays completely silent during
/// reconstruction (withholds both σ and reveal) — the withholding
/// adversary that online error correction must tolerate.
pub struct SilentRec;

impl Instance for SilentRec {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}
    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}
}
