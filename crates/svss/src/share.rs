//! The SVSS share phase (`SVSS-Share` of Definition 3.2).

use crate::clique::find_clique;
use crate::msgs::{party_point, ShareBundle, ShareMsg};
use aft_broadcast::Acast;
use aft_field::{BivarPoly, Fp, Poly};
use aft_sim::{Context, Instance, PartyId, Payload, SessionTag};
use std::collections::{HashMap, HashSet};

/// Session tag kind under which the dealer's core proposal is A-Cast.
pub const CORE_TAG: &str = "svss-core";

/// One party's share-phase instance.
///
/// Protocol outline (all thresholds for `n = 3t + 1`):
///
/// 1. The dealer samples a bivariate `F` with `F(0,0) = s`, degree ≤ t per
///    variable, and privately sends each party its row and column.
/// 2. Parties exchange *cross points* pairwise and vote `Ok(peer)` to all
///    when the peer's points match their own polynomials.
/// 3. The dealer watches the mutual-OK graph; on finding an `(n−t)`-clique
///    `C` it A-Casts `Core(C)`.
/// 4. A party that delivered `Core(C)` and locally observed every edge of
///    `C` sends `Done` to all; `Done` is amplified Bracha-style (re-send at
///    `t+1`, complete at `2t+1` provided `Core` was delivered).
/// 5. On completion the instance outputs a [`ShareBundle`] carrying the
///    party's row/column, the core, and all received cross points (the
///    evidence reconstruction uses for shunning).
///
/// Termination properties (Definition 3.2, validated by tests):
/// with an honest dealer all honest parties complete; if any honest party
/// completes, every honest participant almost-surely completes.
pub struct SvssShare {
    dealer: PartyId,
    /// Dealer's secret (`Some` only at the dealer).
    secret: Option<Fp>,
    row: Option<Poly>,
    col: Option<Poly>,
    /// Cross points received from peers.
    crosses: HashMap<PartyId, (Fp, Fp)>,
    /// `oks[v]` = set of peers that `v` has publicly OK'd.
    oks: HashMap<PartyId, HashSet<PartyId>>,
    /// Peers I have already OK'd (avoid duplicate votes).
    my_oks: HashSet<PartyId>,
    /// The agreed core, once the dealer's A-Cast delivers.
    core: Option<Vec<PartyId>>,
    /// Whether I already sent `Done`.
    done_sent: bool,
    /// Parties whose `Done` I received.
    dones: HashSet<PartyId>,
    /// Whether the bundle was output.
    completed: bool,
    /// Dealer only: full sharing polynomial.
    bivar: Option<BivarPoly>,
    /// Dealer only: whether `Core` was already proposed.
    core_proposed: bool,
}

impl SvssShare {
    /// Creates the dealer's instance sharing `secret`.
    pub fn dealer(dealer: PartyId, secret: Fp) -> Self {
        SvssShare {
            dealer,
            secret: Some(secret),
            ..Self::empty(dealer)
        }
    }

    /// Creates a non-dealer participant's instance.
    pub fn party(dealer: PartyId) -> Self {
        Self::empty(dealer)
    }

    fn empty(dealer: PartyId) -> Self {
        SvssShare {
            dealer,
            secret: None,
            row: None,
            col: None,
            crosses: HashMap::new(),
            oks: HashMap::new(),
            my_oks: HashSet::new(),
            core: None,
            done_sent: false,
            dones: HashSet::new(),
            completed: false,
            bivar: None,
            core_proposed: false,
        }
    }

    /// Checks the stored cross points from `j` against our own polynomials
    /// and issues a public `Ok(j)` vote on success.
    fn try_ok(&mut self, j: PartyId, ctx: &mut Context<'_>) {
        if self.my_oks.contains(&j) {
            return;
        }
        let (Some(row), Some(col)) = (&self.row, &self.col) else {
            return;
        };
        let Some(&(a, b)) = self.crosses.get(&j) else {
            return;
        };
        // a claims F(x_j, x_me) = my col at x_j; b claims F(x_me, x_j) =
        // my row at x_j.
        let xj = party_point(j);
        if col.eval(xj) == a && row.eval(xj) == b {
            self.my_oks.insert(j);
            ctx.send_all(ShareMsg::Ok(j));
        }
    }

    /// Mutual-OK edge test from this party's local view.
    fn edge(&self, u: PartyId, v: PartyId) -> bool {
        u != v
            && self.oks.get(&u).is_some_and(|s| s.contains(&v))
            && self.oks.get(&v).is_some_and(|s| s.contains(&u))
    }

    /// Dealer: look for an `(n−t)`-clique in the mutual-OK graph and A-Cast
    /// it as the core.
    fn dealer_try_core(&mut self, ctx: &mut Context<'_>) {
        if self.core_proposed || ctx.me() != self.dealer {
            return;
        }
        let n = ctx.n();
        let adj: Vec<Vec<bool>> = (0..n)
            .map(|u| (0..n).map(|v| self.edge(PartyId(u), PartyId(v))).collect())
            .collect();
        if let Some(clique) = find_clique(&adj, n - ctx.t()) {
            self.core_proposed = true;
            let core: Vec<usize> = clique;
            ctx.spawn(
                SessionTag::new(CORE_TAG, self.dealer.0 as u64),
                Box::new(Acast::sender(self.dealer, core)),
            );
        }
    }

    /// Sends `Done` once the core is delivered and all its edges verified
    /// locally.
    fn try_done(&mut self, ctx: &mut Context<'_>) {
        if self.done_sent {
            return;
        }
        let Some(core) = &self.core else {
            return;
        };
        let verified = core
            .iter()
            .enumerate()
            .all(|(i, &u)| core[i + 1..].iter().all(|&v| self.edge(u, v)));
        if verified {
            self.done_sent = true;
            ctx.send_all(ShareMsg::Done);
        }
    }

    /// Completes (outputs the bundle) when `2t+1` `Done`s arrived and the
    /// core is known.
    fn try_complete(&mut self, ctx: &mut Context<'_>) {
        if self.completed || self.core.is_none() {
            return;
        }
        if self.dones.len() >= ctx.n() - ctx.t() {
            self.completed = true;
            let bundle = ShareBundle {
                dealer: self.dealer,
                me: ctx.me(),
                row: self.row.clone(),
                col: self.col.clone(),
                core: self.core.clone().expect("checked above"),
                crosses: self.crosses.clone(),
            };
            ctx.output(bundle);
        }
    }
}

impl Instance for SvssShare {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me();
        let (n, t) = (ctx.n(), ctx.t());
        if me == self.dealer {
            let secret = self.secret.expect("dealer constructed with secret");
            let bivar = BivarPoly::random_with_secret(secret, t, ctx.rng());
            for p in 0..n {
                let pid = PartyId(p);
                let x = party_point(pid);
                ctx.send(
                    pid,
                    ShareMsg::Shares {
                        row: bivar.row(x),
                        col: bivar.col(x),
                    },
                );
            }
            self.bivar = Some(bivar);
        } else {
            // Participate in the dealer's core A-Cast from the start so a
            // racing proposal is not lost.
            ctx.spawn(
                SessionTag::new(CORE_TAG, self.dealer.0 as u64),
                Box::new(Acast::<Vec<usize>>::receiver(self.dealer)),
            );
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        let Some(msg) = payload.view::<ShareMsg>() else {
            return;
        };
        let t = ctx.t();
        match &*msg {
            ShareMsg::Shares { row, col } => {
                // Only the dealer's first share message, of valid degree.
                if from != self.dealer || self.row.is_some() {
                    return;
                }
                if row.degree().unwrap_or(0) > t || col.degree().unwrap_or(0) > t {
                    return; // malformed: treat as absent
                }
                self.row = Some(row.clone());
                self.col = Some(col.clone());
                // Send cross points to every party.
                let my_row = self.row.clone().expect("just set");
                let my_col = self.col.clone().expect("just set");
                for p in ctx.parties().collect::<Vec<_>>() {
                    let x = party_point(p);
                    ctx.send(
                        p,
                        ShareMsg::Cross {
                            a: my_row.eval(x),
                            b: my_col.eval(x),
                        },
                    );
                }
                // Re-check buffered cross points now that we can verify.
                // (Sorted: emission order must not depend on HashMap
                // iteration order, or deterministic replay breaks.)
                let mut peers: Vec<PartyId> = self.crosses.keys().copied().collect();
                peers.sort();
                for j in peers {
                    self.try_ok(j, ctx);
                }
            }
            ShareMsg::Cross { a, b } => {
                // First cross from each peer counts.
                if self.crosses.contains_key(&from) {
                    return;
                }
                self.crosses.insert(from, (*a, *b));
                self.try_ok(from, ctx);
            }
            ShareMsg::Ok(peer) => {
                if self.oks.entry(from).or_default().insert(*peer) {
                    self.dealer_try_core(ctx);
                    self.try_done(ctx);
                }
            }
            ShareMsg::Done => {
                if self.dones.insert(from) {
                    if self.dones.len() > t && !self.done_sent {
                        self.done_sent = true;
                        ctx.send_all(ShareMsg::Done);
                    }
                    self.try_complete(ctx);
                }
            }
        }
    }

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        if child.kind != CORE_TAG || self.core.is_some() {
            return;
        }
        let Some(core) = output.downcast_ref::<Vec<usize>>() else {
            return;
        };
        let n = ctx.n();
        // Validate: exactly n − t distinct known parties.
        let mut seen = HashSet::new();
        let valid = core.len() == n - ctx.t() && core.iter().all(|&p| p < n && seen.insert(p));
        if !valid {
            return; // a faulty dealer's junk proposal: ignore forever
        }
        self.core = Some(core.iter().map(|&p| PartyId(p)).collect());
        self.try_done(ctx);
        self.try_complete(ctx);
    }
}
