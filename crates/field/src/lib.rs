//! # aft-field
//!
//! Finite-field arithmetic for the `aft` reproduction of
//! *Revisiting Asynchronous Fault Tolerant Computation with Optimal
//! Resilience* (Abraham–Dolev–Stern, PODC 2020).
//!
//! This crate is the algebraic substrate under the secret-sharing layer:
//!
//! * [`Fp`] — the prime field `GF(2^61 − 1)` (fast Mersenne reduction);
//! * [`Poly`] — univariate polynomials (Shamir sharing, evaluation,
//!   division);
//! * [`BivarPoly`] — bivariate polynomials of bounded degree per variable
//!   (the dealer object in SVSS);
//! * [`interpolate`] / [`interpolate_at_zero`] — Lagrange interpolation;
//! * [`rs_decode`] / [`oec_decode`] / [`OnlineDecoder`] — Berlekamp–Welch
//!   Reed–Solomon decoding and the *online error correction* loop used by
//!   asynchronous reconstruction with up to `t` Byzantine points.
//!
//! # Example: Shamir share-and-reconstruct with faults
//!
//! ```
//! use aft_field::{oec_decode, Fp, Poly};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let secret = Fp::new(1234);
//! let t = 2; // up to t corrupted shares
//! let n = 3 * t + 1;
//! let poly = Poly::random_with_secret(secret, t, &mut rng);
//! let mut shares: Vec<(Fp, Fp)> =
//!     (1..=n as u64).map(|i| (Fp::new(i), poly.eval(Fp::new(i)))).collect();
//! shares[0].1 = Fp::new(999); // a Byzantine party lies
//! shares[3].1 = Fp::new(42);  // another one lies
//! let recovered = oec_decode(&shares, t).unwrap();
//! assert_eq!(recovered.eval(Fp::ZERO), secret);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bivar;
mod fp;
mod interp;
mod linalg;
mod poly;
mod rs;

pub use bivar::BivarPoly;
pub use fp::{batch_invert, Fp, MODULUS};
pub use interp::{interpolate, interpolate_at, interpolate_at_zero, InterpolateError};
pub use linalg::solve_linear;
pub use poly::Poly;
pub use rs::{oec_decode, rs_decode, DuplicatePointError, OnlineDecoder};
