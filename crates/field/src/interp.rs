//! Lagrange interpolation over [`Fp`].
//!
//! All interpolation paths compute their basis denominators up front and
//! invert them with one [`batch_invert`] (Montgomery's trick) — a single
//! field inversion per call instead of one per point, which matters in
//! the Reed–Solomon decode loops where interpolation runs per candidate
//! error budget.

use crate::fp::{batch_invert, Fp};
use crate::poly::Poly;

/// Errors produced by interpolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpolateError {
    /// Two points share the same x-coordinate.
    DuplicateX,
    /// No points were supplied.
    Empty,
}

impl std::fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpolateError::DuplicateX => write!(f, "duplicate x-coordinate in interpolation"),
            InterpolateError::Empty => write!(f, "no points supplied for interpolation"),
        }
    }
}

impl std::error::Error for InterpolateError {}

/// Interpolates the unique polynomial of degree `< points.len()` through the
/// given `(x, y)` points.
///
/// # Errors
///
/// Returns [`InterpolateError::DuplicateX`] if two points share an
/// x-coordinate and [`InterpolateError::Empty`] for an empty slice.
///
/// # Examples
///
/// ```
/// use aft_field::{interpolate, Fp, Poly};
///
/// // Through (1, 1), (2, 4), (3, 9): y = x^2.
/// let pts = [(Fp::new(1), Fp::new(1)), (Fp::new(2), Fp::new(4)), (Fp::new(3), Fp::new(9))];
/// let p = interpolate(&pts)?;
/// assert_eq!(p.eval(Fp::new(7)), Fp::new(49));
/// # Ok::<(), aft_field::InterpolateError>(())
/// ```
pub fn interpolate(points: &[(Fp, Fp)]) -> Result<Poly, InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        for (xj, _) in &points[..i] {
            if xi == xj {
                return Err(InterpolateError::DuplicateX);
            }
        }
    }
    // Denominators d_i = prod_{j != i} (x_i - x_j), inverted together:
    // one field inversion for the whole call (Montgomery's trick).
    let mut denoms: Vec<Fp> = points
        .iter()
        .enumerate()
        .map(|(i, &(xi, _))| {
            points
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &(xj, _))| xi - xj)
                .product()
        })
        .collect();
    batch_invert(&mut denoms);
    let mut acc = Poly::zero();
    for (i, &(_, yi)) in points.iter().enumerate() {
        // Basis polynomial l_i = prod_{j != i} (x - x_j) / d_i
        let mut basis = Poly::constant(Fp::ONE);
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            basis = basis.mul_linear(xj);
        }
        let scale = yi * denoms[i];
        let scaled = Poly::from_coeffs(basis.coeffs().iter().map(|&c| c * scale).collect());
        acc = &acc + &scaled;
    }
    Ok(acc)
}

/// Evaluates, at `x = 0`, the unique polynomial through the given points —
/// the classic "reconstruct the secret" operation — without materialising
/// the whole polynomial.
///
/// # Errors
///
/// Same conditions as [`interpolate`].
///
/// ```
/// use aft_field::{interpolate_at_zero, Fp};
/// let pts = [(Fp::new(1), Fp::new(3)), (Fp::new(2), Fp::new(5))]; // y = 2x + 1
/// assert_eq!(interpolate_at_zero(&pts)?, Fp::new(1));
/// # Ok::<(), aft_field::InterpolateError>(())
/// ```
pub fn interpolate_at_zero(points: &[(Fp, Fp)]) -> Result<Fp, InterpolateError> {
    interpolate_at(points, Fp::ZERO)
}

/// Evaluates, at an arbitrary `x`, the unique polynomial through the given
/// points, via the barycentric form of Lagrange interpolation.
///
/// # Errors
///
/// Same conditions as [`interpolate`].
pub fn interpolate_at(points: &[(Fp, Fp)], x: Fp) -> Result<Fp, InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        for (xj, _) in &points[..i] {
            if xi == xj {
                return Err(InterpolateError::DuplicateX);
            }
        }
        // If x coincides with a node, return that node's value directly.
    }
    if let Some(&(_, y)) = points.iter().find(|(xi, _)| *xi == x) {
        return Ok(y);
    }
    // Denominators batch-inverted: one inversion per evaluation.
    let mut dens: Vec<Fp> = points
        .iter()
        .enumerate()
        .map(|(i, &(xi, _))| {
            points
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &(xj, _))| xi - xj)
                .product()
        })
        .collect();
    batch_invert(&mut dens);
    let mut total = Fp::ZERO;
    for (i, &(_, yi)) in points.iter().enumerate() {
        let mut num = Fp::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= x - xj;
        }
        total += yi * num * dens[i];
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn interpolation_recovers_random_polys() {
        let mut r = rng();
        for deg in 0..8 {
            let p = Poly::random(deg, &mut r);
            let pts: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
                .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
                .collect();
            let q = interpolate(&pts).unwrap();
            assert_eq!(p, q, "degree {deg}");
        }
    }

    #[test]
    fn at_zero_matches_full_interpolation() {
        let mut r = rng();
        for _ in 0..30 {
            let p = Poly::random(5, &mut r);
            let pts: Vec<(Fp, Fp)> = (1..=6u64)
                .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
                .collect();
            assert_eq!(interpolate_at_zero(&pts).unwrap(), p.eval(Fp::ZERO));
        }
    }

    #[test]
    fn at_arbitrary_point_matches() {
        let mut r = rng();
        for _ in 0..30 {
            let p = Poly::random(4, &mut r);
            let pts: Vec<(Fp, Fp)> = (1..=5u64)
                .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
                .collect();
            let x = Fp::new(r.gen_range(0..1000));
            assert_eq!(interpolate_at(&pts, x).unwrap(), p.eval(x));
        }
    }

    #[test]
    fn at_node_point_returns_node_value() {
        let pts = [(Fp::new(3), Fp::new(42)), (Fp::new(5), Fp::new(7))];
        assert_eq!(interpolate_at(&pts, Fp::new(3)).unwrap(), Fp::new(42));
    }

    #[test]
    fn duplicate_x_rejected() {
        let pts = [(Fp::new(1), Fp::new(2)), (Fp::new(1), Fp::new(3))];
        assert_eq!(interpolate(&pts), Err(InterpolateError::DuplicateX));
        assert_eq!(interpolate_at_zero(&pts), Err(InterpolateError::DuplicateX));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(interpolate(&[]), Err(InterpolateError::Empty));
        assert_eq!(interpolate_at_zero(&[]), Err(InterpolateError::Empty));
    }

    #[test]
    fn single_point_is_constant() {
        let p = interpolate(&[(Fp::new(9), Fp::new(4))]).unwrap();
        assert_eq!(p, Poly::constant(Fp::new(4)));
    }

    #[test]
    fn oversampled_points_still_recover_low_degree() {
        // 10 points on a degree-2 polynomial must interpolate back to it.
        let p = Poly::from_coeffs(vec![Fp::new(1), Fp::new(2), Fp::new(3)]);
        let pts: Vec<(Fp, Fp)> = (1..=10u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        assert_eq!(interpolate(&pts).unwrap(), p);
    }
}
