//! Reed–Solomon decoding: Berlekamp–Welch with a fixed error budget, plus
//! the *online error correction* (OEC) loop used by asynchronous
//! reconstruction.
//!
//! In the SVSS reconstruction of [ADH08]-style protocols, a party receives
//! claimed points of a degree-`t` polynomial one at a time; up to `t` of the
//! eventual points are adversarial. OEC retries decoding with a growing
//! error budget as points arrive and accepts only a polynomial that agrees
//! with enough received points to be uniquely correct. See `DESIGN.md` §4.1.
//!
//! Field inversions in the decode paths are batched: the interpolation
//! behind the zero-error fast path (and every OEC retry that reaches it)
//! uses [`batch_invert`](crate::batch_invert) — one inversion per decode
//! attempt instead of one per point.

use crate::fp::Fp;
use crate::interp::interpolate;
use crate::linalg::solve_linear;
use crate::poly::Poly;

/// Decodes the unique polynomial of degree ≤ `degree` through `points`,
/// tolerating at most `errors` wrong points (Berlekamp–Welch).
///
/// Requirements for a guaranteed decode: `points.len() >= degree + 2*errors + 1`
/// and at most `errors` of the points are wrong. The returned polynomial is
/// *verified* to agree with at least `points.len() - errors` of the supplied
/// points, which makes it unique: two degree-≤`degree` polynomials each
/// missing ≤ `errors` of `m ≥ degree + 2·errors + 1` points agree on
/// ≥ `degree + 1` common points and are therefore equal.
///
/// Returns `None` when no such polynomial exists (more errors than budget,
/// or too few points). Duplicate x-coordinates return `None`.
///
/// # Examples
///
/// ```
/// use aft_field::{rs_decode, Fp, Poly};
///
/// // y = x + 1 at 5 points, one corrupted.
/// let mut pts: Vec<(Fp, Fp)> = (1..=5u64).map(|i| (Fp::new(i), Fp::new(i + 1))).collect();
/// pts[2].1 = Fp::new(999);
/// let p = rs_decode(&pts, 1, 1).unwrap();
/// assert_eq!(p.eval(Fp::new(10)), Fp::new(11));
/// ```
pub fn rs_decode(points: &[(Fp, Fp)], degree: usize, errors: usize) -> Option<Poly> {
    let m = points.len();
    if m < degree + 2 * errors + 1 {
        return None;
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        if points[..i].iter().any(|(xj, _)| xj == xi) {
            return None;
        }
    }

    let candidate = if errors == 0 {
        interpolate(&points[..degree + 1]).ok()?
    } else {
        berlekamp_welch(points, degree, errors)?
    };

    if candidate.degree().map_or(0, |d| d) > degree {
        return None;
    }
    let agree = points
        .iter()
        .filter(|&&(x, y)| candidate.eval(x) == y)
        .count();
    if agree >= m - errors {
        Some(candidate)
    } else {
        None
    }
}

/// Core Berlekamp–Welch system: find monic `E` of degree `e` and `Q` of
/// degree ≤ `d + e` with `Q(x_i) = y_i · E(x_i)` for all points, then return
/// `Q / E` when the division is exact.
fn berlekamp_welch(points: &[(Fp, Fp)], d: usize, e: usize) -> Option<Poly> {
    let m = points.len();
    // Unknowns: q_0..q_{d+e}  (d+e+1 of them), then e_0..e_{e-1}.
    let nq = d + e + 1;
    let unknowns = nq + e;
    let mut a = Vec::with_capacity(m);
    let mut b = Vec::with_capacity(m);
    for &(x, y) in points {
        let mut row = vec![Fp::ZERO; unknowns];
        let mut xp = Fp::ONE;
        for cell in row.iter_mut().take(nq) {
            *cell = xp;
            xp *= x;
        }
        let mut xp = Fp::ONE;
        for k in 0..e {
            row[nq + k] = -(y * xp);
            xp *= x;
        }
        // x^e coefficient of E is fixed to 1 (monic):
        b.push(y * x.pow(e as u64));
        a.push(row);
    }
    let z = solve_linear(&a, &b)?;
    let q = Poly::from_coeffs(z[..nq].to_vec());
    let mut e_coeffs = z[nq..].to_vec();
    e_coeffs.push(Fp::ONE); // monic
    let e_poly = Poly::from_coeffs(e_coeffs);
    q.div_exact(&e_poly)
}

/// Online error correction: tries error budgets `0, 1, 2, …` as far as the
/// current number of points allows and returns the first verified decode.
///
/// Guarantee: if at most `f` of the supplied points are wrong and at least
/// `degree + 2f + 1` points are present, a correct polynomial is returned.
/// Conversely, *any* returned polynomial agrees with at least
/// `m − e ≥ degree + e + 1` points for the budget `e` that succeeded, so if
/// at most `e` points are wrong the result is exact.
///
/// **Caveat for streaming use**: when points arrive one at a time, an early
/// call can succeed with a small budget while a corrupted point sits among
/// the first `degree + 1` — correct *only* relative to the points seen so
/// far. For asynchronous protocols with a global bound of `max_bad`
/// adversarial points, use [`OnlineDecoder`], whose acceptance rule
/// additionally demands agreement with `degree + max_bad + 1` points and is
/// therefore sound at any prefix.
///
/// ```
/// use aft_field::{oec_decode, Fp};
/// // degree 1 polynomial y = 2x, points arriving with 1 corruption
/// let pts = vec![
///     (Fp::new(1), Fp::new(2)),
///     (Fp::new(2), Fp::new(4)),
///     (Fp::new(3), Fp::new(777)), // bad
///     (Fp::new(4), Fp::new(8)),
///     (Fp::new(5), Fp::new(10)),
/// ];
/// let p = oec_decode(&pts, 1).unwrap();
/// assert_eq!(p.eval(Fp::new(6)), Fp::new(12));
/// ```
pub fn oec_decode(points: &[(Fp, Fp)], degree: usize) -> Option<Poly> {
    let m = points.len();
    if m <= degree {
        return None;
    }
    let max_e = (m - degree - 1) / 2;
    (0..=max_e).find_map(|e| rs_decode(points, degree, e))
}

/// An incremental online-error-correcting decoder that is *sound at every
/// prefix* under a global bound of `max_bad` adversarial points.
///
/// Feed points as they arrive with [`OnlineDecoder::add_point`]. A
/// candidate is accepted only when it agrees with at least
/// `degree + max_bad + 1` of the received points: at most `max_bad` of
/// those can be adversarial, so at least `degree + 1` agreeing points are
/// honest and pin the polynomial down uniquely. Hence an accepted decode is
/// always the honest parties' polynomial — even if many of the *early*
/// arrivals were adversarial.
///
/// Termination: once all `h ≥ degree + max_bad + 1` honest points have
/// arrived (e.g. `h = 2t + 1`, `degree = t`, `max_bad = t` in the SVSS
/// layer), the loop reaches a budget `e` covering the `f ≤ max_bad` bad
/// points actually received (`e = f` satisfies both
/// `m ≥ degree + 2e + 1` and `m − e ≥ degree + max_bad + 1`), so decoding
/// is guaranteed to succeed.
///
/// Duplicate x-coordinates are rejected (`add_point` returns an error) —
/// in protocol use each party contributes at most one point.
#[derive(Debug, Clone)]
pub struct OnlineDecoder {
    degree: usize,
    max_bad: usize,
    points: Vec<(Fp, Fp)>,
    decoded: Option<Poly>,
}

/// Error returned when a duplicate x-coordinate is fed to [`OnlineDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicatePointError(pub Fp);

impl std::fmt::Display for DuplicatePointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "duplicate x-coordinate {} fed to online decoder", self.0)
    }
}

impl std::error::Error for DuplicatePointError {}

impl OnlineDecoder {
    /// Creates a decoder for a polynomial of degree ≤ `degree` with at most
    /// `max_bad` adversarial points among all that will ever arrive.
    pub fn new(degree: usize, max_bad: usize) -> Self {
        OnlineDecoder {
            degree,
            max_bad,
            points: Vec::new(),
            decoded: None,
        }
    }

    /// The number of points received so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been received.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The decoded polynomial, if decoding has already succeeded.
    pub fn decoded(&self) -> Option<&Poly> {
        self.decoded.as_ref()
    }

    /// Adds a point and re-attempts decoding.
    ///
    /// Returns `Ok(Some(poly))` once decoding succeeds (and on every later
    /// call), `Ok(None)` while more points are needed.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicatePointError`] if `x` was already supplied.
    pub fn add_point(&mut self, x: Fp, y: Fp) -> Result<Option<&Poly>, DuplicatePointError> {
        if self.points.iter().any(|&(px, _)| px == x) {
            return Err(DuplicatePointError(x));
        }
        self.points.push((x, y));
        if self.decoded.is_none() {
            self.decoded = self.try_decode();
        }
        Ok(self.decoded.as_ref())
    }

    /// Attempts a sound decode of the points received so far.
    fn try_decode(&self) -> Option<Poly> {
        let m = self.points.len();
        // Acceptance needs agreement with >= degree + max_bad + 1 points,
        // i.e. m - e >= degree + max_bad + 1; BW needs m >= degree + 2e + 1.
        let bound = m.checked_sub(self.degree + self.max_bad + 1)?;
        let bw_bound = (m - self.degree - 1) / 2;
        (0..=bound.min(bw_bound)).find_map(|e| rs_decode(&self.points, self.degree, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(23)
    }

    fn sample_points(p: &Poly, n: usize) -> Vec<(Fp, Fp)> {
        (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect()
    }

    #[test]
    fn decodes_with_zero_errors() {
        let mut r = rng();
        let p = Poly::random(3, &mut r);
        let pts = sample_points(&p, 4);
        assert_eq!(rs_decode(&pts, 3, 0).unwrap(), p);
    }

    #[test]
    fn corrects_exactly_e_errors() {
        let mut r = rng();
        for t in 1..5usize {
            for e in 1..=t {
                let p = Poly::random(t, &mut r);
                let n = t + 2 * e + 1;
                let mut pts = sample_points(&p, n);
                // corrupt e random positions with distinct garbage
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(&mut r);
                for &i in idx.iter().take(e) {
                    pts[i].1 += Fp::new(1 + r.gen_range(0..1000u64));
                }
                let decoded = rs_decode(&pts, t, e).expect("within budget");
                assert_eq!(decoded, p, "t={t} e={e}");
            }
        }
    }

    #[test]
    fn too_many_errors_fails_cleanly() {
        let mut r = rng();
        let t = 2;
        let p = Poly::random(t, &mut r);
        let n = t + 2 + 1; // budget e=1
        let mut pts = sample_points(&p, n);
        // corrupt 2 > budget
        pts[0].1 += Fp::ONE;
        pts[1].1 += Fp::ONE;
        // may fail or return garbage that fails verification; must be None
        assert!(rs_decode(&pts, t, 1).is_none());
    }

    #[test]
    fn insufficient_points_is_none() {
        let mut r = rng();
        let p = Poly::random(3, &mut r);
        let pts = sample_points(&p, 4);
        assert!(rs_decode(&pts, 3, 1).is_none()); // needs 3+2+1=6
    }

    #[test]
    fn duplicate_x_is_none() {
        let pts = vec![
            (Fp::new(1), Fp::new(1)),
            (Fp::new(1), Fp::new(2)),
            (Fp::new(2), Fp::new(3)),
        ];
        assert!(rs_decode(&pts, 1, 0).is_none());
    }

    #[test]
    fn oec_succeeds_at_minimum_points() {
        let mut r = rng();
        let t = 3usize;
        let f = 2usize; // actual bad points
        let p = Poly::random(t, &mut r);
        let n = t + 2 * f + 1;
        let mut pts = sample_points(&p, n);
        pts[1].1 += Fp::new(5);
        pts[4].1 += Fp::new(9);
        assert_eq!(oec_decode(&pts, t).unwrap(), p);
        // With one fewer point it may or may not decode, but must never
        // return a *wrong* polynomial when ≤ f errors and budget respected:
        if let Some(q) = oec_decode(&pts[..n - 1], t) {
            assert_eq!(q, p);
        }
    }

    #[test]
    fn online_decoder_streams_to_success() {
        let mut r = rng();
        let t = 2usize;
        let p = Poly::random(t, &mut r);
        // 9 points: 2 corrupted, delivered in adversarial order (bad first).
        let mut pts = sample_points(&p, 9);
        pts[0].1 += Fp::ONE;
        pts[1].1 += Fp::new(7);
        pts.swap(2, 8);
        let mut dec = OnlineDecoder::new(t, 2);
        let mut done_at = None;
        for (i, &(x, y)) in pts.iter().enumerate() {
            if dec.add_point(x, y).unwrap().is_some() && done_at.is_none() {
                done_at = Some(i);
            }
        }
        assert_eq!(dec.decoded().unwrap(), &p);
        // Must have succeeded by the time all points are in (t + 2*2 + 1 = 7).
        assert!(done_at.unwrap() <= 8);
    }

    #[test]
    fn online_decoder_rejects_duplicates() {
        let mut dec = OnlineDecoder::new(1, 0);
        dec.add_point(Fp::new(1), Fp::new(1)).unwrap();
        assert_eq!(
            dec.add_point(Fp::new(1), Fp::new(2)),
            Err(DuplicatePointError(Fp::new(1)))
        );
    }

    #[test]
    fn online_decoder_never_wrong_within_budget() {
        // Property-style loop: random polynomial, random ≤ t corruptions,
        // random arrival order; whenever a decode is produced it is exact.
        let mut r = rng();
        for _ in 0..50 {
            let t = r.gen_range(1..4usize);
            let n = 3 * t + 1;
            let p = Poly::random(t, &mut r);
            let mut pts = sample_points(&p, n);
            let bad = r.gen_range(0..=t);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut r);
            for &i in idx.iter().take(bad) {
                pts[i].1 += Fp::new(r.gen_range(1..100));
            }
            pts.shuffle(&mut r);
            let mut dec = OnlineDecoder::new(t, t);
            for &(x, y) in &pts {
                if let Some(q) = dec.add_point(x, y).unwrap() {
                    assert_eq!(q, &p);
                }
            }
            assert_eq!(dec.decoded(), Some(&p), "must decode with all points in");
        }
    }

    #[test]
    fn empty_decoder_accessors() {
        let dec = OnlineDecoder::new(2, 1);
        assert!(dec.is_empty());
        assert_eq!(dec.len(), 0);
        assert!(dec.decoded().is_none());
    }
}
