//! Prime-field arithmetic over the Mersenne prime `p = 2^61 - 1`.
//!
//! The field is large enough that random secrets collide with negligible
//! probability and small enough that products fit comfortably in `u128`,
//! making every operation branch-light and fast. Reduction uses the Mersenne
//! identity `x mod (2^61 - 1) = (x & p) + (x >> 61)` (repeated once).

use rand::Rng;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of the prime field `GF(2^61 - 1)`.
///
/// The internal representative is always kept in canonical range
/// `0 <= value < MODULUS`.
///
/// # Examples
///
/// ```
/// use aft_field::Fp;
///
/// let a = Fp::new(7);
/// let b = Fp::new(5);
/// assert_eq!(a + b, Fp::new(12));
/// assert_eq!(a * b, Fp::new(35));
/// assert_eq!((a / b) * b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates a field element from a `u64`, reducing modulo `p`.
    ///
    /// ```
    /// use aft_field::{Fp, MODULUS};
    /// assert_eq!(Fp::new(MODULUS), Fp::ZERO);
    /// assert_eq!(Fp::new(MODULUS + 3), Fp::new(3));
    /// ```
    #[inline]
    pub const fn new(value: u64) -> Self {
        // Two folds suffice for any u64 input.
        let v = (value & MODULUS) + (value >> 61);
        let v = if v >= MODULUS { v - MODULUS } else { v };
        Fp(v)
    }

    /// Returns the canonical representative in `[0, MODULUS)`.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The canonical 8-byte little-endian wire encoding.
    ///
    /// ```
    /// use aft_field::Fp;
    /// let x = Fp::new(0xABCD);
    /// assert_eq!(Fp::from_le_bytes(x.to_le_bytes()), Some(x));
    /// ```
    #[inline]
    pub const fn to_le_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Decodes the canonical encoding; rejects non-canonical
    /// representatives (`>= MODULUS`), so every field element has exactly
    /// one byte form and byte-level adversaries cannot alias elements.
    #[inline]
    pub const fn from_le_bytes(bytes: [u8; 8]) -> Option<Fp> {
        let v = u64::from_le_bytes(bytes);
        if v < MODULUS {
            Some(Fp(v))
        } else {
            None
        }
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Samples a uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling for perfect uniformity (the rejection region is
        // tiny: only MODULUS..2^61 and 2^61..2^64 after masking, handled by
        // gen_range which is already unbiased).
        Fp(rng.gen_range(0..MODULUS))
    }

    /// Raises `self` to the power `exp` via square-and-multiply.
    ///
    /// ```
    /// use aft_field::Fp;
    /// assert_eq!(Fp::new(3).pow(4), Fp::new(81));
    /// assert_eq!(Fp::new(0).pow(0), Fp::ONE);
    /// ```
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem (`a^(p-2)`), which is constant-cost and
    /// simple; this library does not aim for side-channel resistance (see
    /// DESIGN.md §7).
    ///
    /// ```
    /// use aft_field::Fp;
    /// let a = Fp::new(1234567);
    /// assert_eq!(a * a.inv().unwrap(), Fp::ONE);
    /// assert_eq!(Fp::ZERO.inv(), None);
    /// ```
    pub fn inv(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }
}

/// Inverts every nonzero element of `values` in place with Montgomery's
/// batch-inversion trick: `3(k - 1)` multiplications plus a **single**
/// field inversion, instead of one `p - 2` exponentiation per element.
/// Zero entries are left untouched (zero has no inverse).
///
/// This is the workhorse behind [`interpolate`](crate::interpolate) and
/// the Reed–Solomon decode paths, where every call previously paid one
/// inversion per interpolation point.
///
/// ```
/// use aft_field::{batch_invert, Fp};
/// let mut vals = [Fp::new(2), Fp::ZERO, Fp::new(7)];
/// batch_invert(&mut vals);
/// assert_eq!(vals[0] * Fp::new(2), Fp::ONE);
/// assert_eq!(vals[1], Fp::ZERO);
/// assert_eq!(vals[2] * Fp::new(7), Fp::ONE);
/// ```
pub fn batch_invert(values: &mut [Fp]) {
    // Forward pass: prefix[i] = product of all nonzero values before the
    // i-th nonzero value.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = Fp::ONE;
    for &v in values.iter() {
        if !v.is_zero() {
            prefix.push(acc);
            acc *= v;
        }
    }
    // One inversion of the total product...
    let mut suffix_inv = match acc.inv() {
        Some(inv) => inv,
        None => return, // acc == ONE only when no nonzero entries exist
    };
    // ...then a backward pass peels off one element at a time:
    // inv(v_i) = prefix_i * inv(v_i * v_{i+1} * …) * (v_{i+1} * …)⁻¹-free.
    for v in values.iter_mut().rev() {
        if !v.is_zero() {
            let p = prefix.pop().expect("one prefix per nonzero value");
            let inv_v = suffix_inv * p;
            suffix_inv *= *v;
            *v = inv_v;
        }
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::new(v)
    }
}

impl From<u32> for Fp {
    fn from(v: u32) -> Self {
        Fp::new(v as u64)
    }
}

impl From<bool> for Fp {
    fn from(v: bool) -> Self {
        if v {
            Fp::ONE
        } else {
            Fp::ZERO
        }
    }
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let s = self.0 + rhs.0; // < 2^62, no overflow
        Fp(if s >= MODULUS { s - MODULUS } else { s })
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let s = self.0.wrapping_sub(rhs.0);
        Fp(if self.0 < rhs.0 {
            s.wrapping_add(MODULUS)
        } else {
            s
        })
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        let prod = (self.0 as u128) * (rhs.0 as u128);
        // Mersenne fold: low 61 bits + high bits. After one fold the value is
        // < 2^62, so a second fold plus conditional subtraction canonicalises.
        let folded = (prod & MODULUS as u128) as u64 + (prod >> 61) as u64;
        Fp::new(folded)
    }
}

impl Div for Fp {
    type Output = Fp;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: Fp) -> Fp {
        #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiply-by-inverse
        {
            self * rhs.inv().expect("division by zero in Fp")
        }
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}
impl DivAssign for Fp {
    fn div_assign(&mut self, rhs: Fp) {
        *self = *self / rhs;
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + b)
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn canonical_construction_reduces() {
        assert_eq!(Fp::new(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(MODULUS + 1), Fp::ONE);
        assert!(Fp::new(u64::MAX).value() < MODULUS);
        // u64::MAX = 2^64 - 1 = 8 * (2^61 - 1) + 7  =>  reduces to 7
        assert_eq!(Fp::new(u64::MAX), Fp::new(7));
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut r = rng();
        for _ in 0..1000 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            assert_eq!(a + b - b, a);
            assert_eq!(a - b + b, a);
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut r = rng();
        for _ in 0..1000 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let expect = ((a.value() as u128 * b.value() as u128) % MODULUS as u128) as u64;
            assert_eq!((a * b).value(), expect);
        }
    }

    #[test]
    fn mul_extreme_values() {
        let m = Fp::new(MODULUS - 1);
        // (p-1)^2 mod p = 1
        assert_eq!(m * m, Fp::ONE);
        assert_eq!(m * Fp::ZERO, Fp::ZERO);
        assert_eq!(m * Fp::ONE, m);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut r = rng();
        for _ in 0..100 {
            let a = Fp::random(&mut r);
            assert_eq!(a + (-a), Fp::ZERO);
        }
        assert_eq!(-Fp::ZERO, Fp::ZERO);
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        let mut r = rng();
        for _ in 0..100 {
            let a = Fp::random(&mut r);
            if !a.is_zero() {
                assert_eq!(a * a.inv().unwrap(), Fp::ONE);
            }
        }
        assert!(Fp::ZERO.inv().is_none());
    }

    #[test]
    fn pow_laws() {
        let a = Fp::new(987654321);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(5), a * a * a * a * a);
        // Fermat: a^(p-1) = 1
        assert_eq!(a.pow(MODULUS - 1), Fp::ONE);
    }

    #[test]
    fn div_by_zero_panics() {
        let result = std::panic::catch_unwind(|| Fp::ONE / Fp::ZERO);
        assert!(result.is_err());
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Fp::new(1), Fp::new(2), Fp::new(3), Fp::new(4)];
        assert_eq!(xs.iter().copied().sum::<Fp>(), Fp::new(10));
        assert_eq!(xs.iter().copied().product::<Fp>(), Fp::new(24));
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", Fp::new(5)), "5");
        assert_eq!(format!("{:?}", Fp::new(5)), "Fp(5)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Fp::from(true), Fp::ONE);
        assert_eq!(Fp::from(false), Fp::ZERO);
        assert_eq!(Fp::from(17u32), Fp::new(17));
        assert_eq!(Fp::from(17u64), Fp::new(17));
    }

    #[test]
    fn random_is_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(Fp::random(&mut r).value() < MODULUS);
        }
    }

    #[test]
    fn batch_invert_matches_scalar_inv() {
        let mut r = rng();
        for len in 0..20usize {
            let originals: Vec<Fp> = (0..len).map(|_| Fp::random(&mut r)).collect();
            let mut batched = originals.clone();
            batch_invert(&mut batched);
            for (orig, inv) in originals.iter().zip(&batched) {
                assert_eq!(*inv, orig.inv().unwrap(), "len {len}");
                assert_eq!(*orig * *inv, Fp::ONE);
            }
        }
    }

    #[test]
    fn batch_invert_skips_zeros() {
        let mut vals = vec![Fp::ZERO, Fp::new(3), Fp::ZERO, Fp::new(9), Fp::ZERO];
        batch_invert(&mut vals);
        assert_eq!(vals[0], Fp::ZERO);
        assert_eq!(vals[2], Fp::ZERO);
        assert_eq!(vals[4], Fp::ZERO);
        assert_eq!(vals[1] * Fp::new(3), Fp::ONE);
        assert_eq!(vals[3] * Fp::new(9), Fp::ONE);
        // All zeros: a no-op, no panic.
        let mut zeros = vec![Fp::ZERO; 4];
        batch_invert(&mut zeros);
        assert!(zeros.iter().all(|z| z.is_zero()));
        // Empty: a no-op.
        batch_invert(&mut []);
    }
}
