//! Univariate polynomials over [`Fp`] in coefficient form.

use crate::fp::Fp;
use rand::Rng;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A univariate polynomial over `GF(2^61 - 1)`, stored as coefficients in
/// ascending degree order (`coeffs[i]` multiplies `x^i`).
///
/// The zero polynomial is represented by an empty coefficient vector; all
/// constructors and operations keep the representation normalised (no
/// trailing zero coefficients), so `==` is semantic equality.
///
/// # Examples
///
/// ```
/// use aft_field::{Fp, Poly};
///
/// // 3 + 2x
/// let p = Poly::from_coeffs(vec![Fp::new(3), Fp::new(2)]);
/// assert_eq!(p.eval(Fp::new(10)), Fp::new(23));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    coeffs: Vec<Fp>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Fp) -> Self {
        Poly::from_coeffs(vec![c])
    }

    /// Builds a polynomial from coefficients in ascending degree order,
    /// trimming trailing zeros.
    pub fn from_coeffs(coeffs: Vec<Fp>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// Samples a uniformly random polynomial of degree at most `deg`.
    pub fn random<R: Rng + ?Sized>(deg: usize, rng: &mut R) -> Self {
        let coeffs = (0..=deg).map(|_| Fp::random(rng)).collect();
        Poly::from_coeffs(coeffs)
    }

    /// Samples a random polynomial of degree at most `deg` with fixed
    /// constant term `p(0) = secret` — the Shamir sharing polynomial.
    pub fn random_with_secret<R: Rng + ?Sized>(secret: Fp, deg: usize, rng: &mut R) -> Self {
        let mut coeffs: Vec<Fp> = (0..=deg).map(|_| Fp::random(rng)).collect();
        coeffs[0] = secret;
        Poly::from_coeffs(coeffs)
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Appends the canonical wire encoding: `u32` coefficient count, then
    /// each coefficient's canonical 8-byte form, ascending degree.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.coeffs.len() as u32).to_le_bytes());
        for c in &self.coeffs {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Decodes a prefix written by [`encode_to`](Poly::encode_to) from
    /// `bytes`, returning the polynomial and the bytes consumed.
    ///
    /// Rejects truncated input, non-canonical field elements and
    /// non-normalized encodings (a trailing zero coefficient), so
    /// `decode ∘ encode = id` and every polynomial has exactly one byte
    /// form.
    pub fn decode_from(bytes: &[u8]) -> Option<(Poly, usize)> {
        let count_bytes: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        let total = 4 + count.checked_mul(8)?;
        let body = bytes.get(4..total)?;
        let mut coeffs = Vec::with_capacity(count);
        for chunk in body.chunks_exact(8) {
            coeffs.push(Fp::from_le_bytes(chunk.try_into().ok()?)?);
        }
        if coeffs.last().is_some_and(|c| c.is_zero()) {
            return None; // non-canonical: normalization would alias it
        }
        Some((Poly { coeffs }, total))
    }

    /// The coefficients in ascending degree order (no trailing zeros).
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// The coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Fp {
        self.coeffs.get(i).copied().unwrap_or(Fp::ZERO)
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates at the canonical party points `1..=n` (index `i` holds
    /// `p(i+1)`), the share vector used throughout the secret-sharing layer.
    pub fn eval_points(&self, n: usize) -> Vec<Fp> {
        (1..=n as u64).map(|i| self.eval(Fp::new(i))).collect()
    }

    /// Multiplies by the monomial `(x - root)`.
    pub fn mul_linear(&self, root: Fp) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Fp::ZERO; self.coeffs.len() + 1];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i + 1] += c;
            out[i] -= c * root;
        }
        Poly::from_coeffs(out)
    }

    /// Divides exactly by `divisor`, returning `None` when the division
    /// leaves a remainder or the divisor is zero.
    ///
    /// Used by Berlekamp–Welch decoding where `Q(x) / E(x)` must be exact.
    pub fn div_exact(&self, divisor: &Poly) -> Option<Poly> {
        let (q, r) = self.div_rem(divisor)?;
        if r.is_zero() {
            Some(q)
        } else {
            None
        }
    }

    /// Polynomial long division: returns `(quotient, remainder)`, or `None`
    /// if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Poly) -> Option<(Poly, Poly)> {
        let d_deg = divisor.degree()?;
        let d_lead_inv = divisor.coeffs[d_deg].inv().expect("leading coeff nonzero");
        let mut rem = self.coeffs.clone();
        if rem.len() < divisor.coeffs.len() {
            return Some((Poly::zero(), self.clone()));
        }
        let q_len = rem.len() - d_deg;
        let mut quot = vec![Fp::ZERO; q_len];
        for qi in (0..q_len).rev() {
            let lead = rem[qi + d_deg];
            if lead.is_zero() {
                continue;
            }
            let factor = lead * d_lead_inv;
            quot[qi] = factor;
            for (k, &dc) in divisor.coeffs.iter().enumerate() {
                rem[qi + k] -= factor * dc;
            }
        }
        Some((Poly::from_coeffs(quot), Poly::from_coeffs(rem)))
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|i| self.coeff(i) + rhs.coeff(i)).collect();
        Poly::from_coeffs(coeffs)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|i| self.coeff(i) - rhs.coeff(i)).collect();
        Poly::from_coeffs(coeffs)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Fp::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::from_coeffs(out)
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + {c}*x^{i}")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn zero_poly_invariants() {
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Fp::new(99)), Fp::ZERO);
        assert_eq!(Poly::from_coeffs(vec![Fp::ZERO, Fp::ZERO]), z);
    }

    #[test]
    fn constant_and_coeff_access() {
        let p = Poly::constant(Fp::new(9));
        assert_eq!(p.degree(), Some(0));
        assert_eq!(p.coeff(0), Fp::new(9));
        assert_eq!(p.coeff(5), Fp::ZERO);
    }

    #[test]
    fn eval_horner_matches_naive() {
        let mut r = rng();
        for _ in 0..50 {
            let p = Poly::random(6, &mut r);
            let x = Fp::random(&mut r);
            let naive: Fp = p
                .coeffs()
                .iter()
                .enumerate()
                .map(|(i, &c)| c * x.pow(i as u64))
                .sum();
            assert_eq!(p.eval(x), naive);
        }
    }

    #[test]
    fn random_with_secret_fixes_constant_term() {
        let mut r = rng();
        for _ in 0..20 {
            let s = Fp::random(&mut r);
            let p = Poly::random_with_secret(s, 4, &mut r);
            assert_eq!(p.eval(Fp::ZERO), s);
        }
    }

    #[test]
    fn add_sub_mul_algebra() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Poly::random(4, &mut r);
            let b = Poly::random(3, &mut r);
            let x = Fp::random(&mut r);
            assert_eq!((&a + &b).eval(x), a.eval(x) + b.eval(x));
            assert_eq!((&a - &b).eval(x), a.eval(x) - b.eval(x));
            assert_eq!((&a * &b).eval(x), a.eval(x) * b.eval(x));
        }
    }

    #[test]
    fn mul_linear_adds_root() {
        let mut r = rng();
        let p = Poly::random(3, &mut r);
        let root = Fp::new(5);
        let q = p.mul_linear(root);
        assert_eq!(q.eval(root), Fp::ZERO);
        assert_eq!(q.degree(), Some(4));
        let x = Fp::new(17);
        assert_eq!(q.eval(x), p.eval(x) * (x - root));
    }

    #[test]
    fn division_roundtrip() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Poly::random(7, &mut r);
            let b = Poly::random(3, &mut r);
            if b.is_zero() {
                continue;
            }
            let (q, rem) = a.div_rem(&b).unwrap();
            let recombined = &(&q * &b) + &rem;
            assert_eq!(recombined, a);
            assert!(rem.degree().unwrap_or(0) < b.degree().unwrap() || rem.is_zero());
        }
    }

    #[test]
    fn div_exact_detects_remainder() {
        let mut r = rng();
        let b = Poly::random(2, &mut r);
        let q = Poly::random(3, &mut r);
        let product = &q * &b;
        assert_eq!(product.div_exact(&b), Some(q));
        let with_rem = &product + &Poly::constant(Fp::ONE);
        assert_eq!(with_rem.div_exact(&b), None);
    }

    #[test]
    fn div_by_zero_returns_none() {
        let p = Poly::constant(Fp::ONE);
        assert!(p.div_rem(&Poly::zero()).is_none());
    }

    #[test]
    fn eval_points_are_one_indexed() {
        // p(x) = x
        let p = Poly::from_coeffs(vec![Fp::ZERO, Fp::ONE]);
        assert_eq!(p.eval_points(3), vec![Fp::new(1), Fp::new(2), Fp::new(3)]);
    }
}
