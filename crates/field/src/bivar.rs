//! Bivariate polynomials of bounded degree in each variable — the sharing
//! object of the SVSS layer.
//!
//! A dealer sharing secret `s` samples `F(x, y)` with degree ≤ t in each
//! variable and `F(0, 0) = s`, then hands party `i` its *row*
//! `f_i(y) = F(i, y)` and *column* `g_i(x) = F(x, i)`. Pairwise consistency
//! (`f_i(j) = g_j(i)`) is what the SVSS share phase cross-checks.

use crate::fp::Fp;
use crate::poly::Poly;
use rand::Rng;

/// A bivariate polynomial `F(x, y) = Σ coeffs[i][j] · x^i · y^j` with degree
/// at most `deg` in each variable.
///
/// # Examples
///
/// ```
/// use aft_field::{BivarPoly, Fp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let f = BivarPoly::random_with_secret(Fp::new(42), 2, &mut rng);
/// assert_eq!(f.eval(Fp::ZERO, Fp::ZERO), Fp::new(42));
/// // Row/column cross-consistency: F(i, j) via either projection.
/// let (i, j) = (Fp::new(3), Fp::new(5));
/// assert_eq!(f.row(i).eval(j), f.col(j).eval(i));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BivarPoly {
    deg: usize,
    /// `coeffs[i][j]` multiplies `x^i y^j`; always `(deg+1) x (deg+1)`.
    coeffs: Vec<Vec<Fp>>,
}

impl BivarPoly {
    /// Samples a uniformly random bivariate polynomial of degree ≤ `deg` in
    /// each variable.
    pub fn random<R: Rng + ?Sized>(deg: usize, rng: &mut R) -> Self {
        let coeffs = (0..=deg)
            .map(|_| (0..=deg).map(|_| Fp::random(rng)).collect())
            .collect();
        BivarPoly { deg, coeffs }
    }

    /// Samples a random bivariate polynomial with `F(0,0) = secret` — the
    /// dealer's sharing polynomial.
    pub fn random_with_secret<R: Rng + ?Sized>(secret: Fp, deg: usize, rng: &mut R) -> Self {
        let mut f = Self::random(deg, rng);
        f.coeffs[0][0] = secret;
        f
    }

    /// The degree bound (in each variable).
    pub fn degree(&self) -> usize {
        self.deg
    }

    /// The shared secret `F(0, 0)`.
    pub fn secret(&self) -> Fp {
        self.coeffs[0][0]
    }

    /// Evaluates `F(x, y)`.
    pub fn eval(&self, x: Fp, y: Fp) -> Fp {
        // Horner in x over polynomials in y.
        let mut acc = Fp::ZERO;
        for row in self.coeffs.iter().rev() {
            let mut inner = Fp::ZERO;
            for &c in row.iter().rev() {
                inner = inner * y + c;
            }
            acc = acc * x + inner;
        }
        acc
    }

    /// The row polynomial `f_i(y) = F(i, y)` handed to party `i`.
    pub fn row(&self, i: Fp) -> Poly {
        // Collapse the x-dimension at x = i.
        let mut out = vec![Fp::ZERO; self.deg + 1];
        let mut xpow = Fp::ONE;
        for row in &self.coeffs {
            for (j, &c) in row.iter().enumerate() {
                out[j] += c * xpow;
            }
            xpow *= i;
        }
        Poly::from_coeffs(out)
    }

    /// The column polynomial `g_j(x) = F(x, j)` handed to party `j`.
    pub fn col(&self, j: Fp) -> Poly {
        let mut out = vec![Fp::ZERO; self.deg + 1];
        for (i, row) in self.coeffs.iter().enumerate() {
            let mut ypow = Fp::ONE;
            for &c in row {
                out[i] += c * ypow;
                ypow *= j;
            }
        }
        Poly::from_coeffs(out)
    }

    /// Reconstructs the unique degree-(t,t) bivariate polynomial from a
    /// `(t+1) x (t+1)` grid of values `grid[a][b] = F(xs[a], ys[b])`.
    ///
    /// Returns `None` when coordinates repeat. A consistent grid of honest
    /// rows determines the bound value in the SVSS binding argument; this
    /// function is the constructive version of that fact (used by tests and
    /// the reconstruction fallback).
    pub fn from_grid(xs: &[Fp], ys: &[Fp], grid: &[Vec<Fp>]) -> Option<Self> {
        let t1 = xs.len();
        if t1 == 0 || ys.len() != t1 || grid.len() != t1 {
            return None;
        }
        if grid.iter().any(|r| r.len() != t1) {
            return None;
        }
        // Interpolate each grid row (fixed x = xs[a]) into a poly in y,
        // then interpolate coefficient-wise across x.
        let mut row_polys = Vec::with_capacity(t1);
        for (a, _) in xs.iter().enumerate() {
            let pts: Vec<(Fp, Fp)> = ys.iter().copied().zip(grid[a].iter().copied()).collect();
            row_polys.push(crate::interp::interpolate(&pts).ok()?);
        }
        let deg = t1 - 1;
        let mut coeffs = vec![vec![Fp::ZERO; t1]; t1];
        for j in 0..t1 {
            // coefficient of y^j as a function of x, known at the xs points
            let pts: Vec<(Fp, Fp)> = xs
                .iter()
                .copied()
                .zip(row_polys.iter().map(|p| p.coeff(j)))
                .collect();
            let cpoly = crate::interp::interpolate(&pts).ok()?;
            for (i, c) in coeffs.iter_mut().enumerate() {
                c[j] = cpoly.coeff(i);
            }
        }
        Some(BivarPoly { deg, coeffs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(13)
    }

    #[test]
    fn secret_is_constant_term() {
        let mut r = rng();
        let s = Fp::new(777);
        let f = BivarPoly::random_with_secret(s, 3, &mut r);
        assert_eq!(f.secret(), s);
        assert_eq!(f.eval(Fp::ZERO, Fp::ZERO), s);
    }

    #[test]
    fn row_col_projections_match_eval() {
        let mut r = rng();
        let f = BivarPoly::random(4, &mut r);
        for i in 0..8u64 {
            for j in 0..8u64 {
                let (x, y) = (Fp::new(i), Fp::new(j));
                assert_eq!(f.row(x).eval(y), f.eval(x, y));
                assert_eq!(f.col(y).eval(x), f.eval(x, y));
            }
        }
    }

    #[test]
    fn cross_consistency_of_rows_and_cols() {
        let mut r = rng();
        let f = BivarPoly::random(3, &mut r);
        // f_i(j) == g_j(i): the SVSS pairwise check identity.
        for i in 1..6u64 {
            for j in 1..6u64 {
                assert_eq!(
                    f.row(Fp::new(i)).eval(Fp::new(j)),
                    f.col(Fp::new(j)).eval(Fp::new(i))
                );
            }
        }
    }

    #[test]
    fn row_degree_bounded() {
        let mut r = rng();
        let f = BivarPoly::random(3, &mut r);
        assert!(f.row(Fp::new(2)).degree().unwrap_or(0) <= 3);
        assert!(f.col(Fp::new(2)).degree().unwrap_or(0) <= 3);
    }

    #[test]
    fn grid_reconstruction_roundtrip() {
        let mut r = rng();
        let t = 3usize;
        let f = BivarPoly::random(t, &mut r);
        let xs: Vec<Fp> = (1..=t as u64 + 1).map(Fp::new).collect();
        let ys: Vec<Fp> = (4..=4 + t as u64).map(Fp::new).collect();
        let grid: Vec<Vec<Fp>> = xs
            .iter()
            .map(|&x| ys.iter().map(|&y| f.eval(x, y)).collect())
            .collect();
        let g = BivarPoly::from_grid(&xs, &ys, &grid).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn grid_reconstruction_rejects_bad_shapes() {
        assert!(BivarPoly::from_grid(&[], &[], &[]).is_none());
        let xs = [Fp::new(1), Fp::new(2)];
        let ys = [Fp::new(1)];
        let grid = vec![vec![Fp::ZERO], vec![Fp::ZERO]];
        assert!(BivarPoly::from_grid(&xs, &ys, &grid).is_none());
    }

    #[test]
    fn degree_zero_bivar_is_constant() {
        let mut r = rng();
        let f = BivarPoly::random_with_secret(Fp::new(5), 0, &mut r);
        assert_eq!(f.eval(Fp::new(100), Fp::new(200)), Fp::new(5));
    }
}
