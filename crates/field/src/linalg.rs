//! Dense Gaussian elimination over [`Fp`], used by the Berlekamp–Welch
//! decoder.

use crate::fp::Fp;

/// Solves the linear system `A z = b` over `GF(2^61 - 1)` by Gaussian
/// elimination with partial "first nonzero" pivoting.
///
/// * Returns `Some(z)` with *a* solution when the system is consistent
///   (free variables are set to zero).
/// * Returns `None` when the system is inconsistent or shapes mismatch.
///
/// # Examples
///
/// ```
/// use aft_field::{solve_linear, Fp};
///
/// // x + y = 3, x - y = 1  =>  x = 2, y = 1
/// let a = vec![
///     vec![Fp::new(1), Fp::new(1)],
///     vec![Fp::new(1), -Fp::new(1)],
/// ];
/// let b = vec![Fp::new(3), Fp::new(1)];
/// let z = solve_linear(&a, &b).unwrap();
/// assert_eq!(z, vec![Fp::new(2), Fp::new(1)]);
/// ```
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearer indexed
pub fn solve_linear(a: &[Vec<Fp>], b: &[Fp]) -> Option<Vec<Fp>> {
    let rows = a.len();
    if rows != b.len() {
        return None;
    }
    let cols = a.first().map_or(0, |r| r.len());
    if a.iter().any(|r| r.len() != cols) {
        return None;
    }

    // Augmented matrix.
    let mut m: Vec<Vec<Fp>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_row = 0usize;
    let mut pivot_cols: Vec<usize> = Vec::new();
    for col in 0..cols {
        // Find a nonzero pivot in this column at or below pivot_row.
        let Some(src) = (pivot_row..rows).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(pivot_row, src);
        let inv = m[pivot_row][col].inv().expect("pivot nonzero");
        for c in col..=cols {
            m[pivot_row][c] *= inv;
        }
        for r in 0..rows {
            if r != pivot_row && !m[r][col].is_zero() {
                let factor = m[r][col];
                for c in col..=cols {
                    let sub = factor * m[pivot_row][c];
                    m[r][c] -= sub;
                }
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }

    // Inconsistency: a zero row with nonzero rhs.
    for r in pivot_row..rows {
        if m[r][..cols].iter().all(|c| c.is_zero()) && !m[r][cols].is_zero() {
            return None;
        }
    }

    let mut z = vec![Fp::ZERO; cols];
    for (rank_idx, &col) in pivot_cols.iter().enumerate() {
        z[col] = m[rank_idx][cols];
    }
    Some(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    fn mat_vec(a: &[Vec<Fp>], z: &[Fp]) -> Vec<Fp> {
        a.iter()
            .map(|row| row.iter().zip(z).map(|(&c, &x)| c * x).sum())
            .collect()
    }

    #[test]
    fn solves_random_square_systems() {
        let mut r = rng();
        for n in 1..8usize {
            for _ in 0..20 {
                let a: Vec<Vec<Fp>> = (0..n)
                    .map(|_| (0..n).map(|_| Fp::random(&mut r)).collect())
                    .collect();
                let x_true: Vec<Fp> = (0..n).map(|_| Fp::random(&mut r)).collect();
                let b = mat_vec(&a, &x_true);
                if let Some(z) = solve_linear(&a, &b) {
                    assert_eq!(mat_vec(&a, &z), b);
                }
            }
        }
    }

    #[test]
    fn detects_inconsistent_system() {
        // x + y = 1; x + y = 2
        let a = vec![vec![Fp::new(1), Fp::new(1)], vec![Fp::new(1), Fp::new(1)]];
        let b = vec![Fp::new(1), Fp::new(2)];
        assert!(solve_linear(&a, &b).is_none());
    }

    #[test]
    fn underdetermined_returns_some_solution() {
        // x + y = 5 (one equation, two unknowns)
        let a = vec![vec![Fp::new(1), Fp::new(1)]];
        let b = vec![Fp::new(5)];
        let z = solve_linear(&a, &b).unwrap();
        assert_eq!(z[0] + z[1], Fp::new(5));
    }

    #[test]
    fn overdetermined_consistent_system() {
        // y = 2x + 1 sampled at 4 points, unknowns (a0, a1).
        let pts = [1u64, 2, 3, 4];
        let a: Vec<Vec<Fp>> = pts.iter().map(|&x| vec![Fp::ONE, Fp::new(x)]).collect();
        let b: Vec<Fp> = pts.iter().map(|&x| Fp::new(2 * x + 1)).collect();
        let z = solve_linear(&a, &b).unwrap();
        assert_eq!(z, vec![Fp::new(1), Fp::new(2)]);
    }

    #[test]
    fn shape_mismatch_is_none() {
        let a = vec![vec![Fp::ONE], vec![Fp::ONE, Fp::ONE]];
        assert!(solve_linear(&a, &[Fp::ONE, Fp::ONE]).is_none());
        let a2 = vec![vec![Fp::ONE]];
        assert!(solve_linear(&a2, &[Fp::ONE, Fp::ONE]).is_none());
    }

    #[test]
    fn zero_system_solves_to_zero() {
        let a = vec![vec![Fp::ZERO, Fp::ZERO]];
        let b = vec![Fp::ZERO];
        assert_eq!(solve_linear(&a, &b).unwrap(), vec![Fp::ZERO, Fp::ZERO]);
        let b_bad = vec![Fp::ONE];
        assert!(solve_linear(&a, &b_bad).is_none());
    }

    #[test]
    fn random_rank_deficient_consistent() {
        let mut r = rng();
        for _ in 0..20 {
            // Build rank-1 3x3 system from outer product; rhs in column space.
            let u: Vec<Fp> = (0..3).map(|_| Fp::random(&mut r)).collect();
            let v: Vec<Fp> = (0..3).map(|_| Fp::random(&mut r)).collect();
            let a: Vec<Vec<Fp>> = u
                .iter()
                .map(|&ui| v.iter().map(|&vj| ui * vj).collect())
                .collect();
            let x: Vec<Fp> = (0..3).map(|_| Fp::random(&mut r)).collect();
            let b = mat_vec(&a, &x);
            let z = solve_linear(&a, &b).expect("consistent by construction");
            assert_eq!(mat_vec(&a, &z), b);
        }
    }
}
