//! Property-based tests of the algebraic substrate.

use aft_field::{
    interpolate, interpolate_at, interpolate_at_zero, oec_decode, rs_decode, solve_linear,
    BivarPoly, Fp, OnlineDecoder, Poly, MODULUS,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn fp() -> impl Strategy<Value = Fp> {
    (0..MODULUS).prop_map(Fp::new)
}

fn poly(max_deg: usize) -> impl Strategy<Value = Poly> {
    proptest::collection::vec(fp(), 1..=max_deg + 1).prop_map(Poly::from_coeffs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn field_addition_group(a in fp(), b in fp(), c in fp()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Fp::ZERO, a);
        prop_assert_eq!(a + (-a), Fp::ZERO);
    }

    #[test]
    fn field_multiplication_group(a in fp(), b in fp(), c in fp()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * Fp::ONE, a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inv().unwrap(), Fp::ONE);
        }
    }

    #[test]
    fn field_distributivity(a in fp(), b in fp(), c in fp()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn subtraction_and_division_invert(a in fp(), b in fp()) {
        prop_assert_eq!(a + b - b, a);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
    }

    #[test]
    fn poly_arithmetic_agrees_with_evaluation(p in poly(6), q in poly(6), x in fp()) {
        prop_assert_eq!((&p + &q).eval(x), p.eval(x) + q.eval(x));
        prop_assert_eq!((&p - &q).eval(x), p.eval(x) - q.eval(x));
        prop_assert_eq!((&p * &q).eval(x), p.eval(x) * q.eval(x));
    }

    #[test]
    fn poly_division_roundtrip(p in poly(8), q in poly(4)) {
        if !q.is_zero() {
            let (quot, rem) = p.div_rem(&q).unwrap();
            prop_assert_eq!(&(&quot * &q) + &rem, p);
        }
    }

    #[test]
    fn interpolation_roundtrip(p in poly(7)) {
        let deg = p.degree().unwrap_or(0);
        let pts: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        prop_assert_eq!(interpolate(&pts).unwrap(), p);
    }

    #[test]
    fn interpolate_at_matches_full(p in poly(5), x in fp()) {
        let deg = p.degree().unwrap_or(0);
        let pts: Vec<(Fp, Fp)> = (1..=deg as u64 + 1)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        prop_assert_eq!(interpolate_at(&pts, x).unwrap(), p.eval(x));
        prop_assert_eq!(interpolate_at_zero(&pts).unwrap(), p.eval(Fp::ZERO));
    }

    #[test]
    fn rs_corrects_any_error_pattern(
        seed in any::<u64>(),
        t in 1usize..4,
        errors in proptest::collection::hash_set(0usize..13, 0..4),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Poly::random(t, &mut rng);
        let e = errors.iter().filter(|&&i| i < 3 * t + 1).count().min(t);
        let n = t + 2 * e + 1 + (3 * t - 2 * e); // use all 3t+1 points
        let mut pts: Vec<(Fp, Fp)> = (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        let mut corrupted = 0;
        for &i in &errors {
            if i < pts.len() && corrupted < t {
                pts[i].1 += Fp::new(7 + i as u64);
                corrupted += 1;
            }
        }
        // With at most t corruptions among 3t+1 points, decode must be exact.
        prop_assert_eq!(rs_decode(&pts, t, t).unwrap(), p.clone());
        prop_assert_eq!(oec_decode(&pts, t).unwrap(), p);
    }

    #[test]
    fn online_decoder_sound_at_every_prefix(
        seed in any::<u64>(),
        t in 1usize..4,
        order_seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Poly::random(t, &mut rng);
        let n = 3 * t + 1;
        let mut pts: Vec<(Fp, Fp)> = (1..=n as u64)
            .map(|i| (Fp::new(i), p.eval(Fp::new(i))))
            .collect();
        // Corrupt exactly t points.
        for bad in pts.iter_mut().take(t) {
            bad.1 += Fp::ONE;
        }
        let mut order_rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        pts.shuffle(&mut order_rng);
        let mut dec = OnlineDecoder::new(t, t);
        for &(x, y) in &pts {
            if let Some(q) = dec.add_point(x, y).unwrap() {
                // ANY produced decode must be the honest polynomial.
                prop_assert_eq!(q, &p);
            }
        }
        prop_assert_eq!(dec.decoded(), Some(&p));
    }

    #[test]
    fn bivar_row_col_cross_consistency(seed in any::<u64>(), t in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = BivarPoly::random(t, &mut rng);
        for i in 1..=(t as u64 + 2) {
            for j in 1..=(t as u64 + 2) {
                let (xi, xj) = (Fp::new(i), Fp::new(j));
                prop_assert_eq!(f.row(xi).eval(xj), f.col(xj).eval(xi));
            }
        }
    }

    #[test]
    fn linear_solver_solutions_verify(seed in any::<u64>(), n in 1usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<Vec<Fp>> = (0..n)
            .map(|_| (0..n).map(|_| Fp::random(&mut rng)).collect())
            .collect();
        let x: Vec<Fp> = (0..n).map(|_| Fp::random(&mut rng)).collect();
        let b: Vec<Fp> = a
            .iter()
            .map(|row| row.iter().zip(&x).map(|(&c, &v)| c * v).sum())
            .collect();
        let z = solve_linear(&a, &b).expect("consistent by construction");
        let bz: Vec<Fp> = a
            .iter()
            .map(|row| row.iter().zip(&z).map(|(&c, &v)| c * v).sum())
            .collect();
        prop_assert_eq!(bz, b);
    }

    #[test]
    fn fp_byte_encoding_round_trips_and_is_canonical(a in fp(), junk in any::<u64>()) {
        prop_assert_eq!(Fp::from_le_bytes(a.to_le_bytes()), Some(a));
        // Non-canonical representatives are rejected, never aliased.
        let decoded = Fp::from_le_bytes(junk.to_le_bytes());
        match decoded {
            Some(v) => prop_assert_eq!(v.value(), junk),
            None => prop_assert!(junk >= aft_field::MODULUS),
        }
    }

    #[test]
    fn poly_encoding_round_trips_exactly(p in poly(9), trailing in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut buf = Vec::new();
        p.encode_to(&mut buf);
        let len = buf.len();
        // Round trip, and consumed length is exact even with trailing bytes.
        buf.extend_from_slice(&trailing);
        let (back, used) = Poly::decode_from(&buf).expect("canonical encoding decodes");
        prop_assert_eq!(back, p);
        prop_assert_eq!(used, len);
    }

    #[test]
    fn poly_decode_is_total_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        // Never panics; when it decodes, re-encoding reproduces the
        // consumed prefix (canonical form is unique).
        if let Some((p, used)) = Poly::decode_from(&bytes) {
            let mut again = Vec::new();
            p.encode_to(&mut again);
            prop_assert_eq!(&bytes[..used], &again[..]);
        }
    }
}
