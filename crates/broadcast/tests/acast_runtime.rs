//! A-Cast driven through the `Runtime` trait on every execution backend:
//! the broadcast guarantees are backend-independent.

use aft_broadcast::Acast;
use aft_sim::{
    runtime_by_name, Instance, NetConfig, PartyId, Runtime, RuntimeExt, SessionId, SessionTag,
    StopReason,
};

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("acast", 0))
}

#[test]
fn acast_delivers_on_every_backend() {
    for backend in ["sim", "threaded"] {
        let mut rt: Box<dyn Runtime> = runtime_by_name(backend, NetConfig::new(4, 1, 43)).unwrap();
        for p in 0..4 {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(Acast::sender(PartyId(0), String::from("payload")))
            } else {
                Box::new(Acast::<String>::receiver(PartyId(0)))
            };
            rt.spawn(PartyId(p), sid(), inst);
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend}");
        for p in 0..4 {
            assert_eq!(
                rt.output_as::<String>(PartyId(p), &sid())
                    .map(String::as_str),
                Some("payload"),
                "{backend}: party {p}"
            );
        }
    }
}

#[test]
fn acast_crashed_sender_no_delivery_but_quiescent_on_every_backend() {
    for backend in ["sim", "threaded"] {
        let mut rt: Box<dyn Runtime> = runtime_by_name(backend, NetConfig::new(4, 1, 47)).unwrap();
        // Crash before spawning: the portable way to guarantee a party
        // never acts (the simulator starts instances eagerly on spawn).
        rt.crash(PartyId(0));
        for p in 0..4 {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(Acast::sender(PartyId(0), 5u64))
            } else {
                Box::new(Acast::<u64>::receiver(PartyId(0)))
            };
            rt.spawn(PartyId(p), sid(), inst);
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent, "{backend}");
        for p in 1..4 {
            assert!(
                rt.output(PartyId(p), &sid()).is_none(),
                "{backend}: no delivery without a sender"
            );
        }
    }
}
