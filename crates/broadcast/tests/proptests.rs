//! Property-based tests of A-Cast: validity, agreement and totality under
//! randomized system sizes, schedulers, senders and fault placements.

use aft_broadcast::{Acast, EquivocatingSender};
use aft_sim::{
    scheduler_by_name, Instance, NetConfig, PartyId, SessionId, SessionTag, SilentInstance,
    SimNetwork, StopReason,
};
use proptest::prelude::*;

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("acast", 0))
}

fn sched_name(i: usize) -> &'static str {
    ["fifo", "random", "lifo", "window4", "window16"][i % 5]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Honest sender: every honest party delivers the sender's value, for
    /// any scheduler, any sender position, any value, and up to t crashed
    /// receivers.
    #[test]
    fn validity_under_randomized_conditions(
        seed in any::<u64>(),
        sys in 0usize..3,
        sender in 0usize..10,
        value in any::<u64>(),
        sched in 0usize..5,
        crash_offset in 0usize..10,
    ) {
        let (n, t) = [(4usize, 1usize), (7, 2), (10, 3)][sys];
        let sender = sender % n;
        // Crash t receivers (never the sender).
        let crashed: Vec<usize> = (0..n)
            .filter(|&p| p != sender)
            .cycle()
            .skip(crash_offset % n)
            .take(t)
            .collect();
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name(sched_name(sched)).unwrap(),
        );
        for p in 0..n {
            let inst: Box<dyn Instance> = if crashed.contains(&p) {
                Box::new(SilentInstance)
            } else if p == sender {
                Box::new(Acast::sender(PartyId(sender), value))
            } else {
                Box::new(Acast::<u64>::receiver(PartyId(sender)))
            };
            net.spawn(PartyId(p), sid(), inst);
        }
        let report = net.run(20_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..n {
            if !crashed.contains(&p) {
                prop_assert_eq!(
                    net.output_as::<u64>(PartyId(p), &sid()),
                    Some(&value),
                    "party {} must deliver", p
                );
            }
        }
    }

    /// Byzantine equivocating sender: agreement and totality always hold
    /// among honest parties (they may deliver nothing, but never split).
    #[test]
    fn agreement_and_totality_under_equivocation(
        seed in any::<u64>(),
        sys in 0usize..2,
        sched in 0usize..5,
        a in any::<u8>(),
        b in any::<u8>(),
    ) {
        let (n, t) = [(4usize, 1usize), (7, 2)][sys];
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name(sched_name(sched)).unwrap(),
        );
        for p in 0..n {
            let inst: Box<dyn Instance> = if p == 0 {
                Box::new(EquivocatingSender::new(PartyId(0), a, b))
            } else {
                Box::new(Acast::<u8>::receiver(PartyId(0)))
            };
            net.spawn(PartyId(p), sid(), inst);
        }
        let report = net.run(20_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let outputs: Vec<Option<u8>> = (1..n)
            .map(|p| net.output_as::<u8>(PartyId(p), &sid()).copied())
            .collect();
        let delivered: Vec<u8> = outputs.iter().flatten().copied().collect();
        // Agreement.
        prop_assert!(delivered.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
        // Totality: all or nothing.
        prop_assert!(
            delivered.is_empty() || delivered.len() == n - 1,
            "partial delivery: {outputs:?}"
        );
        // Delivered value is one the sender actually proposed.
        if let Some(&v) = delivered.first() {
            prop_assert!(v == a || v == b);
        }
    }
}

/// Codec laws for the A-Cast wire messages: round trip per carried value
/// type, kind separation between instantiations, and totality on junk.
mod codec_props {
    use aft_broadcast::AcastMsg;
    use aft_sim::wire::{decode_frame_as, encode_frame};
    use aft_sim::WireMessage;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn msg<V: Clone>(tag: u8, v: V) -> AcastMsg<V> {
        match tag % 3 {
            0 => AcastMsg::Send(v),
            1 => AcastMsg::Echo(v),
            _ => AcastMsg::Ready(v),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn acast_frames_round_trip(tag in any::<u8>(), v in any::<u64>(), s_bytes in vec(any::<u8>(), 0..20)) {
            let m = msg(tag, v);
            let mut frame = Vec::new();
            encode_frame(&m, &mut frame);
            prop_assert_eq!(decode_frame_as::<AcastMsg<u64>>(&frame), Some(m));

            let s = String::from_utf8_lossy(&s_bytes).into_owned();
            let m = msg(tag, s);
            let mut frame = Vec::new();
            encode_frame(&m, &mut frame);
            prop_assert_eq!(decode_frame_as::<AcastMsg<String>>(&frame.clone()), Some(m));
            // A frame of acast<String> never decodes as acast<u64>: the
            // composed kinds differ per carried type.
            prop_assert_eq!(decode_frame_as::<AcastMsg<u64>>(&frame), None);
        }

        #[test]
        fn acast_decoder_total_on_junk(bytes in vec(any::<u8>(), 0..48)) {
            let _ = decode_frame_as::<AcastMsg<u64>>(&bytes);
            let _ = decode_frame_as::<AcastMsg<String>>(&bytes);
            let _ = AcastMsg::<u64>::decode_body(&bytes);
        }

        #[test]
        fn acast_truncation_is_rejected(tag in any::<u8>(), v in any::<u64>(), cut in 0usize..14) {
            let m = msg(tag, v);
            let mut frame = Vec::new();
            encode_frame(&m, &mut frame);
            let cut = cut.min(frame.len() - 1);
            prop_assert_eq!(decode_frame_as::<AcastMsg<u64>>(&frame[..cut]), None);
        }
    }
}
