//! # aft-broadcast
//!
//! Bracha's asynchronous reliable broadcast ("A-Cast"), the `Broadcast`
//! primitive of Definition 4.4 in Abraham–Dolev–Stern (PODC 2020), after
//! Bracha (Inf. & Comp. 1987).
//!
//! A designated sender broadcasts a value `v`; with `n ≥ 3t + 1` and at most
//! `t` Byzantine parties the protocol guarantees:
//!
//! * **Termination** — if the sender is nonfaulty all nonfaulty parties
//!   output; if *any* nonfaulty party outputs, every nonfaulty participant
//!   eventually outputs.
//! * **Validity** — if the sender is nonfaulty, every output equals `v`.
//! * **Correctness** (agreement) — no two nonfaulty parties output
//!   different values, even under an equivocating Byzantine sender.
//!
//! The message flow is the classic three-phase amplification:
//! `Send(v)` → `Echo(v)` on first `Send` → `Ready(v)` on `2t+1` echoes or
//! `t+1` readies → deliver on `2t+1` readies.
//!
//! # Example
//!
//! ```
//! use aft_broadcast::Acast;
//! use aft_sim::{NetConfig, PartyId, RandomScheduler, SessionId, SessionTag, SimNetwork};
//!
//! let mut net = SimNetwork::new(NetConfig::new(4, 1, 42), Box::new(RandomScheduler));
//! let sid = SessionId::root().child(SessionTag::new("acast", 0));
//! for p in 0..4 {
//!     let inst = if p == 0 {
//!         Acast::sender(PartyId(0), "hello".to_string())
//!     } else {
//!         Acast::receiver(PartyId(0))
//!     };
//!     net.spawn(PartyId(p), sid.clone(), Box::new(inst));
//! }
//! net.run(100_000);
//! for p in 0..4 {
//!     assert_eq!(net.output_as::<String>(PartyId(p), &sid).unwrap(), "hello");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aft_sim::wire::{acast_kind, CodecRegistry, WireReader, WireWriter};
use aft_sim::{Context, Instance, PartyId, Payload, WireMessage};
use std::fmt::Debug;
use std::hash::Hash;

/// Bound on the value types A-Cast can carry: ordinary value semantics
/// plus a wire codec, so a broadcast of `V` runs on byte-level backends
/// too.
pub trait Value: Clone + Eq + Hash + Debug + WireMessage {}
impl<T: Clone + Eq + Hash + Debug + WireMessage> Value for T {}

/// Wire messages of the A-Cast protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcastMsg<V> {
    /// The sender's initial value.
    Send(V),
    /// Echo of the first received `Send`.
    Echo(V),
    /// Commitment amplification.
    Ready(V),
}

impl<V: Value> WireMessage for AcastMsg<V> {
    /// The carried value's kind with the A-Cast bit set: every `V` gets
    /// its own frame kind without a registry of instantiations (plain
    /// kinds stay below `0x8000`, which this checks at compile time).
    const KIND: u16 = {
        assert!(V::KIND < 0x8000, "A-Cast cannot wrap a wrapped kind");
        acast_kind(V::KIND)
    };
    const KIND_NAME: &'static str = "acast";

    /// One tag byte on top of the carried value's bound, when it has one
    /// — so wrapped small votes keep their static inline/probe-free
    /// classification.
    const MAX_BODY_HINT: Option<usize> = match V::MAX_BODY_HINT {
        Some(max) => Some(max + 1),
        None => None,
    };

    fn encode_body(&self, out: &mut Vec<u8>) {
        let (tag, v) = match self {
            AcastMsg::Send(v) => (0u8, v),
            AcastMsg::Echo(v) => (1, v),
            AcastMsg::Ready(v) => (2, v),
        };
        WireWriter::u8(out, tag);
        v.encode_body(out);
    }

    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let tag = r.u8()?;
        let v = V::decode_body(r.rest())?;
        match tag {
            0 => Some(AcastMsg::Send(v)),
            1 => Some(AcastMsg::Echo(v)),
            2 => Some(AcastMsg::Ready(v)),
            _ => None,
        }
    }
}

/// Registers the A-Cast frame kinds for the value types the workspace
/// broadcasts out of the box (protocol crates register their own vote
/// types on top — e.g. `aft-ba` adds `AcastMsg<V1..V3>`).
pub fn register_codecs(registry: &mut CodecRegistry) {
    registry.register::<AcastMsg<u8>>();
    registry.register::<AcastMsg<u32>>();
    registry.register::<AcastMsg<u64>>();
    registry.register::<AcastMsg<String>>();
    registry.register::<AcastMsg<Vec<usize>>>();
}

/// Which parties voted for one value: a bitset over party ids plus a
/// popcount, lazily sized from the highest id seen.
#[derive(Default)]
struct PartySet {
    words: Vec<u64>,
    count: u32,
}

impl PartySet {
    /// Inserts `p`; returns the new count, or `None` if already present.
    fn insert(&mut self, p: PartyId) -> Option<u32> {
        let (word, bit) = (p.0 / 64, p.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return None;
        }
        self.words[word] |= mask;
        self.count += 1;
        Some(self.count)
    }
}

/// Per-value vote tally. Honest executions see one distinct value (an
/// equivocating sender at most a handful), so a linear scan over the
/// entries beats hashing every message — and the [`PartySet`] bitsets
/// never rehash, where a per-value `HashSet<PartyId>` grows (and
/// reallocates) `O(log n)` times on its way to `n` voters. A-Cast
/// tallies are the delivery hot path of every protocol built on
/// broadcast, so this is where the per-message constant matters.
struct Tally<V> {
    entries: Vec<(V, PartySet)>,
}

impl<V: Value> Tally<V> {
    fn new() -> Self {
        Tally {
            entries: Vec::new(),
        }
    }

    /// Records `from`'s vote for `v`; returns the value's new vote count,
    /// or `None` for a duplicate (vote changes count per value — A-Cast
    /// quorums are per-value, equivocators only split their weight).
    fn record(&mut self, v: &V, from: PartyId) -> Option<u32> {
        let entry = match self.entries.iter_mut().find(|(ev, _)| ev == v) {
            Some((_, set)) => set,
            None => {
                self.entries.push((v.clone(), PartySet::default()));
                &mut self.entries.last_mut().expect("just pushed").1
            }
        };
        entry.insert(from)
    }
}

/// One party's A-Cast instance (honest behaviour).
///
/// Construct with [`Acast::sender`] for the designated sender or
/// [`Acast::receiver`] for everyone else, then spawn on a
/// [`aft_sim::SimNetwork`] under a common session id. The instance outputs
/// the delivered value of type `V`.
pub struct Acast<V> {
    sender: PartyId,
    input: Option<V>,
    echoed: bool,
    readied: bool,
    delivered: bool,
    echoes: Tally<V>,
    readies: Tally<V>,
}

impl<V: Value> Acast<V> {
    /// Creates the designated sender's instance, broadcasting `input`.
    pub fn sender(sender: PartyId, input: V) -> Self {
        Acast {
            sender,
            input: Some(input),
            echoed: false,
            readied: false,
            delivered: false,
            echoes: Tally::new(),
            readies: Tally::new(),
        }
    }

    /// Creates a non-sender participant expecting `sender`'s broadcast.
    pub fn receiver(sender: PartyId) -> Self {
        Acast {
            sender,
            input: None,
            echoed: false,
            readied: false,
            delivered: false,
            echoes: Tally::new(),
            readies: Tally::new(),
        }
    }

    fn maybe_ready(&mut self, v: &V, ctx: &mut Context<'_>) {
        if !self.readied {
            self.readied = true;
            ctx.send_all(AcastMsg::Ready(v.clone()));
        }
    }
}

impl<V: Value> Instance for Acast<V> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if ctx.me() == self.sender {
            if let Some(v) = self.input.clone() {
                ctx.send_all(AcastMsg::Send(v));
            }
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        let Some(msg) = payload.view::<AcastMsg<V>>() else {
            return; // type-confused or byte-garbled (Byzantine): ignore
        };
        let (n, t) = (ctx.n(), ctx.t());
        match &*msg {
            AcastMsg::Send(v) => {
                // Only the designated sender's first Send counts.
                if from == self.sender && !self.echoed {
                    self.echoed = true;
                    ctx.send_all(AcastMsg::Echo(v.clone()));
                }
            }
            AcastMsg::Echo(v) => {
                if let Some(count) = self.echoes.record(v, from) {
                    if count as usize >= n - t {
                        let v = v.clone();
                        self.maybe_ready(&v, ctx);
                    }
                }
            }
            AcastMsg::Ready(v) => {
                if let Some(count) = self.readies.record(v, from) {
                    let count = count as usize;
                    let v = v.clone();
                    if count > t {
                        self.maybe_ready(&v, ctx);
                    }
                    if count >= n - t && !self.delivered {
                        self.delivered = true;
                        ctx.output(v);
                    }
                }
            }
        }
    }
}

/// A Byzantine sender that *equivocates*: it sends `value_a` to parties
/// with even ids and `value_b` to odd ids, then plays the rest of the
/// protocol honestly for whichever value it echoes itself.
///
/// Against `n ≥ 3t + 1` honest amplification this cannot cause two honest
/// parties to deliver different values — the agreement test uses it.
pub struct EquivocatingSender<V> {
    value_a: V,
    value_b: V,
    inner: Acast<V>,
}

impl<V: Value> EquivocatingSender<V> {
    /// Creates the equivocating sender (must be spawned at the sender's
    /// party).
    pub fn new(me: PartyId, value_a: V, value_b: V) -> Self {
        EquivocatingSender {
            value_a,
            value_b,
            inner: Acast::receiver(me),
        }
    }
}

impl<V: Value> Instance for EquivocatingSender<V> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for p in ctx.parties().collect::<Vec<_>>() {
            let v = if p.0 % 2 == 0 {
                self.value_a.clone()
            } else {
                self.value_b.clone()
            };
            ctx.send(p, AcastMsg::Send(v));
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        // Participate "honestly" downstream of the split Send.
        self.inner.on_message(from, payload, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_sim::{
        scheduler_by_name, NetConfig, SessionId, SessionTag, SilentInstance, SimNetwork, StopReason,
    };

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("acast", 0))
    }

    fn run_acast(
        n: usize,
        t: usize,
        seed: u64,
        sched: &str,
        setup: impl Fn(usize) -> Box<dyn Instance>,
    ) -> SimNetwork {
        let mut net = SimNetwork::new(
            NetConfig::new(n, t, seed),
            scheduler_by_name(sched).unwrap(),
        );
        for p in 0..n {
            net.spawn(PartyId(p), sid(), setup(p));
        }
        net.run(2_000_000);
        net
    }

    #[test]
    fn honest_sender_all_deliver_value() {
        for n in [4usize, 7, 10] {
            let t = (n - 1) / 3;
            for sched in ["fifo", "random", "lifo"] {
                for seed in 0..5 {
                    let net = run_acast(n, t, seed, sched, |p| {
                        if p == 0 {
                            Box::new(Acast::sender(PartyId(0), 123u64))
                        } else {
                            Box::new(Acast::<u64>::receiver(PartyId(0)))
                        }
                    });
                    for p in 0..n {
                        assert_eq!(
                            net.output_as::<u64>(PartyId(p), &sid()),
                            Some(&123),
                            "n={n} sched={sched} seed={seed} p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn silent_sender_no_delivery_but_quiescent() {
        let net = run_acast(4, 1, 0, "random", |p| {
            if p == 0 {
                Box::new(SilentInstance)
            } else {
                Box::new(Acast::<u8>::receiver(PartyId(0)))
            }
        });
        for p in 0..4 {
            assert!(net.output(PartyId(p), &sid()).is_none());
        }
    }

    #[test]
    fn t_silent_receivers_still_deliver() {
        for n in [4usize, 7] {
            let t = (n - 1) / 3;
            let net = run_acast(n, t, 3, "random", |p| {
                if p == 0 {
                    Box::new(Acast::sender(PartyId(0), 9u32))
                } else if p <= t {
                    Box::new(SilentInstance)
                } else {
                    Box::new(Acast::<u32>::receiver(PartyId(0)))
                }
            });
            for p in t + 1..n {
                assert_eq!(net.output_as::<u32>(PartyId(p), &sid()), Some(&9));
            }
        }
    }

    #[test]
    fn equivocating_sender_never_splits_agreement() {
        for n in [4usize, 7, 10] {
            let t = (n - 1) / 3;
            for seed in 0..20 {
                let net = run_acast(n, t, seed, "random", |p| {
                    if p == 0 {
                        Box::new(EquivocatingSender::new(PartyId(0), 1u8, 2u8))
                    } else {
                        Box::new(Acast::<u8>::receiver(PartyId(0)))
                    }
                });
                let outputs: Vec<&u8> = (1..n)
                    .filter_map(|p| net.output_as::<u8>(PartyId(p), &sid()))
                    .collect();
                // All honest outputs (if any) must be identical.
                if let Some(first) = outputs.first() {
                    assert!(
                        outputs.iter().all(|v| v == first),
                        "n={n} seed={seed}: split outputs {outputs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn totality_if_one_delivers_all_deliver() {
        // Run under every scheduler and check the all-or-nothing property
        // among honest parties (with an equivocating sender it may be
        // nothing; with honest sender it must be all).
        for seed in 0..20 {
            let net = run_acast(7, 2, seed, "random", |p| {
                if p == 0 {
                    Box::new(EquivocatingSender::new(PartyId(0), 10u8, 20u8))
                } else {
                    Box::new(Acast::<u8>::receiver(PartyId(0)))
                }
            });
            let delivered: Vec<bool> = (1..7)
                .map(|p| net.output(PartyId(p), &sid()).is_some())
                .collect();
            let any = delivered.iter().any(|&b| b);
            let all = delivered.iter().all(|&b| b);
            assert!(
                !any || all,
                "seed={seed}: partial delivery among honest parties {delivered:?}"
            );
        }
    }

    #[test]
    fn crash_mid_broadcast_preserves_agreement() {
        for seed in 0..10 {
            let mut net = SimNetwork::new(
                NetConfig::new(7, 2, seed),
                scheduler_by_name("random").unwrap(),
            );
            for p in 0..7 {
                let inst: Box<dyn Instance> = if p == 0 {
                    Box::new(Acast::sender(PartyId(0), 5u8))
                } else {
                    Box::new(Acast::<u8>::receiver(PartyId(0)))
                };
                net.spawn(PartyId(p), sid(), inst);
            }
            net.crash_at(PartyId(1), 10);
            net.crash_at(PartyId(2), 25);
            let report = net.run(2_000_000);
            assert_eq!(report.stop, StopReason::Quiescent);
            for p in 3..7 {
                assert_eq!(
                    net.output_as::<u8>(PartyId(p), &sid()),
                    Some(&5),
                    "seed={seed}"
                );
            }
        }
    }

    #[test]
    fn duplicate_and_garbage_messages_ignored() {
        // A Byzantine receiver spams Echo/Ready duplicates for a bogus value;
        // honest parties still deliver the sender's value.
        struct Spammer;
        impl Instance for Spammer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..3 {
                    ctx.send_all(AcastMsg::Echo(77u8));
                    ctx.send_all(AcastMsg::Ready(77u8));
                }
                ctx.send_all("not even an AcastMsg".to_string());
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                ctx.send_all(AcastMsg::Ready(77u8));
            }
        }
        let net = run_acast(4, 1, 1, "random", |p| {
            if p == 0 {
                Box::new(Acast::sender(PartyId(0), 5u8))
            } else if p == 3 {
                Box::new(Spammer)
            } else {
                Box::new(Acast::<u8>::receiver(PartyId(0)))
            }
        });
        for p in 1..3 {
            assert_eq!(net.output_as::<u8>(PartyId(p), &sid()), Some(&5));
        }
    }

    #[test]
    fn non_sender_send_is_ignored() {
        // A Byzantine non-sender issuing Send must not trigger echoes.
        struct FakeSender;
        impl Instance for FakeSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_all(AcastMsg::Send(66u8));
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        }
        // Real sender silent; fake sender shouts. Nobody may deliver 66.
        let net = run_acast(4, 1, 2, "random", |p| match p {
            0 => Box::new(SilentInstance),
            1 => Box::new(FakeSender),
            _ => Box::new(Acast::<u8>::receiver(PartyId(0))),
        });
        for p in 2..4 {
            assert!(net.output(PartyId(p), &sid()).is_none());
        }
    }

    #[test]
    fn multiple_parallel_acasts_do_not_interfere() {
        // Every party broadcasts its own id in its own session.
        let n = 4;
        let mut net = SimNetwork::new(
            NetConfig::new(n, 1, 9),
            scheduler_by_name("random").unwrap(),
        );
        let mk_sid = |s: usize| SessionId::root().child(SessionTag::new("acast", s as u64));
        for s in 0..n {
            for p in 0..n {
                let inst: Box<dyn Instance> = if p == s {
                    Box::new(Acast::sender(PartyId(s), s as u64))
                } else {
                    Box::new(Acast::<u64>::receiver(PartyId(s)))
                };
                net.spawn(PartyId(p), mk_sid(s), inst);
            }
        }
        net.run(2_000_000);
        for s in 0..n {
            for p in 0..n {
                assert_eq!(
                    net.output_as::<u64>(PartyId(p), &mk_sid(s)),
                    Some(&(s as u64)),
                    "session {s} party {p}"
                );
            }
        }
    }

    #[test]
    fn string_values_work() {
        let net = run_acast(4, 1, 4, "fifo", |p| {
            if p == 0 {
                Box::new(Acast::sender(PartyId(0), "payload".to_string()))
            } else {
                Box::new(Acast::<String>::receiver(PartyId(0)))
            }
        });
        assert_eq!(
            net.output_as::<String>(PartyId(2), &sid())
                .map(String::as_str),
            Some("payload")
        );
    }
}
