//! Property-based tests of the simulator: fairness, conservation,
//! determinism, and session routing under randomized configurations.

use aft_sim::{
    Context, Instance, NetConfig, PartyId, Payload, RandomScheduler, Scheduler, SessionId,
    SessionTag, SimNetwork, StopReason, WindowScheduler,
};
use proptest::prelude::*;

/// Ping-pong instance: replies `v - 1` to any positive v received.
struct PingPong {
    start: Option<(PartyId, u32)>,
    received: u64,
}

impl Instance for PingPong {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some((to, v)) = self.start {
            ctx.send(to, v);
        }
    }
    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        self.received += 1;
        if let Some(v) = payload.to_msg::<u32>() {
            if v > 0 {
                ctx.send(from, v - 1);
            } else {
                ctx.output(self.received);
            }
        }
    }
}

fn sid() -> SessionId {
    SessionId::root().child(SessionTag::new("pp", 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every run reaches quiescence and conserves messages:
    /// sent = delivered + dropped + pending.
    #[test]
    fn message_conservation(seed in any::<u64>(), n in 4usize..10, volleys in 1u32..30) {
        let t = (n - 1) / 3;
        let mut net = SimNetwork::new(NetConfig::new(n, t, seed), Box::new(RandomScheduler));
        for p in 0..n {
            let start = if p == 0 {
                Some((PartyId(n - 1), volleys))
            } else {
                None
            };
            net.spawn(PartyId(p), sid(), Box::new(PingPong { start, received: 0 }));
        }
        let report = net.run(10_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        let m = &report.metrics;
        prop_assert_eq!(
            m.sent,
            m.delivered + m.dropped_shunned + m.dropped_crashed + net.pending_len() as u64
        );
        // The volley bounces exactly `volleys + 1` times.
        prop_assert_eq!(m.sent, volleys as u64 + 1);
    }

    /// Identical seeds yield identical traces; different seeds (almost
    /// always) different ones, under every scheduler window.
    #[test]
    fn determinism(seed in any::<u64>(), window in 1usize..8) {
        let run = |s: u64| {
            let mut net = SimNetwork::new(
                NetConfig::new(4, 1, s),
                Box::new(WindowScheduler::new(window)),
            );
            net.enable_trace();
            for p in 0..4 {
                let start = if p == 0 { Some((PartyId(3), 20)) } else { None };
                net.spawn(PartyId(p), sid(), Box::new(PingPong { start, received: 0 }));
            }
            net.run(1_000_000);
            net.trace().to_vec()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Fairness: under ANY scheduler in the suite, a single in-flight
    /// message among heavy competing traffic is delivered within the
    /// fairness cap.
    #[test]
    fn fairness_cap_bounds_starvation(seed in any::<u64>(), sched_idx in 0usize..3) {
        struct Noise { left: u32 }
        impl Instance for Noise {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let me = ctx.me();
                ctx.send(me, 0u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                if self.left > 0 {
                    self.left -= 1;
                    let me = ctx.me();
                    ctx.send(me, 0u8);
                }
            }
        }
        struct OneShot;
        impl Instance for OneShot {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(PartyId(1), 1u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                ctx.output(());
            }
        }
        let sched: Box<dyn Scheduler> = match sched_idx {
            0 => Box::new(aft_sim::LifoScheduler),
            1 => Box::new(aft_sim::StarveScheduler::new([PartyId(0), PartyId(1)])),
            _ => Box::new(WindowScheduler::new(2)),
        };
        let mut config = NetConfig::new(4, 1, seed);
        config.scheduler.max_age = 64;
        let mut net = SimNetwork::new(config, sched);
        let vict = SessionId::root().child(SessionTag::new("victim", 0));
        let noise = SessionId::root().child(SessionTag::new("noise", 0));
        net.spawn(PartyId(0), vict.clone(), Box::new(OneShot));
        net.spawn(PartyId(1), vict.clone(), Box::new(OneShot));
        net.spawn(PartyId(2), noise.clone(), Box::new(Noise { left: 5_000 }));
        net.run(20_000);
        prop_assert!(net.output(PartyId(1), &vict).is_some(), "victim starved past cap");
    }

    /// Messages sent to sessions spawned later are buffered, never lost.
    #[test]
    fn early_buffering_lossless(seed in any::<u64>(), delay_spawn in 1u64..50) {
        struct Sender;
        impl Instance for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(PartyId(1), 42u32);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        }
        struct Receiver;
        impl Instance for Receiver {
            fn on_start(&mut self, _ctx: &mut Context<'_>) {}
            fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
                if let Some(v) = p.to_msg::<u32>() {
                    ctx.output(v);
                }
            }
        }
        let mut net = SimNetwork::new(NetConfig::new(4, 1, seed), Box::new(RandomScheduler));
        let s = SessionId::root().child(SessionTag::new("late", 0));
        net.spawn(PartyId(0), s.clone(), Box::new(Sender));
        // Deliver the message before the receiver's instance exists.
        for _ in 0..delay_spawn {
            if !net.step() {
                break;
            }
        }
        net.spawn(PartyId(1), s.clone(), Box::new(Receiver));
        net.run(10_000);
        prop_assert_eq!(net.output_as::<u32>(PartyId(1), &s), Some(&42));
    }

    /// Crashed parties never emit after the crash step.
    #[test]
    fn crash_silences(seed in any::<u64>(), crash_step in 1u64..40) {
        let mut net = SimNetwork::new(NetConfig::new(4, 1, seed), Box::new(RandomScheduler));
        for p in 0..4 {
            let start = if p == 0 { Some((PartyId(2), 200)) } else { None };
            net.spawn(PartyId(p), sid(), Box::new(PingPong { start, received: 0 }));
        }
        net.crash_at(PartyId(2), crash_step);
        let report = net.run(10_000_000);
        prop_assert_eq!(report.stop, StopReason::Quiescent);
        prop_assert!(net.node(PartyId(2)).is_crashed());
    }
}

/// Property tests of the declarative scenario layer: random `Scenario`
/// values must survive a display→parse round trip unchanged, and the
/// matrix composition must produce parseable specs.
mod scenario_props {
    use aft_sim::{Corruption, FaultSpec, PartyId, Scenario, ScenarioMatrix, ALL_SCHEDULERS};
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Decodes one selector into a fault, covering every generic variant
    /// plus registry-style attack names with and without args.
    fn fault_from(sel: u64) -> FaultSpec {
        match sel % 7 {
            0 => FaultSpec::Silent,
            1 => FaultSpec::Crash,
            2 => FaultSpec::MuteAfter(sel / 7 % 32),
            3 => FaultSpec::Garbage(1 + sel / 7 % 64),
            4 => FaultSpec::Equivocate(1 + sel / 7 % 16),
            5 => FaultSpec::Attack {
                name: "equivocal-reveal".into(),
                args: String::new(),
            },
            _ => FaultSpec::Attack {
                name: "fixed-voter".into(),
                args: "true:3".into(),
            },
        }
    }

    /// Builds a valid random scenario: ≤ t distinct corrupted parties,
    /// a scheduler drawn from the shared family table (plus parameterized
    /// variants), and any backend.
    fn scenario_from(n: usize, corrupt: &[u64], sched: usize, rt: usize) -> Scenario {
        let t = (n - 1) / 3;
        let mut parties: Vec<usize> = Vec::new();
        for sel in corrupt.iter().take(t) {
            let available: Vec<usize> = (0..n).filter(|p| !parties.contains(p)).collect();
            parties.push(available[(sel % available.len() as u64) as usize]);
        }
        parties.sort_unstable();
        let corruptions = parties
            .iter()
            .zip(corrupt)
            .map(|(&party, sel)| Corruption {
                party: PartyId(party),
                fault: fault_from(sel >> 8),
            })
            .collect();
        let mut scheds: Vec<String> = ALL_SCHEDULERS
            .iter()
            .map(|f| f.example.to_string())
            .collect();
        scheds.push("window9".into());
        scheds.push("starve:0,2".into());
        let rts = [
            "sim",
            "sharded:1",
            "sharded:2",
            "sharded:4",
            "threaded",
            "threaded:5",
        ];
        Scenario {
            n,
            t,
            corruptions,
            adaptive: None,
            sched: scheds[sched % scheds.len()].clone(),
            rt: rts[rt % rts.len()].to_string(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Display→parse round trip: the canonical string of any valid
        /// scenario parses back to the identical value.
        #[test]
        fn scenario_display_parse_round_trip(
            n in 4usize..=13,
            corrupt in vec(any::<u64>(), 0..=4),
            sched in 0usize..16,
            rt in 0usize..16,
        ) {
            let scenario = scenario_from(n, &corrupt, sched, rt);
            prop_assert!(scenario.validate().is_ok(), "{scenario}");
            let shown = scenario.to_string();
            prop_assert_eq!(Scenario::parse(&shown), Some(scenario), "{}", shown);
        }

        /// Matrix composition always yields parseable, validated specs,
        /// and the cell count is the exact cross-product size.
        #[test]
        fn matrix_specs_always_parse(
            n in 4usize..=7,
            plan_sel in any::<u64>(),
            seeds in vec(any::<u64>(), 1..=3),
        ) {
            let plan = fault_from(plan_sel).to_string() + "@1";
            let matrix = ScenarioMatrix {
                n,
                t: (n - 1) / 3,
                backends: vec!["sim".into(), "sharded:2".into()],
                schedulers: ALL_SCHEDULERS.iter().map(|f| f.example.to_string()).collect(),
                plans: vec![String::new(), plan],
                seeds: seeds.clone(),
            };
            let specs = matrix.specs();
            prop_assert_eq!(specs.len(), 2 * ALL_SCHEDULERS.len() * 2);
            prop_assert_eq!(matrix.cells().len(), specs.len() * seeds.len());
            for spec in specs {
                prop_assert!(Scenario::parse(&spec).is_some(), "{}", spec);
            }
        }
    }
}

/// Property tests of the virtual-time network model: random `net:` specs
/// survive Display↔parse, the event queue is a pure function of
/// `(seed, spec)`, and crash-recovery never double-delivers.
mod net_props {
    use aft_sim::{
        scheduler_by_name, Context, Instance, LatencyDist, NetConfig, NetSpec, PartitionSpec,
        PartyId, Payload, Scenario, SessionId, SessionTag, SimNetwork, StopReason,
    };
    use proptest::prelude::*;

    /// Builds an arbitrary-but-valid spec from raw selectors.
    fn spec_from(
        exp: bool,
        lo: u64,
        span: u64,
        mean: u64,
        fail: u8,
        part: u8,
        heal: u64,
    ) -> NetSpec {
        let lat = if exp {
            LatencyDist::Exp {
                mean: 1 + mean % 256,
            }
        } else {
            let lo = 1 + lo % 1000;
            LatencyDist::Uniform {
                lo,
                hi: lo + span % 1000,
            }
        };
        let partition = match part % 3 {
            0 => None,
            1 => Some(PartitionSpec::Sampled {
                pct: 1 + part.wrapping_mul(7) % 100,
            }),
            _ => Some(PartitionSpec::Explicit(vec![PartyId((part % 4) as usize)])),
        };
        let heal_after =
            (partition.is_some() && heal.is_multiple_of(2)).then_some(1 + heal % 100_000);
        NetSpec {
            lat,
            fail_pct: fail % 100,
            partition,
            heal_after,
        }
    }

    /// Flood: every party broadcasts `rounds` waves.
    struct Flood {
        rounds: u32,
        sent: u32,
        heard: usize,
    }
    impl Instance for Flood {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.sent = 1;
            ctx.send_all(0u32);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard.is_multiple_of(ctx.n()) && self.sent < self.rounds {
                self.sent += 1;
                ctx.send_all(self.sent);
            }
        }
    }

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("net-pp", 0))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Display→parse round trip for random valid `net:` specs: the
        /// canonical string parses back to the identical value, and it
        /// resolves through the shared scheduler family table.
        #[test]
        fn net_spec_display_parse_round_trip(
            exp in any::<bool>(),
            lo in any::<u64>(),
            span in any::<u64>(),
            mean in any::<u64>(),
            fail in any::<u8>(),
            part in any::<u8>(),
            heal in any::<u64>(),
        ) {
            let spec = spec_from(exp, lo, span, mean, fail, part, heal);
            let shown = spec.to_string();
            prop_assert_eq!(NetSpec::parse(&shown).as_ref(), Some(&spec), "{}", shown);
            prop_assert!(scheduler_by_name(&shown).is_some(), "{}", shown);
        }

        /// The virtual-clock schedule is a pure function of `(seed, spec)`:
        /// two runs produce identical delivery streams, metrics and
        /// virtual completion times.
        #[test]
        fn net_schedule_is_pure_in_seed_and_spec(
            seed in any::<u64>(),
            exp in any::<bool>(),
            lo in any::<u64>(),
            span in 0u64..40,
            part in any::<u8>(),
            heal in any::<u64>(),
        ) {
            let spec = spec_from(exp, lo % 20, span, lo % 9, 0, part, heal).to_string();
            let run = || {
                let mut net = SimNetwork::new(
                    NetConfig::new(4, 1, seed),
                    scheduler_by_name(&spec).expect("spec resolves"),
                );
                net.enable_trace();
                for p in 0..4 {
                    net.spawn(PartyId(p), sid(), Box::new(Flood { rounds: 3, sent: 0, heard: 0 }));
                }
                let report = net.run(1_000_000);
                (
                    net.trace().to_vec(),
                    report.metrics.virtual_time,
                    report.metrics.sent,
                    report.stop,
                )
            };
            let first = run();
            prop_assert_eq!(first.3, StopReason::Quiescent, "{}", &spec);
            prop_assert_eq!(run(), first, "{}", spec);
        }

        /// Crash + recover conserves messages exactly: nothing is ever
        /// delivered twice and nothing vanishes — on the order-only and
        /// virtual-time schedulers alike, across recovery times that land
        /// before, during and long after the episode's natural traffic.
        #[test]
        fn crash_recover_never_double_delivers(
            seed in any::<u64>(),
            at in 1u64..400,
            lo in 1u64..16,
        ) {
            let spec = format!(
                "n=4,t=1,corrupt=recover:{at}@2,sched=net:lat={lo}..{},rt=sim",
                lo + 7
            );
            let scenario = Scenario::parse(&spec).unwrap();
            let mut rt = scenario.runtime(seed);
            scenario
                .deploy_episode(
                    rt.as_mut(),
                    &aft_sim::AttackRegistry::new(),
                    "flood",
                    &sid(),
                    &[],
                    |_, _| Box::new(Flood { rounds: 2, sent: 0, heard: 0 }),
                )
                .unwrap();
            let report = rt.run(1_000_000);
            prop_assert_eq!(report.stop, StopReason::Quiescent, "{}", &spec);
            let m = &report.metrics;
            prop_assert_eq!(
                m.sent,
                m.delivered + m.dropped_shunned + m.dropped_crashed,
                "{} seed={}: conservation across crash-recovery",
                &spec, seed
            );
        }
    }
}

mod codec_props {
    use aft_sim::wire::{decode_frame_as, encode_frame, parse_frame, CodecRegistry, WireMessage};
    use aft_sim::Payload;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn roundtrips<T: WireMessage + Clone + PartialEq + std::fmt::Debug>(v: &T) {
        let mut frame = Vec::new();
        encode_frame(v, &mut frame);
        assert_eq!(decode_frame_as::<T>(&frame).as_ref(), Some(v));
        // The payload path agrees with the raw frame path.
        assert_eq!(Payload::message(v.clone()).to_msg::<T>().as_ref(), Some(v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// encode ∘ decode = id for every builtin kind, on arbitrary
        /// values, through both the frame API and the Payload small-box.
        #[test]
        fn builtin_kinds_round_trip(
            a in any::<u64>(),
            b in any::<u32>(),
            c in any::<u8>(),
            d in any::<bool>(),
            s_bytes in vec(any::<u8>(), 0..24),
            l in vec(any::<usize>(), 0..12),
            raw in vec(any::<u8>(), 0..40),
        ) {
            roundtrips(&a);
            roundtrips(&b);
            roundtrips(&c);
            roundtrips(&d);
            roundtrips(&String::from_utf8_lossy(&s_bytes).into_owned());
            roundtrips(&l);
            roundtrips(&raw);
        }

        /// Decoder-fuzz: arbitrary bytes never panic anywhere in the
        /// codec stack, and whatever decodes carries the frame's own
        /// declared kind — never another one.
        #[test]
        fn arbitrary_bytes_never_panic_or_cross_kinds(bytes in vec(any::<u8>(), 0..64)) {
            let registry = CodecRegistry::with_builtins();
            if let Some((kind, payload)) = registry.decode_frame(&bytes) {
                prop_assert_eq!(parse_frame(&bytes).unwrap().0, kind);
                prop_assert_eq!(Some(payload.type_name()), registry.kind_name(kind));
            }
            // The lazy path is total too.
            let lazy = Payload::from_wire(bytes.clone(), &registry);
            let _ = lazy.to_msg::<u64>();
            let _ = lazy.to_msg::<String>();
            let _ = lazy.type_name();
        }

        /// Truncating or bit-flipping a valid frame never panics and
        /// never produces a value under a kind the mutated header does
        /// not declare.
        #[test]
        fn mutated_frames_stay_kind_honest(
            v in any::<u64>(),
            cut in 0usize..14,
            flip_at in 0usize..14,
            flip_bit in 0u8..8,
        ) {
            let mut frame = Vec::new();
            encode_frame(&v, &mut frame);
            // Truncation: parse always fails (declared len is exact).
            let cut = cut.min(frame.len().saturating_sub(1));
            prop_assert!(parse_frame(&frame[..cut]).is_none());
            prop_assert!(decode_frame_as::<u64>(&frame[..cut]).is_none());
            // Bit flip: decode may fail or yield a u64, but only when
            // the (mutated) header still declares u64's kind.
            let mut mutated = frame.clone();
            let at = flip_at.min(mutated.len() - 1);
            mutated[at] ^= 1 << flip_bit;
            if decode_frame_as::<u64>(&mutated).is_some() {
                prop_assert_eq!(parse_frame(&mutated).unwrap().0, <u64 as WireMessage>::KIND);
            }
        }
    }
}
