//! The typed wire codec: self-describing, length-prefixed message frames.
//!
//! Every protocol message type implements [`WireMessage`]: a stable
//! 16-bit kind, a body encoder and a body decoder. A message travels as a
//! *frame*:
//!
//! ```text
//! +--------------+---------------+-------------------+
//! | kind: u16 LE | len: u32 LE   | body: `len` bytes |
//! +--------------+---------------+-------------------+
//! ```
//!
//! Frames are self-describing (the kind says what the body claims to be)
//! and length-prefixed (the declared `len` must equal the actual body
//! length — [`parse_frame`] rejects everything else). Decoders consume
//! the body exactly; trailing bytes, truncation and kind mismatches all
//! decode to `None`, never to a value of a different kind and never by
//! panicking — malformed bytes from Byzantine parties are an *expected
//! input*, not an error condition.
//!
//! ## Kind space
//!
//! Kinds below `0x8000` are plain message kinds, allocated in per-crate
//! ranges so registries can be merged without collisions (the
//! [`CodecRegistry`] panics on a genuine collision):
//!
//! | range | owner |
//! |---|---|
//! | `0x0001..=0x000F` | builtin primitives (`aft-sim`) |
//! | `0x0010..=0x001F` | generic behaviours (`aft-sim`) |
//! | `0x0020..=0x002F` | `aft-ba` |
//! | `0x0030..=0x003F` | `aft-svss` |
//! | `0x0040..=0x004F` | `aft-core` |
//! | `0x7000..=0x7FFF` | tests and examples |
//!
//! The high bit composes: `0x8000 | K` is "an A-Cast message carrying a
//! value of kind `K`" (see [`acast_kind`]), which is how generic wrappers
//! get a distinct kind per payload type without a global registry of
//! instantiations.
//!
//! ## Registries
//!
//! A [`CodecRegistry`] maps kinds to named decoders. The wire-serialized
//! runtime resolves incoming frames' kind *names* through its per-run
//! registry (so diagnostics say `acast`, not `Bytes`), and fuzz tests
//! drive every registered decoder through arbitrary bytes. Protocol
//! crates export `register_codecs(&mut CodecRegistry)`; call
//! [`register_global`] to make them visible to runtimes built by name
//! (`runtime_by_name("wire", …)` snapshots the global registry).

use crate::ids::{SessionId, SessionTag};
use crate::payload::Payload;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// First builtin primitive kind (`u8`).
pub const KIND_BUILTIN_BASE: u16 = 0x0001;
/// First kind reserved for `aft-sim`'s generic behaviours.
pub const KIND_BEHAVIOR_BASE: u16 = 0x0010;
/// First kind reserved for `aft-ba`.
pub const KIND_BA_BASE: u16 = 0x0020;
/// First kind reserved for `aft-svss`.
pub const KIND_SVSS_BASE: u16 = 0x0030;
/// First kind reserved for `aft-core`.
pub const KIND_CORE_BASE: u16 = 0x0040;
/// First kind reserved for tests and examples.
pub const KIND_TEST_BASE: u16 = 0x7000;

/// Bytes of a frame header: kind (2) + body length (4).
pub const FRAME_HEADER_LEN: usize = 6;

/// Composes the kind of an A-Cast frame carrying an inner kind.
///
/// The inner kind must be a plain kind (`< 0x8000`); wrappers do not
/// nest, which the const assertion in `AcastMsg`'s impl enforces at
/// compile time.
pub const fn acast_kind(inner: u16) -> u16 {
    0x8000 | inner
}

/// A message that can cross a byte-level network boundary.
///
/// Implementors pick a stable [`KIND`](WireMessage::KIND) from their
/// crate's range (see the [module docs](self)), encode their body with
/// the [`WireWriter`] helpers and decode with a [`WireReader`] —
/// rejecting, never panicking on, malformed bytes. The laws the codec
/// proptests pin:
///
/// * **round trip** — `decode_body(encode_body(m)) == Some(m)`;
/// * **exactness** — decoders consume the body exactly (a
///   [`WireReader`] is finished with [`WireReader::finish`]);
/// * **totality** — `decode_body` returns `None` (never panics, never a
///   different value) on arbitrary bytes.
///
/// [`Payload`] stores small encoded messages inline (no allocation per
/// message) and keeps large ones as shared typed values that encode
/// lazily at the wire boundary, so implementing this trait is all a
/// protocol crate does to run on every backend including the
/// wire-serialized one.
pub trait WireMessage: Any + Send + Sync + Sized {
    /// The frame kind identifying this message type on the wire.
    const KIND: u16;
    /// Diagnostic name of the kind (reported by
    /// [`Payload::type_name`](crate::Payload::type_name) for wire frames).
    const KIND_NAME: &'static str;

    /// Static upper bound on [`encode_body`](WireMessage::encode_body)'s
    /// output length, in bytes, when one is known at compile time.
    ///
    /// The contract: when `Some(max)`, **every** value of the type must
    /// encode to at most `max` body bytes (`Payload` debug-asserts it).
    /// Types whose bound is at most
    /// [`INLINE_BODY_CAP`](crate::payload::INLINE_BODY_CAP) are stored
    /// inline unconditionally — the typed fallback arm is statically
    /// dead — and types whose bound exceeds the cap skip the probe
    /// encode entirely and go straight to the shared typed
    /// representation. Leave the default `None` for variable-length
    /// types; the probe then decides at runtime, which is always
    /// correct, just not free.
    const MAX_BODY_HINT: Option<usize> = None;

    /// Erased encode/identity table for this type (used by [`Payload`]).
    #[doc(hidden)]
    const VTABLE: WireVtable = WireVtable {
        kind: Self::KIND,
        name: Self::KIND_NAME,
        encode_frame: encode_frame_erased::<Self>,
    };

    /// Appends the message body (no header) to `out`.
    fn encode_body(&self, out: &mut Vec<u8>);

    /// Decodes a body produced by [`encode_body`](WireMessage::encode_body).
    /// Must consume the body exactly and return `None` on any malformed
    /// input.
    fn decode_body(bytes: &[u8]) -> Option<Self>;

    /// Adversarial hook: when `Some`, the wire transport emits these
    /// exact bytes as the payload frame *instead of* the well-formed
    /// `header + encode_body` encoding — the frame may be truncated,
    /// kind-spoofed or pure junk. Honest messages leave the default
    /// `None`; the generic `garbage`/`equivocate` behaviours override it
    /// to turn their in-memory junk values into genuinely malformed byte
    /// frames on wire-capable runs.
    fn raw_frame(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Appends the full frame (header + body, or the raw adversarial frame)
/// for `msg` to `out`.
pub fn encode_frame<T: WireMessage>(msg: &T, out: &mut Vec<u8>) {
    if let Some(raw) = msg.raw_frame() {
        out.extend_from_slice(&raw);
        return;
    }
    out.extend_from_slice(&T::KIND.to_le_bytes());
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]);
    msg.encode_body(out);
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Splits a frame into `(kind, body)`. Returns `None` unless the header
/// is present and the declared body length equals the actual one.
pub fn parse_frame(frame: &[u8]) -> Option<(u16, &[u8])> {
    if frame.len() < FRAME_HEADER_LEN {
        return None;
    }
    let kind = u16::from_le_bytes([frame[0], frame[1]]);
    let len = u32::from_le_bytes([frame[2], frame[3], frame[4], frame[5]]) as usize;
    let body = &frame[FRAME_HEADER_LEN..];
    (body.len() == len).then_some((kind, body))
}

/// Decodes a full frame as `T`: header well-formed, kind equal to
/// `T::KIND`, body decodable. The only way bytes become a typed message.
pub fn decode_frame_as<T: WireMessage>(frame: &[u8]) -> Option<T> {
    let (kind, body) = parse_frame(frame)?;
    (kind == T::KIND).then(|| T::decode_body(body)).flatten()
}

/// Type-erased encode-frame shim monomorphized per message type.
fn encode_frame_erased<T: WireMessage>(value: &(dyn Any + Send + Sync), out: &mut Vec<u8>) {
    let msg = value
        .downcast_ref::<T>()
        .expect("wire vtable attached to a value of another type");
    encode_frame(msg, out);
}

/// Erased per-type codec identity, attached to typed [`Payload`]s so the
/// wire boundary can serialize them without knowing their type.
#[doc(hidden)]
pub struct WireVtable {
    /// The frame kind.
    pub kind: u16,
    /// The kind's diagnostic name.
    pub name: &'static str,
    /// Appends the full frame for the (type-erased) value.
    pub encode_frame: fn(&(dyn Any + Send + Sync), &mut Vec<u8>),
}

// ---------------------------------------------------------------------------
// Body encode/decode helpers.
// ---------------------------------------------------------------------------

/// Append-style helpers for message bodies (all little-endian).
pub struct WireWriter;

impl WireWriter {
    /// Appends one byte.
    pub fn u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }
    /// Appends a `u16`.
    pub fn u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u32`.
    pub fn u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64`.
    pub fn u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `bool` as `0`/`1`.
    pub fn bool(out: &mut Vec<u8>, v: bool) {
        out.push(v as u8);
    }
    /// Appends a `u32`-length-prefixed byte string.
    pub fn bytes(out: &mut Vec<u8>, v: &[u8]) {
        Self::u32(out, v.len() as u32);
        out.extend_from_slice(v);
    }

    /// Appends a batch: `count:u32`, then `count` items each written by
    /// `encode_item(out, i)` and wrapped as a `u32`-length-prefixed byte
    /// string (the prefix is patched in place after the callback runs,
    /// so items encode directly into `out` with no staging buffer).
    ///
    /// The wire transport uses this to ship every same-`(src, dst)`
    /// envelope run as one framed batch; [`WireReader::read_batch`] is
    /// the inverse.
    pub fn write_batch(
        out: &mut Vec<u8>,
        count: usize,
        mut encode_item: impl FnMut(&mut Vec<u8>, usize),
    ) {
        Self::u32(out, count as u32);
        for i in 0..count {
            let len_at = out.len();
            out.extend_from_slice(&[0; 4]);
            encode_item(out, i);
            let len = (out.len() - len_at - 4) as u32;
            out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
        }
    }
}

/// A checked, position-tracking reader over a message body.
///
/// Every accessor returns `None` past the end; [`finish`] additionally
/// rejects trailing bytes, which is what makes decoders *exact*.
///
/// [`finish`]: WireReader::finish
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        let s = self.take(2)?;
        Some(u16::from_le_bytes([s[0], s[1]]))
    }
    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }
    /// Reads a strict `bool` (`0` or `1`; anything else is malformed).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Borrows the unconsumed tail without consuming it — for nested
    /// decoders that report how much they used (pair with
    /// [`skip`](WireReader::skip)).
    pub fn peek_rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
    /// Skips `n` bytes (`None` past the end).
    pub fn skip(&mut self, n: usize) -> Option<()> {
        self.take(n).map(|_| ())
    }
    /// Reads a batch written by [`WireWriter::write_batch`]: `count:u32`
    /// then `count` `u32`-length-prefixed items, invoking `each` with
    /// every item's bytes (still borrowed from the underlying buffer —
    /// no copies). Returns the item count, or `None` when the batch is
    /// truncated, in which case `each` may already have observed a
    /// prefix of the items.
    pub fn read_batch(&mut self, mut each: impl FnMut(&'a [u8])) -> Option<u32> {
        let count = self.u32()?;
        for _ in 0..count {
            each(self.bytes()?);
        }
        Some(count)
    }

    /// Consumes the rest of the body.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
    /// Succeeds iff the body was consumed exactly.
    pub fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

// ---------------------------------------------------------------------------
// Session ids on the wire.
// ---------------------------------------------------------------------------

/// Appends a session id as `depth:u8` then per tag
/// `kind:(u32-len bytes)`, `index:u64`.
pub fn put_session(out: &mut Vec<u8>, session: &SessionId) {
    let path = session.path();
    WireWriter::u8(out, path.len() as u8);
    for tag in path {
        WireWriter::bytes(out, tag.kind.as_bytes());
        WireWriter::u64(out, tag.index);
    }
}

/// Reads a session id written by [`put_session`], re-interning the tag
/// kinds (the interner guarantees a decoded id is pointer-equal to the
/// locally constructed one, so routing works unchanged).
pub fn get_session(r: &mut WireReader<'_>) -> Option<SessionId> {
    let depth = r.u8()? as usize;
    let mut id = SessionId::root();
    for _ in 0..depth {
        let kind = std::str::from_utf8(r.bytes()?).ok()?;
        let index = r.u64()?;
        id = id.child(SessionTag::new(SessionTag::intern_kind(kind), index));
    }
    Some(id)
}

// ---------------------------------------------------------------------------
// Builtin WireMessage impls.
// ---------------------------------------------------------------------------

macro_rules! int_wire {
    ($ty:ty, $kind:expr, $name:literal) => {
        impl WireMessage for $ty {
            const KIND: u16 = $kind;
            const KIND_NAME: &'static str = $name;
            const MAX_BODY_HINT: Option<usize> = Some(std::mem::size_of::<$ty>());
            fn encode_body(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_body(bytes: &[u8]) -> Option<Self> {
                Some(<$ty>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    };
}

int_wire!(u8, KIND_BUILTIN_BASE, "u8");
int_wire!(u16, KIND_BUILTIN_BASE + 1, "u16");
int_wire!(u32, KIND_BUILTIN_BASE + 2, "u32");
int_wire!(u64, KIND_BUILTIN_BASE + 3, "u64");
int_wire!(i64, KIND_BUILTIN_BASE + 4, "i64");

impl WireMessage for usize {
    const KIND: u16 = KIND_BUILTIN_BASE + 5;
    const KIND_NAME: &'static str = "usize";
    const MAX_BODY_HINT: Option<usize> = Some(8);
    fn encode_body(&self, out: &mut Vec<u8>) {
        WireWriter::u64(out, *self as u64);
    }
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let v = r.u64()?;
        r.finish()?;
        usize::try_from(v).ok()
    }
}

impl WireMessage for bool {
    const KIND: u16 = KIND_BUILTIN_BASE + 6;
    const KIND_NAME: &'static str = "bool";
    const MAX_BODY_HINT: Option<usize> = Some(1);
    fn encode_body(&self, out: &mut Vec<u8>) {
        WireWriter::bool(out, *self);
    }
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let v = r.bool()?;
        r.finish()?;
        Some(v)
    }
}

impl WireMessage for () {
    const KIND: u16 = KIND_BUILTIN_BASE + 7;
    const KIND_NAME: &'static str = "unit";
    const MAX_BODY_HINT: Option<usize> = Some(0);
    fn encode_body(&self, _out: &mut Vec<u8>) {}
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl WireMessage for String {
    const KIND: u16 = KIND_BUILTIN_BASE + 8;
    const KIND_NAME: &'static str = "string";
    fn encode_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        std::str::from_utf8(bytes).ok().map(str::to_owned)
    }
}

impl WireMessage for Vec<u8> {
    const KIND: u16 = KIND_BUILTIN_BASE + 9;
    const KIND_NAME: &'static str = "bytes";
    fn encode_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl WireMessage for Vec<usize> {
    const KIND: u16 = KIND_BUILTIN_BASE + 10;
    const KIND_NAME: &'static str = "usize-list";
    fn encode_body(&self, out: &mut Vec<u8>) {
        for &v in self {
            WireWriter::u64(out, v as u64);
        }
    }
    fn decode_body(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let mut r = WireReader::new(bytes);
        let mut out = Vec::with_capacity(bytes.len() / 8);
        while r.remaining() > 0 {
            out.push(usize::try_from(r.u64()?).ok()?);
        }
        Some(out)
    }
}

/// Registers every builtin primitive kind with `registry`.
pub fn register_builtin_codecs(registry: &mut CodecRegistry) {
    registry.register::<u8>();
    registry.register::<u16>();
    registry.register::<u32>();
    registry.register::<u64>();
    registry.register::<i64>();
    registry.register::<usize>();
    registry.register::<bool>();
    registry.register::<()>();
    registry.register::<String>();
    registry.register::<Vec<u8>>();
    registry.register::<Vec<usize>>();
}

// ---------------------------------------------------------------------------
// The codec registry.
// ---------------------------------------------------------------------------

/// One registered kind: its name plus a decoder producing a typed
/// [`Payload`].
#[derive(Clone, Copy)]
struct KindEntry {
    name: &'static str,
    decode: fn(&[u8]) -> Option<Payload>,
}

/// A per-run mapping from frame kinds to named decoders.
///
/// The wire-serialized runtime resolves incoming frames' kind names
/// through its registry, the decode-fuzz proptests drive every
/// registered decoder, and [`decode_frame`](CodecRegistry::decode_frame)
/// eagerly materializes a typed payload when a caller wants one.
/// Registration panics on a kind collision (two types claiming the same
/// kind with different names) — that is a workspace configuration bug,
/// not a runtime input.
#[derive(Default, Clone)]
pub struct CodecRegistry {
    entries: BTreeMap<u16, KindEntry>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with the builtin primitive kinds.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        register_builtin_codecs(&mut r);
        r
    }

    /// Registers `T`'s kind. Idempotent for the same type; panics when a
    /// *different* type (by kind name) already owns the kind.
    pub fn register<T: WireMessage>(&mut self) {
        fn decode_to_payload<T: WireMessage>(body: &[u8]) -> Option<Payload> {
            T::decode_body(body).map(Payload::message)
        }
        let entry = KindEntry {
            name: T::KIND_NAME,
            decode: decode_to_payload::<T>,
        };
        if let Some(prev) = self.entries.insert(T::KIND, entry) {
            assert_eq!(
                prev.name,
                T::KIND_NAME,
                "wire kind {:#06x} claimed by both {:?} and {:?}",
                T::KIND,
                prev.name,
                T::KIND_NAME
            );
        }
    }

    /// Whether `kind` is registered.
    pub fn contains(&self, kind: u16) -> bool {
        self.entries.contains_key(&kind)
    }

    /// The registered name of `kind`, if any.
    pub fn kind_name(&self, kind: u16) -> Option<&'static str> {
        self.entries.get(&kind).map(|e| e.name)
    }

    /// All registered `(kind, name)` pairs, in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (u16, &'static str)> + '_ {
        self.entries.iter().map(|(&k, e)| (k, e.name))
    }

    /// Eagerly decodes a full frame through the registered decoder for
    /// its declared kind. `None` for malformed headers, unknown kinds, or
    /// bodies the decoder rejects. The returned payload is typed and is
    /// guaranteed to be of the *declared* kind — a decoder never produces
    /// a value of another kind.
    pub fn decode_frame(&self, frame: &[u8]) -> Option<(u16, Payload)> {
        let (kind, body) = parse_frame(frame)?;
        let entry = self.entries.get(&kind)?;
        Some((kind, (entry.decode)(body)?))
    }
}

impl std::fmt::Debug for CodecRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, e)| (k, e.name)))
            .finish()
    }
}

/// Registers `aft-sim`'s own non-primitive kinds: the generic
/// behaviours' junk payload and the super-party cluster envelope.
pub fn register_sim_codecs(registry: &mut CodecRegistry) {
    registry.register::<crate::behaviors::Garbage>();
    registry.register::<crate::cluster::ClusterMsg>();
}

/// The process-global registry behind [`register_global`] /
/// [`global_registry`].
fn global() -> &'static RwLock<CodecRegistry> {
    static GLOBAL: OnceLock<RwLock<CodecRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mut registry = CodecRegistry::with_builtins();
        register_sim_codecs(&mut registry);
        RwLock::new(registry)
    })
}

/// Adds kinds to the process-global registry (additive; registering the
/// same type twice is a no-op). Protocol crates expose
/// `register_codecs(&mut CodecRegistry)` functions; `aft-core` installs
/// the whole workspace's kinds through this before wire runs.
pub fn register_global(f: impl FnOnce(&mut CodecRegistry)) {
    f(&mut global().write().expect("codec registry poisoned"));
}

/// A snapshot of the process-global registry (builtins and `aft-sim`'s
/// own kinds always included). `runtime_by_name("wire", …)` hands this
/// to the runtime it builds; kinds registered later are not visible to
/// already-built runtimes.
pub fn global_registry() -> Arc<CodecRegistry> {
    Arc::new(global().read().expect("codec registry poisoned").clone())
}

/// Resolves one kind's name in the process-global registry without
/// snapshotting it — the cheap per-message path for decoders that only
/// need a diagnostic name.
pub fn global_kind_name(kind: u16) -> Option<&'static str> {
    global()
        .read()
        .expect("codec registry poisoned")
        .kind_name(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_round_trips() {
        fn rt<T: WireMessage + PartialEq + std::fmt::Debug>(v: T) {
            let mut frame = Vec::new();
            encode_frame(&v, &mut frame);
            assert_eq!(decode_frame_as::<T>(&frame), Some(v), "{frame:?}");
        }
        rt(7u8);
        rt(0xBEEFu16);
        rt(0xDEAD_BEEFu32);
        rt(u64::MAX);
        rt(-5i64);
        rt(42usize);
        rt(true);
        rt(false);
        rt(());
        rt("hello wörld".to_string());
        rt(vec![1u8, 2, 3]);
        rt(vec![0usize, 9, 1 << 40]);
    }

    #[test]
    fn frames_reject_truncation_and_trailing_bytes() {
        let mut frame = Vec::new();
        encode_frame(&0xAABBCCDDu32, &mut frame);
        for cut in 0..frame.len() {
            assert_eq!(parse_frame(&frame[..cut]), None, "cut={cut}");
        }
        let mut long = frame.clone();
        long.push(0);
        assert_eq!(parse_frame(&long), None, "declared len must be exact");
    }

    #[test]
    fn decode_frame_as_checks_the_kind() {
        let mut frame = Vec::new();
        encode_frame(&7u64, &mut frame);
        assert_eq!(decode_frame_as::<u64>(&frame), Some(7));
        // Same body length, different kind: rejected, not reinterpreted.
        assert_eq!(decode_frame_as::<i64>(&frame), None);
        assert_eq!(decode_frame_as::<u8>(&frame), None);
    }

    #[test]
    fn strict_bool_rejects_junk() {
        assert_eq!(bool::decode_body(&[2]), None);
        assert_eq!(bool::decode_body(&[]), None);
        assert_eq!(bool::decode_body(&[1, 0]), None);
    }

    #[test]
    fn session_round_trip_is_pointer_equal() {
        let sid = SessionId::root()
            .child(SessionTag::new("wiresess", 3))
            .child(SessionTag::new("sub", u64::MAX));
        let mut buf = Vec::new();
        put_session(&mut buf, &sid);
        let mut r = WireReader::new(&buf);
        let back = get_session(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, sid);
        assert!(std::ptr::eq(back.path(), sid.path()), "re-interned");
    }

    #[test]
    fn registry_names_and_eager_decode() {
        let reg = CodecRegistry::with_builtins();
        assert_eq!(reg.kind_name(u64::KIND), Some("u64"));
        assert!(reg.kinds().count() >= 10);
        let mut frame = Vec::new();
        encode_frame(&31337u64, &mut frame);
        let (kind, payload) = reg.decode_frame(&frame).unwrap();
        assert_eq!(kind, u64::KIND);
        assert_eq!(payload.to_msg::<u64>(), Some(31337));
        // Unknown kind: None, not a panic.
        frame[0] = 0xFF;
        frame[1] = 0x7E;
        assert!(reg.decode_frame(&frame).is_none());
    }

    #[test]
    fn registry_register_is_idempotent() {
        let mut reg = CodecRegistry::new();
        reg.register::<u64>();
        reg.register::<u64>();
        assert_eq!(reg.kinds().count(), 1);
    }

    #[test]
    fn global_registry_snapshot_includes_builtins() {
        let snap = global_registry();
        assert!(snap.contains(bool::KIND));
    }

    #[test]
    fn acast_kind_sets_the_high_bit() {
        assert_eq!(acast_kind(0x0020), 0x8020);
        assert_ne!(acast_kind(u8::KIND), u8::KIND);
    }

    #[test]
    fn batch_round_trips_and_rejects_truncation() {
        let items: [&[u8]; 3] = [b"alpha", b"", b"\x00\xFFbeta"];
        let mut buf = Vec::new();
        WireWriter::write_batch(&mut buf, items.len(), |out, i| {
            out.extend_from_slice(items[i]);
        });
        let mut r = WireReader::new(&buf);
        let mut got = Vec::new();
        assert_eq!(r.read_batch(|item| got.push(item.to_vec())), Some(3));
        assert!(r.finish().is_some());
        assert_eq!(got, items.map(<[u8]>::to_vec));
        // Any truncation loses at least the final item.
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            let mut seen = 0;
            assert_eq!(r.read_batch(|_| seen += 1), None, "cut={cut}");
            assert!(seen < items.len(), "cut={cut}");
        }
    }

    #[test]
    fn empty_batch_is_four_bytes() {
        let mut buf = Vec::new();
        WireWriter::write_batch(&mut buf, 0, |_, _| unreachable!());
        assert_eq!(buf, 0u32.to_le_bytes());
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_batch(|_| unreachable!()), Some(0));
    }

    #[test]
    fn builtin_body_hints_bound_real_encodings() {
        fn check<T: WireMessage>(v: T) {
            let max = T::MAX_BODY_HINT.expect("builtin scalar has a hint");
            let mut body = Vec::new();
            v.encode_body(&mut body);
            assert!(
                body.len() <= max,
                "{}: {} > {max}",
                T::KIND_NAME,
                body.len()
            );
        }
        check(u8::MAX);
        check(u16::MAX);
        check(u32::MAX);
        check(u64::MAX);
        check(i64::MIN);
        check(usize::MAX);
        check(true);
        check(());
        // Variable-length builtins advertise no bound.
        assert_eq!(<String as WireMessage>::MAX_BODY_HINT, None);
        assert_eq!(<Vec<u8> as WireMessage>::MAX_BODY_HINT, None);
        assert_eq!(<Vec<usize> as WireMessage>::MAX_BODY_HINT, None);
    }

    #[test]
    fn reader_is_total_on_short_input() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.u64(), None);
        assert_eq!(r.u16(), Some(0x0201));
        assert_eq!(r.u8(), None);
        assert!(r.finish().is_some());
    }
}
