//! Process-per-party deployment support.
//!
//! Two consumers share this module:
//!
//! * **`rt=proc[:<n>]`** — [`ProcRuntime`], the in-process stand-in for
//!   the real deployment. Protocol instances ([`Instance`]) are plain
//!   trait objects and cannot cross a process boundary, so the string
//!   spec builds one OS *thread* per party over the same dispatch core
//!   (a thin wrapper around [`ThreadedRuntime`]); every `exp_*` binary
//!   and cross-backend test accepts it like any other `--runtime` name.
//! * **`aft-partyd` / `exp_deployment`** (in `aft-bench`) — the real
//!   one-OS-process-per-party deployment. Each daemon builds its own
//!   [`Node`] with [`party_node`] and exchanges envelopes over sockets
//!   using [`encode_envelope`] / [`decode_envelope`], which frame the
//!   routing header around the exact wire representation the `wire`
//!   backend already round-trips in-process.
//!
//! The envelope layout (all little-endian) is
//!
//! ```text
//! [from: u32] [session: u8 depth, then per tag bytes(kind) + u64 index]
//! [payload wire frame: kind u16, len u32, body]
//! ```
//!
//! so a frame is self-describing given the process-global
//! [`CodecRegistry`](crate::wire::CodecRegistry) — the same property the
//! `garbage`/`equivocate` adversaries rely on.

use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::node::Node;
use crate::payload::Payload;
use crate::runtime::{build_node, Metrics, NetConfig, RunReport, Runtime};
use crate::threaded::ThreadedRuntime;
use crate::trace::{TraceMode, TraceSink};
use crate::wire::{get_session, put_session, WireReader, WireWriter};

/// Builds party `party`'s [`Node`] for a configured system — the same
/// constructor (and per-party RNG derivation) every in-process backend
/// uses, exported so an external per-party daemon starts from state
/// identical to its simulated twin.
pub fn party_node(config: &NetConfig, party: usize) -> Node {
    build_node(config, party)
}

/// Appends one routed envelope (`from`, `session`, `payload`) to `out`.
///
/// Returns `false` — leaving `out` untouched — when `payload` has no
/// wire identity (a typed output), which never legitimately crosses a
/// process boundary.
pub fn encode_envelope(
    from: PartyId,
    session: &SessionId,
    payload: &Payload,
    out: &mut Vec<u8>,
) -> bool {
    let mark = out.len();
    WireWriter::u32(out, from.0 as u32);
    put_session(out, session);
    if payload.encode_wire_frame(out) {
        true
    } else {
        out.truncate(mark);
        false
    }
}

/// Decodes one envelope produced by [`encode_envelope`].
///
/// The payload comes back in its lazy wire representation (decoded on
/// first typed access through the process-global codec registry), so a
/// malformed body is charged to the receiving instance as a decode
/// miss — exactly the `wire` backend's semantics — rather than failing
/// here. Returns `None` only when the routing header itself is
/// malformed.
pub fn decode_envelope(bytes: &[u8]) -> Option<(PartyId, SessionId, Payload)> {
    let mut r = WireReader::new(bytes);
    let from = PartyId(r.u32()? as usize);
    let session = get_session(&mut r)?;
    let frame = r.rest();
    if frame.len() < crate::wire::FRAME_HEADER_LEN {
        return None;
    }
    Some((from, session, Payload::from_wire_global(frame.to_vec())))
}

/// The in-process stand-in for the process-per-party deployment
/// (`rt=proc` / `rt=proc:<n>`).
///
/// One OS thread per party over the shared dispatch core — real OS
/// scheduling, no determinism, no virtual clock. It exists so an
/// unmodified `Scenario` string marked `rt=proc` runs in every `exp_*`
/// binary and test harness; the *real* multi-process deployment
/// (one `aft-partyd` OS process per party, supervised crash/restart)
/// is driven by `exp_deployment` in `aft-bench`, which spawns daemons
/// from the same scenario string instead of building a `Runtime`.
///
/// Scheduled recovery needs a virtual clock and a supervisor, neither
/// of which exists in-process: [`schedule_recover`](Runtime::schedule_recover)
/// reports `false` (the party stays crashed), while `exp_deployment`
/// maps `corrupt=recover:<vt>@p` onto a real SIGKILL + respawn.
///
/// # Examples
///
/// ```
/// use aft_sim::{runtime_by_name, NetConfig};
/// let rt = runtime_by_name("proc:4", NetConfig::new(4, 1, 7)).unwrap();
/// assert_eq!(rt.backend_name(), "proc");
/// ```
pub struct ProcRuntime {
    inner: ThreadedRuntime,
}

impl ProcRuntime {
    /// Builds the stand-in: one worker thread per party.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n < 3t + 1` (see [`ThreadedRuntime::new`]).
    pub fn new(config: NetConfig) -> Self {
        ProcRuntime {
            inner: ThreadedRuntime::new(config),
        }
    }
}

impl Runtime for ProcRuntime {
    fn config(&self) -> &NetConfig {
        self.inner.config()
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        self.inner.spawn(party, session, instance);
    }

    fn crash(&mut self, party: PartyId) {
        self.inner.crash(party);
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        self.inner.run(max_steps)
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.inner.output(party, session)
    }

    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        self.inner.retire_session(party, session)
    }

    fn metrics(&self) -> Metrics {
        Runtime::metrics(&self.inner)
    }

    fn set_trace(&mut self, mode: TraceMode) {
        self.inner.set_trace(mode);
    }

    fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.inner.take_trace()
    }

    fn backend_name(&self) -> &'static str {
        "proc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::{runtime_by_name, StopReason};
    use crate::RuntimeExt;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("dep", 0))
    }

    #[test]
    fn envelope_round_trips() {
        let session = sid().child(SessionTag::new("inner", 3));
        let payload = Payload::message(0xA5u8);
        let mut buf = Vec::new();
        assert!(encode_envelope(PartyId(2), &session, &payload, &mut buf));
        let (from, got_session, got) = decode_envelope(&buf).expect("well-formed");
        assert_eq!(from, PartyId(2));
        assert_eq!(got_session, session);
        assert_eq!(got.to_msg::<u8>(), Some(0xA5));
    }

    #[test]
    fn envelope_rejects_outputs_and_truncation() {
        let payload = Payload::new("not a wire message".to_string());
        let mut buf = Vec::new();
        assert!(
            !encode_envelope(PartyId(0), &sid(), &payload, &mut buf),
            "typed outputs have no wire identity"
        );
        assert!(buf.is_empty(), "failed encode leaves the buffer untouched");

        let mut ok = Vec::new();
        assert!(encode_envelope(
            PartyId(1),
            &sid(),
            &Payload::message(true),
            &mut ok
        ));
        for cut in 0..ok.len().min(6) {
            assert!(decode_envelope(&ok[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn party_node_matches_backend_nodes() {
        // Same constructor ⇒ same identity and per-party RNG stream as
        // the in-process backends for the same (seed, party).
        let config = NetConfig::new(4, 1, 42);
        let node = party_node(&config, 2);
        assert_eq!(node.id(), PartyId(2));
        assert!(!node.is_crashed());
    }

    /// Greets everyone; outputs after hearing from all n parties.
    struct Hello {
        heard: usize,
    }
    impl Instance for Hello {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.heard);
            }
        }
    }

    #[test]
    fn proc_runtime_runs_like_threaded() {
        let mut rt = runtime_by_name("proc:4", NetConfig::new(4, 1, 7)).unwrap();
        assert_eq!(rt.backend_name(), "proc");
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&4), "{p}");
        }
        // No supervisor in-process: scheduled recovery is refused.
        let mut rt = runtime_by_name("proc", NetConfig::new(4, 1, 7)).unwrap();
        rt.crash(PartyId(3));
        assert!(!rt.schedule_recover(PartyId(3), 50, sid(), Box::new(Hello { heard: 0 })));
    }
}
