//! A threaded runtime: the same [`Instance`] protocol code running over
//! real OS threads and channels instead of the deterministic simulator.
//!
//! Each party is one thread owning its [`Node`]; links are unbounded
//! crossbeam channels; delivery order is whatever the OS scheduler
//! produces — a genuinely asynchronous (if benign) network. The runtime
//! exists to demonstrate that the protocol implementations are not
//! simulator-bound; quantitative experiments use [`SimNetwork`] for
//! determinism and adversarial scheduling.
//!
//! Termination uses a global in-flight counter: every send increments it,
//! every completed delivery decrements it; when it reaches zero there are
//! no messages anywhere (channels are empty and no handler is running), so
//! all threads exit.
//!
//! [`SimNetwork`]: crate::SimNetwork

use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::node::{Node, Outgoing};
use crate::payload::Payload;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Wire {
    from: PartyId,
    session: SessionId,
    payload: Payload,
}

/// Per-party outputs of a threaded run.
pub type ThreadedOutputs = Vec<HashMap<SessionId, Payload>>;

/// Runs one protocol deployment over OS threads.
///
/// `spawns[p]` lists the `(session, instance)` pairs party `p` starts
/// with. The function returns when the system is quiescent (no in-flight
/// messages) — protocols that almost-surely terminate reach this state —
/// and yields every party's recorded session outputs.
///
/// `poll` is the idle-polling interval used to detect quiescence
/// (tests use a few milliseconds).
///
/// # Panics
///
/// Panics if `n == 0`, if `spawns.len() != n`, or if a worker thread
/// panics (protocol assertion failures propagate).
pub fn run_threaded(
    n: usize,
    t: usize,
    seed: u64,
    spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>>,
    poll: Duration,
) -> ThreadedOutputs {
    assert!(n > 0, "need at least one party");
    assert_eq!(spawns.len(), n, "one spawn list per party");

    let mut senders: Vec<Sender<Wire>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Wire>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let in_flight = Arc::new(AtomicI64::new(0));

    let dispatch = |from: PartyId,
                    out: Vec<Outgoing>,
                    senders: &[Sender<Wire>],
                    in_flight: &AtomicI64| {
        for o in out {
            in_flight.fetch_add(1, Ordering::SeqCst);
            // Receiver may only disappear after quiescence; ignore failures.
            let _ = senders[o.to.0].send(Wire {
                from,
                session: o.session,
                payload: o.payload,
            });
        }
    };

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (p, instances) in spawns.into_iter().enumerate() {
            let me = PartyId(p);
            let rx = receivers[p].clone();
            let senders = senders.clone();
            let in_flight = Arc::clone(&in_flight);
            handles.push(scope.spawn(move || {
                let rng = ChaCha12Rng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(p as u64),
                );
                let mut node = Node::new(me, n, t, rng);
                for (session, instance) in instances {
                    let out = node.spawn(session, instance);
                    dispatch(me, out, &senders, &in_flight);
                }
                loop {
                    match rx.recv_timeout(poll) {
                        Ok(wire) => {
                            let mut out = Vec::new();
                            node.deliver(wire.from, wire.session, wire.payload, &mut out);
                            dispatch(me, out, &senders, &in_flight);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            // Idle: if nothing is in flight anywhere, the
                            // system is quiescent.
                            if in_flight.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                        }
                    }
                }
                node.outputs()
                    .map(|(s, v)| (s.clone(), v.clone()))
                    .collect::<HashMap<_, _>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("t", 0))
    }

    /// Greets everyone; outputs after hearing from all n parties.
    struct Hello {
        heard: usize,
    }
    impl Instance for Hello {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.heard);
            }
        }
    }

    #[test]
    fn hello_over_threads() {
        let n = 4;
        let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..n)
            .map(|_| {
                vec![(
                    sid(),
                    Box::new(Hello { heard: 0 }) as Box<dyn Instance>,
                )]
            })
            .collect();
        let outputs = run_threaded(n, 1, 7, spawns, Duration::from_millis(5));
        for (p, out) in outputs.iter().enumerate() {
            assert_eq!(
                out.get(&sid()).and_then(|v| v.downcast_ref::<usize>()),
                Some(&n),
                "party {p}"
            );
        }
    }

    #[test]
    fn empty_system_quiesces() {
        let outputs = run_threaded(
            4,
            1,
            0,
            (0..4).map(|_| Vec::new()).collect(),
            Duration::from_millis(2),
        );
        assert!(outputs.iter().all(|o| o.is_empty()));
    }

    /// Ping-pong volley across threads terminates and counts correctly.
    struct Volley {
        start: bool,
        bounces: u32,
    }
    impl Instance for Volley {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.start {
                ctx.send(PartyId(1), 50u32);
            }
        }
        fn on_message(&mut self, from: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if let Some(&v) = p.downcast_ref::<u32>() {
                self.bounces += 1;
                if v == 0 {
                    ctx.output(self.bounces);
                } else {
                    ctx.send(from, v - 1);
                }
            }
        }
    }

    #[test]
    fn ping_pong_over_threads() {
        let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..4)
            .map(|p| {
                vec![(
                    sid(),
                    Box::new(Volley {
                        start: p == 0,
                        bounces: 0,
                    }) as Box<dyn Instance>,
                )]
            })
            .collect();
        let outputs = run_threaded(4, 1, 3, spawns, Duration::from_millis(5));
        // 51 messages bounce between P0 and P1; the terminal catcher
        // outputs its bounce count.
        let total: u32 = outputs
            .iter()
            .filter_map(|o| o.get(&sid()))
            .filter_map(|v| v.downcast_ref::<u32>())
            .sum();
        assert!(total > 0, "someone must have caught the last ball");
    }
}
