//! The threaded runtime: the same [`Instance`] protocol code running over
//! real OS threads and channels instead of the deterministic simulator.
//!
//! Each party is one thread owning its [`Node`]; links are unbounded
//! channels; delivery order is whatever the OS scheduler produces — a
//! genuinely asynchronous (if benign) network. The runtime exists to
//! demonstrate that the protocol implementations are not simulator-bound;
//! quantitative experiments use [`SimNetwork`] for determinism and
//! adversarial scheduling.
//!
//! [`ThreadedRuntime`] implements [`Runtime`], so deployments written
//! against the trait run identically here and on the simulator. Messages
//! route through the same [`Node`] dispatch core as the simulator
//! (shunning, crash handling and metric accounting included); what differs
//! is only who chooses the delivery order.
//!
//! **Nodes persist across episodes** (matching the simulator and the
//! sharded backend): each [`run`](Runtime::run) call moves the long-lived
//! nodes into the worker threads and moves them back at quiescence, so
//! multi-phase deployments — SVSS share→reconstruct chains, shunning
//! campaigns that interleave spawns and runs — carry session state,
//! outputs and shun registries from one episode to the next.
//!
//! Termination uses a global in-flight counter: every send increments it,
//! every completed delivery decrements it; once every party finished its
//! spawn phase and the counter reads zero there are no messages anywhere
//! (channels are empty and no handler is running), so all threads exit.
//!
//! [`SimNetwork`]: crate::SimNetwork

use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::node::{Node, Outgoing};
use crate::payload::Payload;
use crate::runtime::{
    build_node, deliver_counted, DeliverTrace, Metrics, NetConfig, RunReport, Runtime, StopReason,
};
use crate::trace::{TraceEvent, TraceMode, TraceSink};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Wire {
    from: PartyId,
    session: SessionId,
    payload: Payload,
    /// Globally-unique envelope number (`emit * n + sender`), joining the
    /// flight recorder's `Send` and `Deliver` events.
    seq: u64,
}

/// Per-party outputs of a threaded run.
pub type ThreadedOutputs = Vec<HashMap<SessionId, Payload>>;

/// One worker's episode result: the persistent node handed back, plus
/// thread-local metrics.
type WorkerResult = (Node, Metrics);

/// Shared bookkeeping for one threaded episode.
struct EpisodeState {
    in_flight: AtomicI64,
    /// Workers that completed their spawn phase (quiescence requires all).
    started: AtomicUsize,
    /// Total deliveries across all workers, for the step budget.
    steps: AtomicU64,
    limit_hit: AtomicBool,
    /// Set when a worker panics: a dead worker never decrements
    /// `in_flight`, so without this flag the survivors would wait for
    /// quiescence forever instead of letting the panic propagate.
    poisoned: AtomicBool,
    max_steps: u64,
}

/// Unwind guard: marks the episode poisoned if its worker dies before
/// reaching the normal exit (i.e. unwinds through a protocol panic).
struct PoisonOnUnwind {
    state: Arc<EpisodeState>,
    disarmed: bool,
}

impl Drop for PoisonOnUnwind {
    fn drop(&mut self) {
        if !self.disarmed {
            self.state.poisoned.store(true, Ordering::SeqCst);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    from: PartyId,
    out: &mut Vec<Outgoing>,
    senders: &[Sender<Wire>],
    state: &EpisodeState,
    metrics: &mut Metrics,
    n: u64,
    emit: &mut u64,
    sink: Option<&Mutex<Box<dyn TraceSink>>>,
    causal: Option<u64>,
) {
    for o in out.drain(..) {
        metrics.on_sent(&o.session);
        let seq = *emit * n + from.0 as u64;
        *emit += 1;
        if let Some(shared) = sink {
            let mut sink = shared.lock().expect("trace sink poisoned");
            sink.record(TraceEvent::Send {
                step: metrics.steps,
                from,
                to: o.to,
                session: o.session.clone(),
                seq,
                causal_parent: causal,
            });
        }
        state.in_flight.fetch_add(1, Ordering::SeqCst);
        // Receiver may only disappear after quiescence; ignore failures.
        let _ = senders[o.to.0].send(Wire {
            from,
            session: o.session,
            payload: o.payload,
            seq,
        });
    }
}

/// Runs one episode: every party's thread takes ownership of its
/// persistent node, spawns its buffered instances, processes messages to
/// quiescence (or the step budget), and hands the node back with its
/// thread-local metrics.
fn run_episode(
    config: &NetConfig,
    poll: Duration,
    nodes: Vec<Node>,
    spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>>,
    max_steps: u64,
    sink: Option<&Mutex<Box<dyn TraceSink>>>,
) -> (Vec<WorkerResult>, StopReason) {
    let n = config.n;
    assert_eq!(spawns.len(), n, "one spawn list per party");
    assert_eq!(nodes.len(), n, "one node per party");

    let mut senders: Vec<Sender<Wire>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Wire>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let state = Arc::new(EpisodeState {
        in_flight: AtomicI64::new(0),
        started: AtomicUsize::new(0),
        steps: AtomicU64::new(0),
        limit_hit: AtomicBool::new(false),
        poisoned: AtomicBool::new(false),
        max_steps,
    });

    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (p, (mut node, instances)) in nodes.into_iter().zip(spawns).enumerate() {
            let me = PartyId(p);
            let rx = receivers[p].clone();
            let senders = senders.clone();
            let state = Arc::clone(&state);
            handles.push(scope.spawn(move || {
                let mut guard = PoisonOnUnwind {
                    state: Arc::clone(&state),
                    disarmed: false,
                };
                let mut metrics = Metrics::default();
                let mut out = Vec::new();
                let mut emit = 0u64;
                let n_u64 = n as u64;
                for (session, instance) in instances {
                    out = node.spawn(session, instance);
                    // Spawn-phase sends are causal-DAG roots.
                    dispatch(
                        me,
                        &mut out,
                        &senders,
                        &state,
                        &mut metrics,
                        n_u64,
                        &mut emit,
                        sink,
                        None,
                    );
                }
                state.started.fetch_add(1, Ordering::SeqCst);
                loop {
                    // A dead worker never drains its queue or decrements
                    // `in_flight`; stop waiting and let its panic surface.
                    if state.poisoned.load(Ordering::SeqCst) {
                        break;
                    }
                    match rx.recv_timeout(poll) {
                        Ok(wire) => {
                            if state.steps.fetch_add(1, Ordering::SeqCst) >= state.max_steps {
                                // Budget exhausted: drain without
                                // processing so the system still quiesces.
                                state.limit_hit.store(true, Ordering::SeqCst);
                                state.in_flight.fetch_sub(1, Ordering::SeqCst);
                                continue;
                            }
                            {
                                let mut guard =
                                    sink.map(|m| m.lock().expect("trace sink poisoned"));
                                let tctx = guard.as_mut().map(|g| DeliverTrace {
                                    sink: (**g).as_mut(),
                                    seq: wire.seq,
                                    vtime: None,
                                });
                                deliver_counted(
                                    &mut node,
                                    wire.from,
                                    wire.session,
                                    wire.payload,
                                    &mut out,
                                    &mut metrics,
                                    tctx,
                                );
                            }
                            // Emissions below are caused by the delivery
                            // that just ran (this worker's step count).
                            let parent = metrics.steps;
                            dispatch(
                                me,
                                &mut out,
                                &senders,
                                &state,
                                &mut metrics,
                                n_u64,
                                &mut emit,
                                sink,
                                Some(parent),
                            );
                            state.in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            // Idle: once every party spawned and nothing is
                            // in flight anywhere, the system is quiescent.
                            if state.started.load(Ordering::SeqCst) == n
                                && state.in_flight.load(Ordering::SeqCst) == 0
                            {
                                break;
                            }
                        }
                    }
                }
                guard.disarmed = true;
                (node, metrics)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect::<Vec<_>>()
    });

    let stop = if state.limit_hit.load(Ordering::SeqCst) {
        StopReason::StepLimit
    } else {
        StopReason::Quiescent
    };
    (results, stop)
}

/// The OS-thread execution backend.
///
/// Spawns are buffered; [`run`](Runtime::run) executes one episode — every
/// party's thread starts its buffered instances, messages flow until the
/// system is quiescent (or the step budget is hit), and outputs plus
/// merged metrics become readable. Parties [`crash`](Runtime::crash)ed
/// before `run` start crashed: they never process or send.
///
/// Compared to [`SimNetwork`], delivery order is real OS nondeterminism:
/// there is no scheduler to choose, no delivery trace, and `crash_at`
/// (step-indexed crashes) does not exist because wall-clock runs have no
/// global step counter a protocol could agree on. Per-party RNGs still
/// derive from `config.seed`, so protocol-local randomness matches the
/// simulator's for the same seed.
///
/// Node state **persists across episodes** (as on the simulator and the
/// sharded backend): a later `spawn` + `run` continues on the same nodes,
/// so sessions, outputs and shun registries accumulate — share→rec
/// chains and shunning campaigns run unchanged under `--runtime threaded`.
///
/// [`SimNetwork`]: crate::SimNetwork
///
/// # Examples
///
/// ```
/// use aft_sim::{Context, Instance, NetConfig, PartyId, Payload, Runtime, RuntimeExt,
///               SessionId, SessionTag, ThreadedRuntime};
///
/// struct Hello { heard: usize }
/// impl Instance for Hello {
///     fn on_start(&mut self, ctx: &mut Context<'_>) { ctx.send_all(1u8); }
///     fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
///         self.heard += 1;
///         if self.heard == ctx.n() { ctx.output(self.heard); }
///     }
/// }
///
/// let sid = SessionId::root().child(SessionTag::new("hello", 0));
/// let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 7));
/// for p in 0..4 {
///     rt.spawn(PartyId(p), sid.clone(), Box::new(Hello { heard: 0 }));
/// }
/// let report = rt.run(1_000_000);
/// assert_eq!(report.stop, aft_sim::StopReason::Quiescent);
/// for p in 0..4 {
///     assert_eq!(rt.output_as::<usize>(PartyId(p), &sid), Some(&4));
/// }
/// ```
pub struct ThreadedRuntime {
    config: NetConfig,
    poll: Duration,
    /// The persistent per-party nodes, kept across episodes.
    nodes: Vec<Node>,
    spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>>,
    metrics: Metrics,
    /// Structured flight recorder (see [`crate::trace`]); shared with the
    /// worker threads behind a mutex during episodes. Event order reflects
    /// real OS interleaving — unlike the deterministic backends.
    sink: Option<Box<dyn TraceSink>>,
}

impl ThreadedRuntime {
    /// Default idle-poll interval for quiescence detection.
    pub const DEFAULT_POLL: Duration = Duration::from_millis(2);

    /// Creates a threaded runtime with the default poll interval.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n < 3t + 1` (the resilience bound assumed by
    /// every protocol in this workspace).
    pub fn new(config: NetConfig) -> Self {
        Self::with_poll(config, Self::DEFAULT_POLL)
    }

    /// Creates a threaded runtime with an explicit idle-poll interval.
    ///
    /// # Panics
    ///
    /// See [`ThreadedRuntime::new`].
    pub fn with_poll(config: NetConfig, poll: Duration) -> Self {
        assert!(config.n > 0, "need at least one party");
        assert!(
            config.n > 3 * config.t,
            "optimal resilience requires n >= 3t + 1 (n={}, t={})",
            config.n,
            config.t
        );
        ThreadedRuntime {
            config,
            poll,
            nodes: (0..config.n).map(|p| build_node(&config, p)).collect(),
            spawns: (0..config.n).map(|_| Vec::new()).collect(),
            metrics: Metrics::default(),
            sink: None,
        }
    }

    /// All recorded outputs per party, cloned out of the persistent nodes
    /// (accumulated across episodes).
    pub fn outputs(&self) -> ThreadedOutputs {
        self.nodes
            .iter()
            .map(|node| {
                node.outputs()
                    .map(|(s, v)| (s.clone(), v.clone()))
                    .collect()
            })
            .collect()
    }

    /// Immutable access to a party's persistent node (outputs, shun
    /// registry, …).
    pub fn node(&self, party: PartyId) -> &Node {
        &self.nodes[party.0]
    }
}

impl Runtime for ThreadedRuntime {
    fn config(&self) -> &NetConfig {
        &self.config
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        self.spawns[party.0].push((session, instance));
    }

    fn crash(&mut self, party: PartyId) {
        self.nodes[party.0].crash();
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::Crash {
                step: self.metrics.steps,
                party,
            });
        }
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::EpisodeStart {
                step: self.metrics.steps,
            });
        }
        let spawns = std::mem::replace(
            &mut self.spawns,
            (0..self.config.n).map(|_| Vec::new()).collect(),
        );
        let nodes = std::mem::take(&mut self.nodes);
        let shared = self.sink.take().map(Mutex::new);
        let (results, stop) = run_episode(
            &self.config,
            self.poll,
            nodes,
            spawns,
            max_steps,
            shared.as_ref(),
        );
        self.sink = shared.map(|m| m.into_inner().expect("trace sink poisoned"));
        for (node, metrics) in results {
            self.metrics.merge(&metrics);
            self.nodes.push(node);
        }
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::EpisodeEnd {
                step: self.metrics.steps,
            });
        }
        RunReport {
            stop,
            steps: self.metrics.steps,
            metrics: self.metrics.clone(),
            trace: self
                .sink
                .as_ref()
                .map(|s| crate::trace::summarize(s.as_ref())),
        }
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.nodes[party.0].output(session)
    }

    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        // Between episodes the nodes live here (workers only borrow them
        // during `run`), so the arena GC works exactly as on the
        // simulator: the session's output, early buffer and arena slot
        // are released and a later spawn of the same id starts fresh.
        self.nodes[party.0].retire_session(session)
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    fn set_trace(&mut self, mode: TraceMode) {
        self.sink = mode.build();
    }

    fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    fn backend_name(&self) -> &'static str {
        "threaded"
    }
}

/// Runs one protocol deployment over OS threads (function-style shorthand
/// for [`ThreadedRuntime`]).
///
/// `spawns[p]` lists the `(session, instance)` pairs party `p` starts
/// with. The function returns when the system is quiescent (no in-flight
/// messages) — protocols that almost-surely terminate reach this state —
/// and yields every party's recorded session outputs.
///
/// `poll` is the idle-polling interval used to detect quiescence
/// (tests use a few milliseconds).
///
/// # Panics
///
/// Panics if `n == 0`, `n < 3t + 1`, if `spawns.len() != n`, or if a
/// worker thread panics (protocol assertion failures propagate).
pub fn run_threaded(
    n: usize,
    t: usize,
    seed: u64,
    spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>>,
    poll: Duration,
) -> ThreadedOutputs {
    assert_eq!(spawns.len(), n, "one spawn list per party");
    let mut rt = ThreadedRuntime::with_poll(NetConfig::new(n, t, seed), poll);
    for (p, instances) in spawns.into_iter().enumerate() {
        for (session, instance) in instances {
            rt.spawn(PartyId(p), session, instance);
        }
    }
    rt.run(u64::MAX);
    rt.outputs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::RuntimeExt;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("t", 0))
    }

    /// Greets everyone; outputs after hearing from all n parties.
    struct Hello {
        heard: usize,
    }
    impl Instance for Hello {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.heard);
            }
        }
    }

    #[test]
    fn hello_over_threads() {
        let n = 4;
        let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..n)
            .map(|_| vec![(sid(), Box::new(Hello { heard: 0 }) as Box<dyn Instance>)])
            .collect();
        let outputs = run_threaded(n, 1, 7, spawns, Duration::from_millis(5));
        for (p, out) in outputs.iter().enumerate() {
            assert_eq!(
                out.get(&sid()).and_then(|v| v.downcast_ref::<usize>()),
                Some(&n),
                "party {p}"
            );
        }
    }

    #[test]
    fn empty_system_quiesces() {
        let outputs = run_threaded(
            4,
            1,
            0,
            (0..4).map(|_| Vec::new()).collect(),
            Duration::from_millis(2),
        );
        assert!(outputs.iter().all(|o| o.is_empty()));
    }

    /// Ping-pong volley across threads terminates and counts correctly.
    struct Volley {
        start: bool,
        bounces: u32,
    }
    impl Instance for Volley {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.start {
                ctx.send(PartyId(1), 50u32);
            }
        }
        fn on_message(&mut self, from: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if let Some(v) = p.to_msg::<u32>() {
                self.bounces += 1;
                if v == 0 {
                    ctx.output(self.bounces);
                } else {
                    ctx.send(from, v - 1);
                }
            }
        }
    }

    #[test]
    fn ping_pong_over_threads() {
        let spawns: Vec<Vec<(SessionId, Box<dyn Instance>)>> = (0..4)
            .map(|p| {
                vec![(
                    sid(),
                    Box::new(Volley {
                        start: p == 0,
                        bounces: 0,
                    }) as Box<dyn Instance>,
                )]
            })
            .collect();
        let outputs = run_threaded(4, 1, 3, spawns, Duration::from_millis(5));
        // 51 messages bounce between P0 and P1; the terminal catcher
        // outputs its bounce count.
        let total: u32 = outputs
            .iter()
            .filter_map(|o| o.get(&sid()))
            .filter_map(|v| v.downcast_ref::<u32>())
            .sum();
        assert!(total > 0, "someone must have caught the last ball");
    }

    #[test]
    fn runtime_metrics_account_for_messages() {
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 5));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        // 4 parties broadcast once to 4 destinations each.
        assert_eq!(report.metrics.sent, 16);
        assert_eq!(report.metrics.delivered, 16);
        assert_eq!(report.metrics.sent_by_kind("t"), 16);
        assert_eq!(report.metrics.steps, 16);
    }

    #[test]
    fn crashed_party_is_inert_and_counted() {
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 5));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        rt.crash(PartyId(3));
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        // The crashed party neither sends nor outputs; others hear only 3
        // greetings so they never output either — but the system quiesces.
        assert!(rt.output(PartyId(3), &sid()).is_none());
        assert_eq!(report.metrics.sent, 12, "three live broadcasters");
        assert_eq!(report.metrics.dropped_crashed, 3, "deliveries to P3");
    }

    #[test]
    fn nodes_persist_across_episodes() {
        // Episode 1 completes a session; episode 2 spawns a second session
        // on the SAME nodes: both outputs stay readable, matching the
        // simulator and sharded backends.
        let other = SessionId::root().child(SessionTag::new("second", 0));
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 8));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            rt.spawn(PartyId(p), other.clone(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&4));
            assert_eq!(rt.output_as::<usize>(PartyId(p), &other), Some(&4));
        }
        // Spawning the same session again is idempotent on the persistent
        // node: no new sends occur.
        let sent_before = rt.metrics().sent;
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        rt.run(u64::MAX);
        assert_eq!(rt.metrics().sent, sent_before, "re-spawn is a no-op");
    }

    #[test]
    fn retire_session_frees_slot_for_respawn() {
        // Regression: retire_session used to be the trait's no-op default
        // on this backend, so multi-tenant drivers leaked arena slots and
        // a post-retire respawn was silently ignored. Retiring must free
        // the slot (returning true) and a respawn of the SAME session id
        // must start a fresh instance that sends again.
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 8));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        rt.run(u64::MAX);
        assert_eq!(rt.metrics().sent, 16);
        for p in 0..4 {
            assert!(rt.retire_session(PartyId(p), &sid()), "party {p}");
            assert!(rt.output(PartyId(p), &sid()).is_none(), "output released");
        }
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(rt.metrics().sent, 32, "respawn after retire sends again");
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&4));
        }
    }

    #[test]
    fn crash_persists_across_episodes() {
        let other = SessionId::root().child(SessionTag::new("second", 0));
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 9));
        rt.crash(PartyId(3));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        rt.run(u64::MAX);
        // Second episode: the crashed node stays crashed.
        for p in 0..4 {
            rt.spawn(PartyId(p), other.clone(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert!(rt.output(PartyId(3), &other).is_none());
        assert_eq!(report.metrics.sent, 24, "3 live broadcasters × 2 episodes");
    }

    #[test]
    fn step_limit_stops_runaway() {
        /// Endless self-ping.
        struct Forever;
        impl Instance for Forever {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let me = ctx.me();
                ctx.send(me, 0u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                let me = ctx.me();
                ctx.send(me, 0u8);
            }
        }
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 1));
        rt.spawn(PartyId(0), sid(), Box::new(Forever));
        let report = rt.run(500);
        assert_eq!(report.stop, StopReason::StepLimit);
        assert!(report.metrics.steps <= 501, "{}", report.metrics.steps);
    }

    #[test]
    fn runtime_trait_object_works() {
        let mut rt: Box<dyn Runtime> = Box::new(ThreadedRuntime::new(NetConfig::new(4, 1, 9)));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Hello { heard: 0 }));
        }
        let report = rt.run(u64::MAX);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(rt.backend_name(), "threaded");
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&4));
        }
    }

    #[test]
    #[should_panic(expected = "optimal resilience")]
    fn rejects_insufficient_n() {
        let _ = ThreadedRuntime::new(NetConfig::new(3, 1, 0));
    }

    /// A protocol panic in ONE worker must propagate out of `run` instead
    /// of deadlocking the surviving workers (which would otherwise wait
    /// forever for the dead worker's in-flight count to drain).
    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn single_worker_panic_propagates_instead_of_deadlocking() {
        struct Poker;
        impl Instance for Poker {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(PartyId(3), 1u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        }
        struct Bomb;
        impl Instance for Bomb {
            fn on_start(&mut self, _ctx: &mut Context<'_>) {}
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {
                panic!("protocol invariant violated");
            }
        }
        let mut rt = ThreadedRuntime::new(NetConfig::new(4, 1, 1));
        rt.spawn(PartyId(0), sid(), Box::new(Poker));
        rt.spawn(PartyId(3), sid(), Box::new(Bomb));
        // Keep the other parties listening so they would spin forever if
        // the poison flag did not release them.
        rt.spawn(PartyId(1), sid(), Box::new(Hello { heard: 0 }));
        rt.spawn(PartyId(2), sid(), Box::new(Hello { heard: 0 }));
        rt.run(u64::MAX);
    }
}
