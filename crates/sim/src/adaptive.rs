//! Adaptive adversary: mid-run corruption decisions driven by observed traffic.
//!
//! The paper's model grants the adversary *adaptive* corruption of up to t
//! parties: it watches the run and picks victims based on what it sees (e.g.
//! corrupt whoever the weak coin favors). This module supplies the machinery:
//!
//! - [`ObsEvent`]: the observation stream an adaptive attack sees, fed by the
//!   scheduler from the same `Deliver`/`SchedulerPick` facts the trace layer
//!   records, so decisions are a pure function of `(seed, scenario string)`.
//! - [`CorruptionPlan`]: the victim ledger. Enforces the ≤ t distinct-victims
//!   cap; every refused corruption is counted so tests can assert the cap.
//! - [`AdaptiveAttack`]: the policy trait protocol crates implement and
//!   register under `corrupt=adaptive:<name>[:args]@*`.
//! - [`AdaptiveShell`]: a wrapper instance deployed around every honest party.
//!   While the party is un-corrupted the shell is perfectly transparent; once
//!   the controller marks the party corrupted the shell switches to the
//!   selected byzantine behavior.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use rand::Rng;

use crate::behaviors::Garbage;
use crate::instance::{Context, Instance};
use crate::{PartyId, Payload, SessionTag};

/// One observation delivered to an adaptive attack.
///
/// Events mirror the trace subsystem's `Deliver` / `SchedulerPick` records but
/// carry only schedule-stable facts (no payload bytes): adaptive decisions must
/// replay bit-for-bit from `(seed, scenario string)`.
#[derive(Debug, Clone)]
pub enum ObsEvent {
    /// A message was delivered to `party`.
    Deliver {
        /// Receiving party.
        party: PartyId,
        /// Sending party.
        from: PartyId,
        /// Session kind of the innermost session tag (`"root"` at the root).
        kind: &'static str,
        /// Delivery step counter on the observing runtime.
        step: u64,
    },
    /// The scheduler picked a party's queue slot to run.
    SchedulerPick {
        /// Party whose traffic was picked.
        party: PartyId,
        /// Queue length at pick time.
        queued: usize,
        /// Number of envelopes in the picked batch.
        run: usize,
    },
}

/// What a corrupted party does once the adversary flips it.
#[derive(Debug, Clone, Copy)]
pub enum CorruptMode {
    /// Drop all activity: never deliver to the inner instance, send nothing.
    Mute,
    /// Spray per-recipient-distinct garbage on each activation, up to a
    /// lifetime budget of activations, then fall silent.
    Equivocate {
        /// Number of activations that spray garbage before going mute.
        budget: u64,
    },
    /// Keep one self-addressed garbage message in flight forever. The run can
    /// never quiesce: this is the search suite's planted bug.
    Storm,
}

/// The adversary's victim ledger: who is corrupted, in which mode, capped at
/// t distinct victims for the lifetime of the run (across episodes).
#[derive(Debug, Clone)]
pub struct CorruptionPlan {
    n: usize,
    t: usize,
    modes: Vec<Option<CorruptMode>>,
    victims: BTreeSet<usize>,
    refused: u64,
}

impl CorruptionPlan {
    /// Empty ledger for an `n`-party system tolerating `t` corruptions.
    pub fn new(n: usize, t: usize) -> Self {
        CorruptionPlan {
            n,
            t,
            modes: vec![None; n],
            victims: BTreeSet::new(),
            refused: 0,
        }
    }

    /// Record a statically-corrupted party (from the scenario's fault plan) so
    /// the adaptive cap accounts for it without assigning a shell mode.
    pub fn seed_victim(&mut self, party: PartyId) {
        if party.0 < self.n {
            self.victims.insert(party.0);
        }
    }

    /// Attempt to corrupt `party` in `mode`. Refused (returning `false`, and
    /// counted in [`refused`](Self::refused)) if the party id is out of range
    /// or the ledger already holds t distinct victims and `party` is not one
    /// of them. Re-corrupting an existing victim switches its mode.
    pub fn corrupt(&mut self, party: PartyId, mode: CorruptMode) -> bool {
        if party.0 >= self.n || (!self.victims.contains(&party.0) && self.victims.len() >= self.t) {
            self.refused += 1;
            return false;
        }
        self.victims.insert(party.0);
        self.modes[party.0] = Some(mode);
        true
    }

    /// The mode `party` is corrupted in, if the adversary flipped it.
    pub fn mode_of(&self, party: PartyId) -> Option<CorruptMode> {
        self.modes.get(party.0).copied().flatten()
    }

    /// Whether `party` counts against the victim cap (static or adaptive).
    pub fn is_victim(&self, party: PartyId) -> bool {
        self.victims.contains(&party.0)
    }

    /// All victims (static and adaptive), ascending.
    pub fn victims(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.victims.iter().map(|&p| PartyId(p))
    }

    /// How many corruption attempts the cap refused.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Corruption budget.
    pub fn t(&self) -> usize {
        self.t
    }
}

/// An adaptive corruption policy.
///
/// Implementations observe the delivery stream and flip victims through the
/// [`CorruptionPlan`]; the plan enforces the t-cap so policies may fire
/// optimistically.
pub trait AdaptiveAttack: Send {
    /// Called once per protocol episode (e.g. `"svss-share"`, `"svss-rec"`)
    /// before parties are spawned.
    fn on_episode(&mut self, episode: &str, plan: &mut CorruptionPlan) {
        let _ = (episode, plan);
    }

    /// Called for every observation event, in schedule order.
    fn observe(&mut self, ev: &ObsEvent, plan: &mut CorruptionPlan);
}

/// Pairs a policy with its victim ledger; shared between the runtime (which
/// feeds observations) and the per-party [`AdaptiveShell`]s (which read modes).
pub struct AdaptiveController {
    policy: Box<dyn AdaptiveAttack>,
    plan: CorruptionPlan,
}

impl AdaptiveController {
    /// Build a controller around `policy` with ledger `plan`.
    pub fn new(policy: Box<dyn AdaptiveAttack>, plan: CorruptionPlan) -> Self {
        AdaptiveController { policy, plan }
    }

    /// Feed one observation to the policy.
    pub fn observe(&mut self, ev: &ObsEvent) {
        self.policy.observe(ev, &mut self.plan);
    }

    /// Announce a new episode to the policy.
    pub fn on_episode(&mut self, episode: &str) {
        self.policy.on_episode(episode, &mut self.plan);
    }

    /// Read access to the victim ledger.
    pub fn plan(&self) -> &CorruptionPlan {
        &self.plan
    }

    /// Mutable access to the victim ledger (used to seed static victims).
    pub fn plan_mut(&mut self) -> &mut CorruptionPlan {
        &mut self.plan
    }
}

/// Shared handle to the run's adaptive controller.
pub type SharedAdaptive = Arc<Mutex<AdaptiveController>>;

fn lock(ctrl: &SharedAdaptive) -> std::sync::MutexGuard<'_, AdaptiveController> {
    ctrl.lock().expect("adaptive controller lock poisoned")
}

/// Wrapper deployed around every honest instance in an adaptive scenario.
///
/// Until the controller corrupts this party, every callback passes through to
/// the inner instance untouched — the shell draws no randomness and sends
/// nothing, so schedules are byte-identical to the shell-free run (the
/// differential conformance test pins this). Once corrupted, the inner
/// instance is cut off and the shell acts out the assigned [`CorruptMode`].
pub struct AdaptiveShell {
    inner: Box<dyn Instance>,
    ctrl: SharedAdaptive,
    me: PartyId,
    equiv_events: u64,
}

impl AdaptiveShell {
    /// Wrap `inner` (party `me`'s honest instance) under controller `ctrl`.
    pub fn new(inner: Box<dyn Instance>, ctrl: SharedAdaptive, me: PartyId) -> Self {
        AdaptiveShell {
            inner,
            ctrl,
            me,
            equiv_events: 0,
        }
    }

    fn mode(&self) -> Option<CorruptMode> {
        lock(&self.ctrl).plan().mode_of(self.me)
    }

    fn act(&mut self, mode: CorruptMode, ctx: &mut Context<'_>) {
        match mode {
            CorruptMode::Mute => {}
            CorruptMode::Equivocate { budget } => {
                if self.equiv_events < budget {
                    self.equiv_events += 1;
                    let base: u64 = ctx.rng().gen();
                    for p in ctx.parties() {
                        ctx.send(p, Garbage(base ^ (p.0 as u64).wrapping_mul(0x9E37)));
                    }
                }
            }
            CorruptMode::Storm => {
                let me = self.me;
                let noise: u64 = ctx.rng().gen();
                ctx.send(me, Garbage(noise));
            }
        }
    }
}

impl Instance for AdaptiveShell {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        match self.mode() {
            None => self.inner.on_start(ctx),
            Some(mode) => self.act(mode, ctx),
        }
    }

    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        match self.mode() {
            None => self.inner.on_message(from, payload, ctx),
            Some(mode) => self.act(mode, ctx),
        }
    }

    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        match self.mode() {
            None => self.inner.on_child_output(child, output, ctx),
            Some(mode) => self.act(mode, ctx),
        }
    }
}

/// Built-in constant policy: corrupt a fixed target set in a fixed mode at
/// episode start, ignore all observations.
///
/// Grammar: `adaptive:pin:<mode>:<p1+p2+...>@*` with `<mode>` one of
/// `silent`/`mute`, `equivocate`, `storm`. With `mode=silent` this is
/// behaviorally identical to the static `silent@p` plan — the differential
/// conformance test uses that equivalence to prove the observation hook does
/// not perturb schedules.
pub struct PinPolicy {
    targets: Vec<PartyId>,
    mode: CorruptMode,
}

impl PinPolicy {
    /// Parse `"<mode>:<p1+p2+...>"` (the args after `adaptive:pin:`).
    pub fn parse(args: &str) -> Option<PinPolicy> {
        let (mode_str, parties) = args.split_once(':')?;
        let mode = match mode_str {
            "silent" | "mute" => CorruptMode::Mute,
            "equivocate" => CorruptMode::Equivocate {
                budget: crate::scenario::DEFAULT_EQUIVOCATE_BUDGET,
            },
            "storm" => CorruptMode::Storm,
            _ => return None,
        };
        let mut targets = Vec::new();
        for part in parties.split('+') {
            targets.push(PartyId(part.trim().parse().ok()?));
        }
        if targets.is_empty() {
            return None;
        }
        Some(PinPolicy { targets, mode })
    }
}

impl AdaptiveAttack for PinPolicy {
    fn on_episode(&mut self, _episode: &str, plan: &mut CorruptionPlan) {
        for &p in &self.targets {
            plan.corrupt(p, self.mode);
        }
    }

    fn observe(&mut self, _ev: &ObsEvent, _plan: &mut CorruptionPlan) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_enforces_t_cap() {
        let mut plan = CorruptionPlan::new(7, 2);
        assert!(plan.corrupt(PartyId(3), CorruptMode::Mute));
        assert!(plan.corrupt(PartyId(5), CorruptMode::Storm));
        assert!(!plan.corrupt(PartyId(1), CorruptMode::Mute));
        assert_eq!(plan.refused(), 1);
        // Re-corrupting an existing victim is allowed (mode switch).
        assert!(plan.corrupt(PartyId(3), CorruptMode::Equivocate { budget: 4 }));
        assert!(matches!(
            plan.mode_of(PartyId(3)),
            Some(CorruptMode::Equivocate { budget: 4 })
        ));
        assert_eq!(
            plan.victims().collect::<Vec<_>>(),
            vec![PartyId(3), PartyId(5)]
        );
    }

    #[test]
    fn static_victims_count_against_cap() {
        let mut plan = CorruptionPlan::new(4, 1);
        plan.seed_victim(PartyId(2));
        assert!(!plan.corrupt(PartyId(0), CorruptMode::Mute));
        assert_eq!(plan.refused(), 1);
        // The static victim itself may be escalated.
        assert!(plan.corrupt(PartyId(2), CorruptMode::Mute));
    }

    #[test]
    fn out_of_range_refused() {
        let mut plan = CorruptionPlan::new(4, 3);
        assert!(!plan.corrupt(PartyId(9), CorruptMode::Mute));
        assert_eq!(plan.refused(), 1);
    }

    #[test]
    fn pin_parse() {
        let p = PinPolicy::parse("silent:3").unwrap();
        assert_eq!(p.targets, vec![PartyId(3)]);
        assert!(matches!(p.mode, CorruptMode::Mute));
        let p = PinPolicy::parse("storm:1+2").unwrap();
        assert_eq!(p.targets, vec![PartyId(1), PartyId(2)]);
        assert!(matches!(p.mode, CorruptMode::Storm));
        assert!(PinPolicy::parse("storm:").is_none());
        assert!(PinPolicy::parse("loud:1").is_none());
        assert!(PinPolicy::parse("storm").is_none());
    }
}
