//! Seed-parallel Monte-Carlo driver.
//!
//! Probabilistic protocol guarantees ("with probability at least 1/2 − ε…")
//! are verified empirically by running many independent, deterministic
//! simulations. Each trial is a pure function of its seed, so trials can run
//! on OS threads with no shared state.

/// Runs `trial(seed)` for every seed in `seeds`, in parallel across up to
/// `threads` OS threads, and returns results in seed order.
///
/// Each trial must be deterministic in its seed; the driver imposes no
/// other structure.
///
/// # Examples
///
/// ```
/// use aft_sim::run_trials;
/// let outcomes = run_trials(0..100u64, 4, |seed| seed % 2 == 0);
/// assert_eq!(outcomes.iter().filter(|&&b| b).count(), 50);
/// ```
pub fn run_trials<T, I, F>(seeds: I, threads: usize, trial: F) -> Vec<T>
where
    T: Send,
    I: IntoIterator<Item = u64>,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let threads = threads.max(1).min(seeds.len().max(1));
    if threads == 1 || seeds.len() <= 1 {
        return seeds.into_iter().map(trial).collect();
    }
    let mut results: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let out = trial(seeds[i]);
                let mut guard = results_mutex.lock().unwrap();
                guard[i] = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("trial completed"))
        .collect()
}

/// Summary statistics for a Bernoulli estimate: successes over trials, with
/// a normal-approximation 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    /// Number of successes.
    pub successes: usize,
    /// Number of trials.
    pub trials: usize,
}

impl Bernoulli {
    /// Builds the summary from an iterator of outcomes.
    pub fn from_outcomes<I: IntoIterator<Item = bool>>(outcomes: I) -> Self {
        let mut successes = 0;
        let mut trials = 0;
        for b in outcomes {
            trials += 1;
            if b {
                successes += 1;
            }
        }
        Bernoulli { successes, trials }
    }

    /// The point estimate `successes / trials` (0 when no trials ran).
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Normal-approximation 95% confidence half-width
    /// (`1.96 * sqrt(p(1-p)/n)`).
    pub fn ci95(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.estimate();
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }
}

impl std::fmt::Display for Bernoulli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}/{})",
            self.estimate(),
            self.ci95(),
            self.successes,
            self.trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order() {
        let out = run_trials(0..50u64, 8, |s| s * 2);
        assert_eq!(out, (0..50u64).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_threaded_path() {
        let out = run_trials(0..5u64, 1, |s| s);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_seeds() {
        let out: Vec<u64> = run_trials(std::iter::empty(), 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn bernoulli_stats() {
        let b = Bernoulli::from_outcomes([true, false, true, true]);
        assert_eq!(b.successes, 3);
        assert_eq!(b.trials, 4);
        assert!((b.estimate() - 0.75).abs() < 1e-12);
        assert!(b.ci95() > 0.0);
        let empty = Bernoulli::from_outcomes(std::iter::empty());
        assert_eq!(empty.estimate(), 0.0);
        assert_eq!(empty.ci95(), 0.0);
        let shown = format!("{b}");
        assert!(shown.contains("3/4"), "{shown}");
    }
}
