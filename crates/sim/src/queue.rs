//! The in-flight message queue behind the simulator's delivery loop.
//!
//! Envelopes live in a slab of **batches** next to their scheduler-visible
//! [`MsgMeta`]; what the [`Scheduler`] sees is an arrival-ordered view of
//! those lightweight records (sender, receiver, head sequence number, age,
//! kind, batch size). Schedulers index into that view and never touch
//! payloads or session paths.
//!
//! **Batching**: consecutive envelopes with the same `(sender, receiver)`
//! pair collapse into a single slab record holding the run of envelopes in
//! FIFO order. The scheduler's pick granularity is the batch; delivery
//! granularity stays the single message — [`take`](Pending::take) pops the
//! *head* of the picked batch and the record keeps its arrival position
//! until the run is drained. The arrival list, the Fenwick index and the
//! sharded backend's cross-shard channels therefore move O(batches)
//! records instead of O(messages), and draining a batch walks one
//! contiguous buffer instead of hopping across the slab.
//!
//! The live view is an append-only arrival list with tombstones indexed
//! by a Fenwick tree, so removal at an arbitrary arrival position — a
//! random scheduler's every pick — costs O(log len) instead of an O(len)
//! shift, the front position (fairness-cap forced deliveries, FIFO) is
//! O(1), and a queue that drains to empty (every sharded-simulator
//! epoch) resets for free. Dead entries are compacted away when the list
//! regrows. A pick that only shortens a batch does not touch the Fenwick
//! tree at all.
//!
//! [`Scheduler`]: crate::Scheduler

use crate::ids::PartyId;
use crate::network::Envelope;
use std::collections::VecDeque;

/// Scheduler-visible metadata of one in-flight batch (a FIFO run of
/// envelopes sharing a `(sender, receiver)` pair — often of length 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Global send sequence number of the batch head (unique, monotone).
    pub seq: u64,
    /// Delivery step at which the batch head was sent.
    pub born_step: u64,
    /// Leaf session kind of the batch head (`"root"` for root sessions).
    pub kind: &'static str,
    /// Number of envelopes remaining in the batch (≥ 1).
    pub count: u32,
}

impl MsgMeta {
    /// Metadata for a batch headed by `env` with `count` envelopes.
    fn of(env: &Envelope, count: u32) -> MsgMeta {
        MsgMeta {
            from: env.from,
            to: env.to,
            seq: env.seq,
            born_step: env.born_step,
            kind: env.session.last().map_or("root", |t| t.kind),
            count,
        }
    }
}

/// A Fenwick (binary indexed) tree of 0/1 counts over arrival positions:
/// `select(k)` finds the position of the `k`-th live entry in
/// O(log capacity).
#[derive(Default)]
struct LiveIndex {
    /// 1-based partial-sum tree; capacity is `tree.len() - 1`.
    tree: Vec<u32>,
}

impl LiveIndex {
    #[cfg(test)]
    fn with_capacity(cap: usize) -> Self {
        LiveIndex {
            tree: vec![0; cap + 1],
        }
    }

    fn capacity(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    /// Adds `delta` at 0-based position `pos`.
    fn add(&mut self, pos: usize, delta: i32) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// 0-based position of the `k`-th live entry (`k ≥ 1`).
    fn select(&self, k: u32) -> usize {
        let cap = self.capacity();
        let mut step = cap.next_power_of_two();
        if step > cap {
            step >>= 1;
        }
        let mut pos = 0;
        let mut remaining = k;
        while step > 0 {
            let next = pos + step;
            if next <= cap && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // prefix_sum(pos) < k ≤ prefix_sum(pos + 1): 0-based index `pos`
    }
}

/// Batched envelope storage of one slab record. Singletons — the common
/// case on the single-queue simulator — hold their envelope inline; only
/// a real run of same-pair envelopes pays for a deque (recycled through
/// [`Pending::spare`], so steady-state batching does not allocate either).
enum Batch {
    /// Exactly one envelope, stored inline.
    One(Envelope),
    /// A FIFO run of two or more (until drained) envelopes.
    Many(VecDeque<Envelope>),
}

/// One slab record: a batch plus its remaining length and current
/// arrival position. Scheduler-visible [`MsgMeta`] is *derived* from the
/// batch head on demand rather than stored — the random scheduler never
/// reads it, so the per-push hot path writes one small record instead of
/// materializing (and later refreshing) full metadata.
struct Record {
    /// Envelopes remaining in the batch (≥ 1).
    count: u32,
    /// Current arrival position (kept current by compaction, which is
    /// what makes [`BatchSlot`] handles stable).
    pos: usize,
    /// The batched envelopes.
    batch: Batch,
}

impl Record {
    /// The batch's oldest (next-delivered) envelope.
    fn head(&self) -> &Envelope {
        match &self.batch {
            Batch::One(env) => env,
            Batch::Many(run) => run.front().expect("live batch is non-empty"),
        }
    }

    /// The derived scheduler-visible metadata.
    fn meta(&self) -> MsgMeta {
        MsgMeta::of(self.head(), self.count)
    }
}

/// A stable handle to one live batch record, valid until the batch's run
/// drains — unlike arrival indices, it survives pushes, compactions and
/// removals of *other* batches, so a caller delivering a whole run
/// resolves the arrival order once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSlot(u32);

/// The arrival-ordered in-flight queue.
///
/// Index `0` is always the oldest pending batch; pushes append at the back
/// (or extend the youngest batch when the `(sender, receiver)` pair
/// matches). [`take`](Pending::take) pops one envelope by arrival index in
/// O(log batches) — O(1) at the front and O(1) whenever the pick leaves
/// the batch non-empty.
#[derive(Default)]
pub struct Pending {
    /// Slab of batch records; `None` slots are free.
    slots: Vec<Option<Record>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// Recycled (empty) deques from drained multi-envelope batches.
    spare: Vec<VecDeque<Envelope>>,
    /// Arrival-ordered slot ids (append-only between compactions).
    arrival: Vec<u32>,
    /// Tombstones, parallel to `arrival`.
    alive: Vec<bool>,
    /// Fenwick tree of live counts over `arrival` positions.
    index: LiveIndex,
    /// First possibly-live position in `arrival`.
    head: usize,
    /// Number of live batches.
    live: usize,
    /// Number of in-flight envelopes across all batches.
    total: usize,
    /// Slot id of the most recently pushed batch while it is still live —
    /// the only merge target, so batching is a pure function of the
    /// push/take sequence (tombstone compaction cannot change it).
    tail: Option<u32>,
    /// `(from, to)` of the live tail batch, mirrored inline (valid while
    /// `tail` is `Some`): the per-push merge probe reads this field
    /// instead of chasing `tail` into the slot storage — a guaranteed
    /// cache miss on workloads whose consecutive sends never merge.
    tail_pair: (PartyId, PartyId),
    /// `born_step` of the head batch's oldest envelope, mirrored inline
    /// (valid while `live > 0`): the per-pick fairness-age check reads
    /// this field instead of resolving `arrival[head]` into the slots.
    head_born: u64,
    /// Batch deques recycled from [`spare`](Pending::spare) instead of
    /// allocated (pool-stats counter, folded into run metrics).
    reused: u64,
    /// Batch deques allocated because the spare pool was empty.
    allocated: u64,
    /// Reusable survivor buffer for [`compact_and_grow`]: swapped with
    /// `arrival` on every rebuild, so steady-state compaction allocates
    /// nothing.
    ///
    /// [`compact_and_grow`]: Pending::compact_and_grow
    compact_scratch: Vec<u32>,
}

impl Pending {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Pending::default()
    }

    /// Number of in-flight *batches* — the scheduler's pick space.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of in-flight *envelopes* across all batches.
    pub fn messages(&self) -> usize {
        self.total
    }

    /// Arrival position of the `i`-th oldest live batch.
    fn position(&self, i: usize) -> usize {
        assert!(i < self.live, "index {i} beyond live queue ({})", self.live);
        if i == 0 {
            // The head skips tombstones eagerly, so it is live.
            self.head
        } else {
            self.index.select(i as u32 + 1)
        }
    }

    /// Metadata of the `i`-th oldest in-flight batch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn meta(&self, i: usize) -> MsgMeta {
        let slot = self.arrival[self.position(i)];
        self.slots[slot as usize]
            .as_ref()
            .expect("live arrival entry points at an occupied slot")
            .meta()
    }

    /// All batch metadata in arrival order (oldest first).
    pub fn metas(&self) -> impl Iterator<Item = MsgMeta> + '_ {
        self.arrival[self.head..]
            .iter()
            .zip(&self.alive[self.head..])
            .filter(|&(_, &alive)| alive)
            .map(|(&slot, _)| {
                self.slots[slot as usize]
                    .as_ref()
                    .expect("live arrival entry points at an occupied slot")
                    .meta()
            })
    }

    /// `(reused, allocated)` batch-deque recycling counts so far —
    /// folded into the owning backend's `pool_*` metrics at snapshot
    /// time.
    pub(crate) fn pool_stats(&self) -> (u64, u64) {
        (self.reused, self.allocated)
    }

    /// Hands out one recycled (empty) batch buffer as a `Vec` — the
    /// allocation carries over (an empty deque is trivially contiguous,
    /// so the conversion is free). The sharded backend refills its
    /// per-destination outboxes from here, closing the loop: outbox →
    /// cross-shard batch → drained deque → spare → outbox.
    pub(crate) fn take_spare_vec(&mut self) -> Option<Vec<Envelope>> {
        self.spare.pop().map(Vec::from)
    }

    /// Whether the most recently pushed batch is live and can absorb an
    /// envelope from `from` to `to`; returns its slot id if so. Reads
    /// only the inline `tail_pair` mirror — no slot-storage access.
    fn mergeable_tail(&self, from: PartyId, to: PartyId) -> Option<u32> {
        let slot = self.tail?;
        (self.tail_pair == (from, to)).then_some(slot)
    }

    /// Extends the live tail batch in slot `slot` with one envelope,
    /// promoting an inline singleton to a deque (recycled when possible).
    fn extend_tail(&mut self, slot: u32, env: Envelope) {
        let entry = self.slots[slot as usize]
            .as_mut()
            .expect("mergeable tail slot occupied");
        entry.count += 1;
        self.total += 1;
        match &mut entry.batch {
            Batch::Many(run) => run.push_back(env),
            one => {
                let mut run = match self.spare.pop() {
                    Some(run) => {
                        self.reused += 1;
                        run
                    }
                    None => {
                        self.allocated += 1;
                        VecDeque::new()
                    }
                };
                let head = match std::mem::replace(one, Batch::Many(VecDeque::new())) {
                    Batch::One(head) => head,
                    Batch::Many(_) => unreachable!("matched above"),
                };
                run.push_back(head);
                run.push_back(env);
                *one = Batch::Many(run);
            }
        }
    }

    /// Enqueues an envelope at the back: extends the youngest batch when
    /// the `(sender, receiver)` pair matches, otherwise opens a new batch.
    pub fn push(&mut self, env: Envelope) {
        if let Some(slot) = self.mergeable_tail(env.from, env.to) {
            self.extend_tail(slot, env);
            return;
        }
        self.insert_batch(1, Batch::One(env));
    }

    /// Enqueues a whole same-`(sender, receiver)` run as one batch record —
    /// the sharded backend's cross-shard handoff, which thereby moves
    /// O(batches) instead of O(messages). Empty runs are ignored.
    ///
    /// The envelopes must share one `(from, to)` pair and be in the
    /// intended FIFO order.
    pub fn push_batch(&mut self, envs: Vec<Envelope>) {
        let Some(first) = envs.first() else {
            return;
        };
        debug_assert!(
            envs.iter()
                .all(|e| e.from == first.from && e.to == first.to),
            "a batch must share one (from, to) pair"
        );
        if let Some(slot) = self.mergeable_tail(first.from, first.to) {
            for env in envs {
                self.extend_tail(slot, env);
            }
            return;
        }
        let count = envs.len() as u32;
        let batch = if envs.len() == 1 {
            Batch::One(envs.into_iter().next().expect("len checked"))
        } else {
            Batch::Many(VecDeque::from(envs))
        };
        self.insert_batch(count, batch);
    }

    /// Installs a fresh batch record at the back of the arrival order.
    fn insert_batch(&mut self, count: u32, batch: Batch) {
        self.total += count as usize;
        if self.arrival.len() == self.index.capacity() {
            self.compact_and_grow();
        }
        let pos = self.arrival.len();
        let record = Record { count, pos, batch };
        let (from, to, born) = {
            let head = record.head();
            (head.from, head.to, head.born_step)
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(record);
                s
            }
            None => {
                self.slots.push(Some(record));
                (self.slots.len() - 1) as u32
            }
        };
        self.arrival.push(slot);
        self.alive.push(true);
        self.index.add(pos, 1);
        self.live += 1;
        self.tail = Some(slot);
        self.tail_pair = (from, to);
        if self.live == 1 {
            // The queue was empty, so this batch is the head.
            self.head_born = born;
        }
    }

    /// `born_step` of the oldest in-flight envelope — what the fairness
    /// cap ages against. O(1): reads the inline head mirror.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the queue is empty.
    pub fn head_born_step(&self) -> u64 {
        debug_assert!(self.live > 0, "head_born_step on an empty queue");
        self.head_born
    }

    /// Removes and returns every in-flight message sent by `from`, oldest
    /// first (crash-before-run retraction; not a hot path).
    pub(crate) fn retract_from(&mut self, from: PartyId) -> Vec<Envelope> {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.len() {
            if self.meta(i).from == from {
                // `take` keeps a partially drained batch at index `i`, so
                // repeating the take drains the whole run before `i` moves
                // on to the next batch.
                removed.push(self.take(i));
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Removes and returns the head envelope of the `i`-th oldest batch.
    /// The batch keeps its arrival position until its run drains.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn take(&mut self, i: usize) -> Envelope {
        let pos = self.position(i);
        self.take_slot(BatchSlot(self.arrival[pos]))
    }

    /// Stable handle of the `i`-th oldest live batch, for use with
    /// [`take_slot`](Pending::take_slot). The handle stays valid while
    /// the batch has envelopes left (`meta(i).count` of them, plus any
    /// concurrently merged into it), so a caller draining a whole run
    /// resolves the Fenwick index once instead of once per envelope —
    /// and, unlike a raw arrival position, the handle survives pushes
    /// and compactions happening between takes.
    pub fn slot_of(&self, i: usize) -> BatchSlot {
        BatchSlot(self.arrival[self.position(i)])
    }

    /// Metadata of the live batch `slot` — O(1), no arrival-order lookup
    /// (pair with [`slot_of`](Pending::slot_of) to resolve a pick's
    /// handle and run length with a single Fenwick traversal).
    pub fn meta_of_slot(&self, slot: BatchSlot) -> MsgMeta {
        self.slots[slot.0 as usize]
            .as_ref()
            .expect("batch handle refers to a live batch")
            .meta()
    }

    /// Remaining run length of the live batch `slot` — what a delivery
    /// loop actually needs per pick, without deriving full [`MsgMeta`]
    /// (which reads the head envelope's session for its leaf kind).
    pub fn run_len_of_slot(&self, slot: BatchSlot) -> u32 {
        self.slots[slot.0 as usize]
            .as_ref()
            .expect("batch handle refers to a live batch")
            .count
    }

    /// Removes and returns the head envelope of the live batch `slot`
    /// (obtained from [`slot_of`](Pending::slot_of)) in O(1) while the
    /// batch survives.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not refer to a live batch.
    pub fn take_slot(&mut self, slot: BatchSlot) -> Envelope {
        let slot = slot.0 as usize;
        let entry = self.slots[slot]
            .as_mut()
            .expect("batch handle refers to a live batch");
        self.total -= 1;
        if let Batch::Many(run) = &mut entry.batch {
            if run.len() > 1 {
                // The batch survives at its arrival position; only its
                // count (and, at the head, the inline age mirror) moves.
                let env = run.pop_front().expect("len checked");
                entry.count -= 1;
                if entry.pos == self.head {
                    self.head_born = run.front().expect("len checked").born_step;
                }
                return env;
            }
        }
        // Batch drained: retire the record, recycling its deque.
        let Record { pos, batch, .. } = self.slots[slot]
            .take()
            .expect("batch handle refers to a live batch");
        let env = match batch {
            Batch::One(env) => env,
            Batch::Many(mut run) => {
                let env = run.pop_front().expect("drained batch has its last");
                if self.spare.len() < 32 {
                    self.spare.push(run);
                }
                env
            }
        };
        self.free.push(slot as u32);
        if self.tail == Some(slot as u32) {
            self.tail = None;
        }
        self.alive[pos] = false;
        self.index.add(pos, -1);
        self.live -= 1;
        if self.live == 0 {
            // Fully drained (every sharded epoch ends here): the Fenwick
            // tree is all zeros again, so resetting is free.
            self.arrival.clear();
            self.alive.clear();
            self.head = 0;
        } else if pos == self.head {
            while !self.alive[self.head] {
                self.head += 1;
            }
            self.head_born = self.slots[self.arrival[self.head] as usize]
                .as_ref()
                .expect("live arrival entry points at an occupied slot")
                .head()
                .born_step;
        }
        env
    }

    /// Rebuilds `arrival`/`alive`/`index` with tombstones dropped and
    /// capacity for growth (amortized against the removals that created
    /// the tombstones).
    fn compact_and_grow(&mut self) {
        let mut lives = std::mem::take(&mut self.compact_scratch);
        lives.clear();
        lives.extend(
            self.arrival[self.head..]
                .iter()
                .zip(&self.alive[self.head..])
                .filter(|&(_, &alive)| alive)
                .map(|(&slot, _)| slot),
        );
        debug_assert_eq!(lives.len(), self.live);
        let cap = (self.live * 2).max(64);
        // Reuse the Fenwick buffer: re-zeroing the kept allocation costs
        // the same O(cap) pass as the bulk build below, without the
        // allocation (once the tree has reached its high-water capacity).
        let tree = &mut self.index.tree;
        tree.clear();
        tree.resize(cap + 1, 0);
        // O(cap) bulk build: seed the leaves, then push sums upward.
        for i in 1..=lives.len() {
            tree[i] += 1;
            let parent = i + (i & i.wrapping_neg());
            if parent <= cap {
                tree[parent] += tree[i];
            }
        }
        // Finish propagation for positions past the seeded range.
        for i in lives.len() + 1..=cap {
            let parent = i + (i & i.wrapping_neg());
            if parent <= cap {
                tree[parent] += tree[i];
            }
        }
        // Refresh every survivor's stored position (what keeps
        // `BatchSlot` handles stable across the rebuild).
        for (new_pos, &slot) in lives.iter().enumerate() {
            self.slots[slot as usize]
                .as_mut()
                .expect("live arrival entry points at an occupied slot")
                .pos = new_pos;
        }
        self.alive.clear();
        self.alive.resize(lives.len(), true);
        // The survivors become the new arrival list; the old list's
        // allocation becomes the next rebuild's scratch.
        std::mem::swap(&mut self.arrival, &mut lives);
        self.compact_scratch = lives;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::payload::Payload;

    fn env(from: usize, to: usize, seq: u64) -> Envelope {
        Envelope {
            from: PartyId(from),
            to: PartyId(to),
            session: SessionId::root().child(SessionTag::new("k", 0)),
            payload: Payload::new(seq),
            seq,
            born_step: seq,
        }
    }

    #[test]
    fn preserves_arrival_order_across_batches() {
        let mut q = Pending::new();
        for s in 0..5 {
            // Distinct senders: five singleton batches.
            q.push(env(s as usize, 9, s));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.messages(), 5);
        assert_eq!(q.meta(0).seq, 0);
        assert_eq!(q.meta(4).seq, 4);
        assert_eq!(q.take(0).seq, 0);
        assert_eq!(q.meta(0).seq, 1, "remaining shift down");
    }

    #[test]
    fn same_pair_run_collapses_into_one_batch() {
        let mut q = Pending::new();
        for s in 0..4 {
            q.push(env(0, 1, s));
        }
        assert_eq!(q.len(), 1, "one batch");
        assert_eq!(q.messages(), 4);
        let m = q.meta(0);
        assert_eq!((m.count, m.seq, m.born_step), (4, 0, 0));
        // Draining pops FIFO and refreshes the head meta in place.
        assert_eq!(q.take(0).seq, 0);
        let m = q.meta(0);
        assert_eq!((m.count, m.seq, m.born_step), (3, 1, 1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.messages(), 3);
        for expect in 1..4 {
            assert_eq!(q.take(0).seq, expect);
        }
        assert!(q.is_empty());
        assert_eq!(q.messages(), 0);
    }

    #[test]
    fn interleaved_pairs_do_not_merge() {
        let mut q = Pending::new();
        q.push(env(0, 1, 0));
        q.push(env(2, 1, 1));
        q.push(env(0, 1, 2)); // same pair as batch 0 but not adjacent
        assert_eq!(q.len(), 3);
        assert_eq!(q.messages(), 3);
    }

    #[test]
    fn push_batch_installs_one_record() {
        let mut q = Pending::new();
        q.push(env(3, 1, 0));
        q.push_batch((10..14).map(|s| env(2, 1, s)).collect());
        q.push_batch(Vec::new()); // ignored
        assert_eq!(q.len(), 2);
        assert_eq!(q.messages(), 5);
        let m = q.meta(1);
        assert_eq!((m.from, m.count, m.seq), (PartyId(2), 4, 10));
        // A same-pair push extends the freshly installed batch.
        q.push(env(2, 1, 14));
        assert_eq!(q.len(), 2);
        assert_eq!(q.meta(1).count, 5);
        let drained: Vec<u64> = (0..5).map(|_| q.take(1).seq).collect();
        assert_eq!(drained, vec![10, 11, 12, 13, 14]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn take_from_middle_and_reuse_slots() {
        let mut q = Pending::new();
        for s in 0..4 {
            q.push(env(s, s, s as u64));
        }
        let e = q.take(2);
        assert_eq!(e.seq, 2);
        assert_eq!(q.len(), 3);
        // The freed slot is reused without growing storage.
        q.push(env(9, 9, 99));
        assert_eq!(q.slots.len(), 4);
        assert_eq!(q.meta(3).seq, 99);
        // Drain fully, checking meta/envelope stay aligned.
        let seqs: Vec<u64> = (0..4).map(|_| q.take(0).seq).collect();
        assert_eq!(seqs, vec![0, 1, 3, 99]);
        assert!(q.is_empty());
    }

    #[test]
    fn batch_deques_recycle_through_the_spare_pool() {
        let mut q = Pending::new();
        // First same-pair run promotes One -> Many with an empty spare
        // pool: one allocation.
        q.push(env(0, 1, 0));
        q.push(env(0, 1, 1));
        assert_eq!(q.pool_stats(), (0, 1));
        q.take(0);
        q.take(0);
        // The drained deque returns to the pool; the next promotion
        // reuses it instead of allocating.
        q.push(env(0, 1, 2));
        q.push(env(0, 1, 3));
        assert_eq!(q.pool_stats(), (1, 1));
        q.take(0);
        q.take(0);
        // The pooled buffer can be handed out as a Vec, allocation and
        // all, for outbox refills.
        let v = q.take_spare_vec().expect("one pooled buffer");
        assert!(v.is_empty());
        assert!(v.capacity() >= 2, "recycled capacity carries over");
        assert!(q.take_spare_vec().is_none());
    }

    #[test]
    fn meta_records_kind_endpoints_and_count() {
        let mut q = Pending::new();
        q.push(env(2, 3, 7));
        let m = q.meta(0);
        assert_eq!(m.from, PartyId(2));
        assert_eq!(m.to, PartyId(3));
        assert_eq!(m.kind, "k");
        assert_eq!(m.born_step, 7);
        assert_eq!(m.count, 1);
    }

    #[test]
    fn retract_from_removes_only_that_sender() {
        let mut q = Pending::new();
        q.push(env(0, 1, 0));
        q.push(env(0, 1, 1)); // merges with the batch above
        q.push(env(2, 1, 2));
        q.push(env(0, 3, 3));
        q.push(env(1, 0, 4));
        let removed = q.retract_from(PartyId(0));
        assert_eq!(
            removed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.messages(), 2);
        assert_eq!(q.meta(0).seq, 2);
        assert_eq!(q.meta(1).seq, 4);
        assert!(q.retract_from(PartyId(0)).is_empty());
    }

    #[test]
    fn metas_iterates_in_arrival_order() {
        let mut q = Pending::new();
        for s in 0..4 {
            q.push(env(s, 0, s as u64));
        }
        q.take(1);
        let seqs: Vec<u64> = q.metas().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![0, 2, 3]);
    }

    /// Differential test of the batched Fenwick-indexed view against a
    /// naive batch model, across interleaved pushes (merging and not),
    /// arbitrary-index takes and full drains (compactions included).
    #[test]
    fn matches_naive_model_under_mixed_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(42);
        let mut q = Pending::new();
        // Model: batches of (from, to, seqs), plus whether the most
        // recently pushed batch is still live (the only merge target).
        let mut model: Vec<(usize, usize, Vec<u64>)> = Vec::new();
        let mut tail_live = false;
        let mut next_seq = 0u64;
        for round in 0..2_000 {
            if model.is_empty() || rng.gen_bool(0.55) {
                let from = rng.gen_range(0..3usize);
                let to = rng.gen_range(0..2usize);
                q.push(env(from, to, next_seq));
                match model.last_mut() {
                    Some((f, t, seqs)) if tail_live && *f == from && *t == to => {
                        seqs.push(next_seq)
                    }
                    _ => model.push((from, to, vec![next_seq])),
                }
                tail_live = true;
                next_seq += 1;
            } else {
                let i = rng.gen_range(0..model.len());
                let (f, t, seqs) = &mut model[i];
                let m = q.meta(i);
                assert_eq!(
                    (m.from.0, m.to.0, m.seq, m.count as usize),
                    (*f, *t, seqs[0], seqs.len()),
                    "round {round}"
                );
                assert_eq!(q.take(i).seq, seqs.remove(0), "round {round}");
                if seqs.is_empty() {
                    if tail_live && i == model.len() - 1 {
                        tail_live = false;
                    }
                    model.remove(i);
                }
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(
                q.messages(),
                model.iter().map(|(_, _, s)| s.len()).sum::<usize>()
            );
            if !q.is_empty() {
                // The inline head mirror tracks the oldest batch exactly.
                assert_eq!(q.head_born_step(), q.meta(0).born_step, "round {round}");
            }
            if round % 97 == 0 {
                let heads: Vec<u64> = q.metas().map(|m| m.seq).collect();
                let expect: Vec<u64> = model.iter().map(|(_, _, s)| s[0]).collect();
                assert_eq!(heads, expect, "round {round}");
            }
        }
        while !model.is_empty() {
            let i = model.len() / 2;
            let expect = model[i].2.remove(0);
            if model[i].2.is_empty() {
                model.remove(i);
            }
            assert_eq!(q.take(i).seq, expect);
        }
        assert!(q.is_empty());
        // Still usable after a full drain.
        q.push(env(1, 2, 12345));
        assert_eq!(q.meta(0).seq, 12345);
    }

    /// Property test: `LiveIndex` add/select/tombstone agrees with a naive
    /// `Vec<bool>` model under arbitrary op sequences. Ops are decoded
    /// from raw words: kind = word % 3 (set / clear / select), operand =
    /// word / 3.
    mod liveindex_props {
        use super::super::LiveIndex;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn matches_vec_bool_model(
                cap in 1usize..96,
                ops in proptest::collection::vec(any::<u64>(), 1..200),
            ) {
                let mut index = LiveIndex::with_capacity(cap);
                let mut model = vec![false; cap];
                for word in ops {
                    let operand = (word / 3) as usize;
                    match word % 3 {
                        0 => {
                            let pos = operand % cap;
                            if !model[pos] {
                                model[pos] = true;
                                index.add(pos, 1);
                            }
                        }
                        1 => {
                            let pos = operand % cap;
                            if model[pos] {
                                model[pos] = false;
                                index.add(pos, -1);
                            }
                        }
                        _ => {
                            let live = model.iter().filter(|&&b| b).count();
                            if live == 0 {
                                continue;
                            }
                            let k = operand % live + 1;
                            // Naive: position of the k-th set bit.
                            let expect = model
                                .iter()
                                .enumerate()
                                .filter(|(_, &b)| b)
                                .nth(k - 1)
                                .map(|(i, _)| i)
                                .unwrap();
                            prop_assert_eq!(index.select(k as u32), expect);
                        }
                    }
                }
                // Final sweep: every live rank selects to the model position.
                let live: Vec<usize> = model
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .collect();
                for (rank, &pos) in live.iter().enumerate() {
                    prop_assert_eq!(index.select(rank as u32 + 1), pos);
                }
            }
        }
    }
}
