//! The in-flight message queue behind the simulator's delivery loop.
//!
//! Envelopes live in a slab next to their scheduler-visible [`MsgMeta`];
//! what the [`Scheduler`] sees is an arrival-ordered view of those
//! lightweight records (sender, receiver, sequence number, age, kind).
//! Schedulers index into that view and never touch payloads or session
//! paths.
//!
//! The live view is an append-only arrival list with tombstones indexed
//! by a Fenwick tree, so removal at an arbitrary arrival position — a
//! random scheduler's every pick — costs O(log len) instead of an O(len)
//! shift, the front position (fairness-cap forced deliveries, FIFO) is
//! O(1), and a queue that drains to empty (every sharded-simulator
//! epoch) resets for free. Dead entries are compacted away when the list
//! regrows.
//!
//! [`Scheduler`]: crate::Scheduler

use crate::ids::PartyId;
use crate::network::Envelope;

/// Scheduler-visible metadata of one in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Global send sequence number (unique, monotone).
    pub seq: u64,
    /// Delivery step at which the message was sent.
    pub born_step: u64,
    /// Leaf session kind (`"root"` for root sessions).
    pub kind: &'static str,
}

/// A Fenwick (binary indexed) tree of 0/1 counts over arrival positions:
/// `select(k)` finds the position of the `k`-th live entry in
/// O(log capacity).
#[derive(Default)]
struct LiveIndex {
    /// 1-based partial-sum tree; capacity is `tree.len() - 1`.
    tree: Vec<u32>,
}

impl LiveIndex {
    fn with_capacity(cap: usize) -> Self {
        LiveIndex {
            tree: vec![0; cap + 1],
        }
    }

    fn capacity(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    /// Adds `delta` at 0-based position `pos`.
    fn add(&mut self, pos: usize, delta: i32) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// 0-based position of the `k`-th live entry (`k ≥ 1`).
    fn select(&self, k: u32) -> usize {
        let cap = self.capacity();
        let mut step = cap.next_power_of_two();
        if step > cap {
            step >>= 1;
        }
        let mut pos = 0;
        let mut remaining = k;
        while step > 0 {
            let next = pos + step;
            if next <= cap && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // prefix_sum(pos) < k ≤ prefix_sum(pos + 1): 0-based index `pos`
    }
}

/// The arrival-ordered in-flight queue.
///
/// Index `0` is always the oldest pending message; pushes append at the
/// back. [`take`](Pending::take) removes by arrival index in
/// O(log queue) — O(1) at the front.
#[derive(Default)]
pub struct Pending {
    /// Metadata + envelope storage; `None` slots are free.
    slots: Vec<Option<(MsgMeta, Envelope)>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// Arrival-ordered slot ids (append-only between compactions).
    arrival: Vec<u32>,
    /// Tombstones, parallel to `arrival`.
    alive: Vec<bool>,
    /// Fenwick tree of live counts over `arrival` positions.
    index: LiveIndex,
    /// First possibly-live position in `arrival`.
    head: usize,
    /// Number of live entries.
    live: usize,
}

impl Pending {
    /// Creates an empty queue.
    pub(crate) fn new() -> Self {
        Pending::default()
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Arrival position of the `i`-th oldest live entry.
    fn position(&self, i: usize) -> usize {
        assert!(i < self.live, "index {i} beyond live queue ({})", self.live);
        if i == 0 {
            // The head skips tombstones eagerly, so it is live.
            self.head
        } else {
            self.index.select(i as u32 + 1)
        }
    }

    /// Metadata of the `i`-th oldest in-flight message.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn meta(&self, i: usize) -> MsgMeta {
        let slot = self.arrival[self.position(i)];
        self.slots[slot as usize]
            .as_ref()
            .expect("live arrival entry points at an occupied slot")
            .0
    }

    /// All metadata in arrival order (oldest first).
    pub fn metas(&self) -> impl Iterator<Item = MsgMeta> + '_ {
        self.arrival[self.head..]
            .iter()
            .zip(&self.alive[self.head..])
            .filter(|&(_, &alive)| alive)
            .map(|(&slot, _)| {
                self.slots[slot as usize]
                    .as_ref()
                    .expect("live arrival entry points at an occupied slot")
                    .0
            })
    }

    /// Enqueues an envelope at the back (the youngest position).
    pub(crate) fn push(&mut self, env: Envelope) {
        let meta = MsgMeta {
            from: env.from,
            to: env.to,
            seq: env.seq,
            born_step: env.born_step,
            kind: env.session.last().map_or("root", |t| t.kind),
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((meta, env));
                s
            }
            None => {
                self.slots.push(Some((meta, env)));
                (self.slots.len() - 1) as u32
            }
        };
        if self.arrival.len() == self.index.capacity() {
            self.compact_and_grow();
        }
        let pos = self.arrival.len();
        self.arrival.push(slot);
        self.alive.push(true);
        self.index.add(pos, 1);
        self.live += 1;
    }

    /// Removes and returns every in-flight message sent by `from`, oldest
    /// first (crash-before-run retraction; not a hot path).
    pub(crate) fn retract_from(&mut self, from: PartyId) -> Vec<Envelope> {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.len() {
            if self.meta(i).from == from {
                removed.push(self.take(i));
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Removes and returns the `i`-th oldest in-flight message.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub(crate) fn take(&mut self, i: usize) -> Envelope {
        let pos = self.position(i);
        let slot = self.arrival[pos];
        self.alive[pos] = false;
        self.index.add(pos, -1);
        self.live -= 1;
        self.free.push(slot);
        let env = self.slots[slot as usize]
            .take()
            .expect("live arrival entry points at an occupied slot")
            .1;
        if self.live == 0 {
            // Fully drained (every sharded epoch ends here): the Fenwick
            // tree is all zeros again, so resetting is free.
            self.arrival.clear();
            self.alive.clear();
            self.head = 0;
        } else if pos == self.head {
            while !self.alive[self.head] {
                self.head += 1;
            }
        }
        env
    }

    /// Rebuilds `arrival`/`alive`/`index` with tombstones dropped and
    /// capacity for growth (amortized against the removals that created
    /// the tombstones).
    fn compact_and_grow(&mut self) {
        let lives: Vec<u32> = self.arrival[self.head..]
            .iter()
            .zip(&self.alive[self.head..])
            .filter(|&(_, &alive)| alive)
            .map(|(&slot, _)| slot)
            .collect();
        debug_assert_eq!(lives.len(), self.live);
        let cap = (self.live * 2).max(64);
        let mut index = LiveIndex::with_capacity(cap);
        // O(cap) bulk build: seed the leaves, then push sums upward.
        for i in 1..=lives.len() {
            index.tree[i] += 1;
            let parent = i + (i & i.wrapping_neg());
            if parent <= cap {
                index.tree[parent] += index.tree[i];
            }
        }
        // Finish propagation for positions past the seeded range.
        for i in lives.len() + 1..=cap {
            let parent = i + (i & i.wrapping_neg());
            if parent <= cap {
                index.tree[parent] += index.tree[i];
            }
        }
        self.alive = vec![true; lives.len()];
        self.arrival = lives;
        self.index = index;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::payload::Payload;

    fn env(from: usize, to: usize, seq: u64) -> Envelope {
        Envelope {
            from: PartyId(from),
            to: PartyId(to),
            session: SessionId::root().child(SessionTag::new("k", 0)),
            payload: Payload::new(seq),
            seq,
            born_step: seq,
        }
    }

    #[test]
    fn preserves_arrival_order() {
        let mut q = Pending::new();
        for s in 0..5 {
            q.push(env(0, 1, s));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.meta(0).seq, 0);
        assert_eq!(q.meta(4).seq, 4);
        assert_eq!(q.take(0).seq, 0);
        assert_eq!(q.meta(0).seq, 1, "remaining shift down");
    }

    #[test]
    fn take_from_middle_and_reuse_slots() {
        let mut q = Pending::new();
        for s in 0..4 {
            q.push(env(s, s, s as u64));
        }
        let e = q.take(2);
        assert_eq!(e.seq, 2);
        assert_eq!(q.len(), 3);
        // The freed slot is reused without growing storage.
        q.push(env(9, 9, 99));
        assert_eq!(q.slots.len(), 4);
        assert_eq!(q.meta(3).seq, 99);
        // Drain fully, checking meta/envelope stay aligned.
        let seqs: Vec<u64> = (0..4).map(|_| q.take(0).seq).collect();
        assert_eq!(seqs, vec![0, 1, 3, 99]);
        assert!(q.is_empty());
    }

    #[test]
    fn meta_records_kind_and_endpoints() {
        let mut q = Pending::new();
        q.push(env(2, 3, 7));
        let m = q.meta(0);
        assert_eq!(m.from, PartyId(2));
        assert_eq!(m.to, PartyId(3));
        assert_eq!(m.kind, "k");
        assert_eq!(m.born_step, 7);
    }

    #[test]
    fn retract_from_removes_only_that_sender() {
        let mut q = Pending::new();
        q.push(env(0, 1, 0));
        q.push(env(2, 1, 1));
        q.push(env(0, 3, 2));
        q.push(env(1, 0, 3));
        let removed = q.retract_from(PartyId(0));
        assert_eq!(
            removed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.meta(0).seq, 1);
        assert_eq!(q.meta(1).seq, 3);
        assert!(q.retract_from(PartyId(0)).is_empty());
    }

    #[test]
    fn metas_iterates_in_arrival_order() {
        let mut q = Pending::new();
        for s in 0..4 {
            q.push(env(s, 0, s as u64));
        }
        q.take(1);
        let seqs: Vec<u64> = q.metas().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![0, 2, 3]);
    }

    /// Differential test of the Fenwick-indexed view against a naive
    /// `Vec` model, across interleaved pushes, arbitrary-index takes and
    /// full drains (compactions included).
    #[test]
    fn matches_naive_model_under_mixed_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(42);
        let mut q = Pending::new();
        let mut model: Vec<u64> = Vec::new();
        let mut next_seq = 0u64;
        for round in 0..2_000 {
            if model.is_empty() || rng.gen_bool(0.55) {
                q.push(env(0, 1, next_seq));
                model.push(next_seq);
                next_seq += 1;
            } else {
                let i = rng.gen_range(0..model.len());
                assert_eq!(q.meta(i).seq, model[i], "round {round}");
                assert_eq!(q.take(i).seq, model.remove(i), "round {round}");
            }
            assert_eq!(q.len(), model.len());
            if round % 97 == 0 {
                let seqs: Vec<u64> = q.metas().map(|m| m.seq).collect();
                assert_eq!(seqs, model, "round {round}");
            }
        }
        while !model.is_empty() {
            let i = model.len() / 2;
            assert_eq!(q.take(i).seq, model.remove(i));
        }
        assert!(q.is_empty());
        // Still usable after a full drain.
        q.push(env(1, 2, 12345));
        assert_eq!(q.meta(0).seq, 12345);
    }
}
