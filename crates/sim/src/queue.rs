//! The in-flight message queue behind the simulator's delivery loop.
//!
//! Envelopes live in a slab; what the [`Scheduler`] sees is an
//! arrival-ordered list of lightweight [`MsgMeta`] records (sender,
//! receiver, sequence number, age, kind). Schedulers index into that
//! list — they never touch payloads or session paths, and removing the
//! chosen message shifts only small `Copy` records plus a slot id, not
//! whole [`Envelope`]s with their heap-allocated session paths.
//!
//! [`Scheduler`]: crate::Scheduler

use crate::ids::PartyId;
use crate::network::Envelope;

/// Scheduler-visible metadata of one in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Global send sequence number (unique, monotone).
    pub seq: u64,
    /// Delivery step at which the message was sent.
    pub born_step: u64,
    /// Leaf session kind (`"root"` for root sessions).
    pub kind: &'static str,
}

/// The arrival-ordered in-flight queue.
///
/// Index `0` is always the oldest pending message; pushes append at the
/// back. [`take`](Pending::take) removes by arrival index and returns the
/// envelope in O(live-queue shift of 12-byte records) instead of moving
/// `Envelope`s around.
#[derive(Default)]
pub struct Pending {
    /// Envelope storage; `None` slots are free.
    slots: Vec<Option<Envelope>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// Arrival-ordered live slot indices (parallel to `metas`).
    order: Vec<u32>,
    /// Arrival-ordered scheduler-visible metadata (parallel to `order`).
    metas: Vec<MsgMeta>,
}

impl Pending {
    /// Creates an empty queue.
    pub(crate) fn new() -> Self {
        Pending::default()
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Metadata of the `i`-th oldest in-flight message.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn meta(&self, i: usize) -> MsgMeta {
        self.metas[i]
    }

    /// All metadata in arrival order (oldest first).
    pub fn metas(&self) -> &[MsgMeta] {
        &self.metas
    }

    /// Enqueues an envelope at the back (the youngest position).
    pub(crate) fn push(&mut self, env: Envelope) {
        let meta = MsgMeta {
            from: env.from,
            to: env.to,
            seq: env.seq,
            born_step: env.born_step,
            kind: env.session.last().map_or("root", |t| t.kind),
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(env);
                s
            }
            None => {
                self.slots.push(Some(env));
                (self.slots.len() - 1) as u32
            }
        };
        self.order.push(slot);
        self.metas.push(meta);
    }

    /// Removes and returns the `i`-th oldest in-flight message.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub(crate) fn take(&mut self, i: usize) -> Envelope {
        let slot = self.order.remove(i);
        self.metas.remove(i);
        self.free.push(slot);
        self.slots[slot as usize]
            .take()
            .expect("live order entry points at an occupied slot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::payload::Payload;

    fn env(from: usize, to: usize, seq: u64) -> Envelope {
        Envelope {
            from: PartyId(from),
            to: PartyId(to),
            session: SessionId::root().child(SessionTag::new("k", 0)),
            payload: Payload::new(seq),
            seq,
            born_step: seq,
        }
    }

    #[test]
    fn preserves_arrival_order() {
        let mut q = Pending::new();
        for s in 0..5 {
            q.push(env(0, 1, s));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.meta(0).seq, 0);
        assert_eq!(q.meta(4).seq, 4);
        assert_eq!(q.take(0).seq, 0);
        assert_eq!(q.meta(0).seq, 1, "remaining shift down");
    }

    #[test]
    fn take_from_middle_and_reuse_slots() {
        let mut q = Pending::new();
        for s in 0..4 {
            q.push(env(s, s, s as u64));
        }
        let e = q.take(2);
        assert_eq!(e.seq, 2);
        assert_eq!(q.len(), 3);
        // The freed slot is reused without growing storage.
        q.push(env(9, 9, 99));
        assert_eq!(q.slots.len(), 4);
        assert_eq!(q.meta(3).seq, 99);
        // Drain fully, checking meta/envelope stay aligned.
        let seqs: Vec<u64> = (0..4).map(|_| q.take(0).seq).collect();
        assert_eq!(seqs, vec![0, 1, 3, 99]);
        assert!(q.is_empty());
    }

    #[test]
    fn meta_records_kind_and_endpoints() {
        let mut q = Pending::new();
        q.push(env(2, 3, 7));
        let m = q.meta(0);
        assert_eq!(m.from, PartyId(2));
        assert_eq!(m.to, PartyId(3));
        assert_eq!(m.kind, "k");
        assert_eq!(m.born_step, 7);
    }
}
