//! Super-party simulation — the paper's Appendix B technique, generic.
//!
//! The lower-bound extension to arbitrary `3t + 1 ≤ n ≤ 4t` works by
//! having four "super-parties" each *simulate* a bloc of the `n` parties:
//! messages between co-hosted parties are delivered internally, messages
//! across blocs are wrapped in super-party messages, and a super-party
//! adopts the output of the parties it simulates. [`Cluster`] implements
//! that simulation for any inner protocol built on [`Instance`]s, so an
//! `n_inner`-party protocol can run on an `n_outer < n_inner` system —
//! and, per Appendix B, any scheduling of the outer system corresponds to
//! a valid scheduling of the inner one.

use crate::ids::{PartyId, SessionId};
use crate::instance::{Context, Instance};
use crate::node::{Node, Outgoing};
use crate::payload::Payload;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;

/// Wire format between clusters: an inner envelope carried by the outer
/// network.
#[derive(Debug, Clone)]
pub struct ClusterMsg {
    /// Inner sender id.
    pub from_inner: usize,
    /// Inner receiver id.
    pub to_inner: usize,
    /// Inner session.
    pub session: SessionId,
    /// Inner payload.
    pub payload: Payload,
}

impl crate::wire::WireMessage for ClusterMsg {
    const KIND: u16 = crate::wire::KIND_BEHAVIOR_BASE + 1;
    const KIND_NAME: &'static str = "cluster-msg";

    fn encode_body(&self, out: &mut Vec<u8>) {
        crate::wire::WireWriter::u32(out, self.from_inner as u32);
        crate::wire::WireWriter::u32(out, self.to_inner as u32);
        crate::wire::put_session(out, &self.session);
        if !self.payload.encode_wire_frame(out) {
            // Inner payload without a wire identity: emit a malformed
            // marker so the frame is observably undecodable rather than
            // silently truncated.
            out.extend_from_slice(&u16::MAX.to_le_bytes());
        }
    }

    fn decode_body(bytes: &[u8]) -> Option<Self> {
        let mut r = crate::wire::WireReader::new(bytes);
        let from_inner = r.u32()? as usize;
        let to_inner = r.u32()? as usize;
        let session = crate::wire::get_session(&mut r)?;
        let frame = r.rest().to_vec();
        Some(ClusterMsg {
            from_inner,
            to_inner,
            session,
            // Kind names resolve through the global registry (one lock
            // read, no per-message snapshot); the inner payload decodes
            // lazily when an instance views it.
            payload: Payload::from_wire_global(frame),
        })
    }
}

/// Factory producing each hosted inner party's initial instances.
pub type InnerFactory = Box<dyn Fn(usize) -> Vec<(SessionId, Box<dyn Instance>)> + Send>;

/// One outer party hosting a bloc of inner parties (Appendix B's
/// "super-party").
///
/// * `assignment[i]` names the outer party hosting inner party `i`; all
///   outer parties must be constructed with the same assignment.
/// * `factory(i)` builds inner party `i`'s protocol instances (called only
///   for the locally-hosted parties).
/// * The cluster outputs `Vec<(inner_id, Payload)>` — the watched
///   session's outputs of all hosted inner parties — once every hosted
///   party has produced one (Appendix B's "outputs the value output by
///   most of the parties it simulates" is then a fold the caller applies).
pub struct Cluster {
    inner_n: usize,
    inner_t: usize,
    assignment: Vec<usize>,
    factory: InnerFactory,
    watched: SessionId,
    nodes: HashMap<usize, Node>,
    done: bool,
}

impl Cluster {
    /// Creates the cluster instance for whichever outer party it is
    /// spawned at.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` disagrees with `inner_n` (checked at
    /// start) via debug assertions during execution.
    pub fn new(
        inner_n: usize,
        inner_t: usize,
        assignment: Vec<usize>,
        watched: SessionId,
        factory: InnerFactory,
    ) -> Self {
        assert_eq!(assignment.len(), inner_n, "one host per inner party");
        Cluster {
            inner_n,
            inner_t,
            assignment,
            factory,
            watched,
            nodes: HashMap::new(),
            done: false,
        }
    }

    /// Routes a batch of inner outgoing envelopes, each tagged with its
    /// inner sender: local ones are delivered immediately (the simulating
    /// party "just delivers" them, per Appendix B), remote ones are
    /// wrapped onto the outer network.
    fn pump_from(&mut self, initial: Vec<(usize, Outgoing)>, ctx: &mut Context<'_>) {
        let me = ctx.me().0;
        let mut queue = initial;
        while let Some((from_inner, out)) = queue.pop() {
            let to_inner = out.to.0;
            if to_inner >= self.inner_n {
                continue;
            }
            let owner = self.assignment[to_inner];
            if owner == me {
                let node = self
                    .nodes
                    .get_mut(&to_inner)
                    .expect("hosted inner node exists");
                let mut outs = Vec::new();
                node.deliver(PartyId(from_inner), out.session, out.payload, &mut outs);
                queue.extend(outs.into_iter().map(|o| (to_inner, o)));
            } else {
                ctx.send(
                    PartyId(owner),
                    ClusterMsg {
                        from_inner,
                        to_inner,
                        session: out.session,
                        payload: out.payload,
                    },
                );
            }
        }
        self.try_output(ctx);
    }

    fn try_output(&mut self, ctx: &mut Context<'_>) {
        if self.done {
            return;
        }
        let all_done = self
            .nodes
            .values()
            .all(|n| n.output(&self.watched).is_some());
        if all_done && !self.nodes.is_empty() {
            self.done = true;
            let mut outs: Vec<(usize, Payload)> = self
                .nodes
                .iter()
                .map(|(&i, n)| (i, n.output(&self.watched).expect("checked").clone()))
                .collect();
            outs.sort_by_key(|(i, _)| *i);
            ctx.output(outs);
        }
    }
}

impl Instance for Cluster {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.me().0;
        let hosted: Vec<usize> = (0..self.inner_n)
            .filter(|&i| self.assignment[i] == me)
            .collect();
        let mut initial = Vec::new();
        for i in hosted {
            let seed: u64 = ctx.rng().gen();
            let node = Node::new(
                PartyId(i),
                self.inner_n,
                self.inner_t,
                ChaCha12Rng::seed_from_u64(seed),
            );
            self.nodes.insert(i, node);
            for (session, instance) in (self.factory)(i) {
                let node = self.nodes.get_mut(&i).expect("just inserted");
                let outs = node.spawn(session, instance);
                initial.extend(outs.into_iter().map(|o| (i, o)));
            }
        }
        self.pump_from(initial, ctx);
    }

    fn on_message(&mut self, _from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        let Some(msg) = payload.view::<ClusterMsg>() else {
            return;
        };
        if msg.to_inner >= self.inner_n || self.assignment[msg.to_inner] != ctx.me().0 {
            return; // misrouted (Byzantine outer sender): drop
        }
        let node = self.nodes.get_mut(&msg.to_inner).expect("hosted");
        let mut outs = Vec::new();
        node.deliver(
            PartyId(msg.from_inner),
            msg.session.clone(),
            msg.payload.clone(),
            &mut outs,
        );
        let batch: Vec<(usize, Outgoing)> = outs.into_iter().map(|o| (msg.to_inner, o)).collect();
        self.pump_from(batch, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::network::SimNetwork;
    use crate::runtime::{NetConfig, StopReason};
    use crate::scheduler::RandomScheduler;

    fn watched() -> SessionId {
        SessionId::root().child(SessionTag::new("hello", 0))
    }

    /// Simple inner protocol: greet all, output after hearing n greetings.
    struct Hello {
        heard: usize,
    }
    impl Instance for Hello {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.heard);
            }
        }
    }

    fn factory() -> InnerFactory {
        Box::new(|_inner| vec![(watched(), Box::new(Hello { heard: 0 }) as Box<dyn Instance>)])
    }

    #[test]
    fn eight_inner_parties_on_four_outer() {
        // Appendix B assignment: 4 super-parties, 2 inner parties each.
        let inner_n = 8;
        let assignment: Vec<usize> = (0..inner_n).map(|i| i / 2).collect();
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 3), Box::new(RandomScheduler));
        let outer_sid = SessionId::root().child(SessionTag::new("cluster", 0));
        for outer in 0..4 {
            net.spawn(
                PartyId(outer),
                outer_sid.clone(),
                Box::new(Cluster::new(
                    inner_n,
                    2,
                    assignment.clone(),
                    watched(),
                    factory(),
                )),
            );
        }
        let report = net.run(10_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for outer in 0..4 {
            let out = net
                .output_as::<Vec<(usize, Payload)>>(PartyId(outer), &outer_sid)
                .unwrap_or_else(|| panic!("outer {outer} has no cluster output"));
            assert_eq!(out.len(), 2, "two hosted inner parties each");
            for (inner, payload) in out {
                assert_eq!(
                    payload.downcast_ref::<usize>(),
                    Some(&inner_n),
                    "inner {inner} must hear all {inner_n} greetings"
                );
            }
        }
    }

    #[test]
    fn uneven_blocs_work() {
        // 7 inner parties on 4 outer parties: blocs of sizes 2,2,2,1.
        let inner_n = 7;
        let assignment: Vec<usize> = (0..inner_n).map(|i| (i / 2).min(3)).collect();
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 9), Box::new(RandomScheduler));
        let outer_sid = SessionId::root().child(SessionTag::new("cluster", 0));
        for outer in 0..4 {
            net.spawn(
                PartyId(outer),
                outer_sid.clone(),
                Box::new(Cluster::new(
                    inner_n,
                    2,
                    assignment.clone(),
                    watched(),
                    factory(),
                )),
            );
        }
        net.run(10_000_000);
        for outer in 0..4 {
            let out = net
                .output_as::<Vec<(usize, Payload)>>(PartyId(outer), &outer_sid)
                .expect("all clusters output");
            for (_, payload) in out {
                assert_eq!(payload.downcast_ref::<usize>(), Some(&inner_n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "one host per inner party")]
    fn mismatched_assignment_rejected() {
        let _ = Cluster::new(5, 1, vec![0, 1], watched(), factory());
    }
}
