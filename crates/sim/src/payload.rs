//! Dynamically-typed, cheaply-cloneable message payloads.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A protocol message payload or instance output.
///
/// Payloads are dynamically typed so that protocol crates can define their
/// own message enums without the simulator depending on them. A receiving
/// instance downcasts to the type it expects; a failed downcast models a
/// type-confused (Byzantine) message and is simply ignored by honest code.
///
/// Cloning is an `Arc` bump, so broadcasting to `n` parties does not copy
/// the message body.
///
/// ```
/// use aft_sim::Payload;
///
/// #[derive(Debug, PartialEq)]
/// struct Echo(u32);
///
/// let p = Payload::new(Echo(7));
/// assert_eq!(p.downcast_ref::<Echo>(), Some(&Echo(7)));
/// assert_eq!(p.downcast_ref::<String>(), None);
/// ```
#[derive(Clone)]
pub struct Payload {
    value: Arc<dyn Any + Send + Sync>,
    type_name: &'static str,
}

impl Payload {
    /// Wraps a value as a payload.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        Payload {
            value: Arc::new(value),
            type_name: std::any::type_name::<T>(),
        }
    }

    /// Borrows the payload as `T`, or `None` when the type differs.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.value.as_ref().downcast_ref::<T>()
    }

    /// Whether the payload holds a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.value.as_ref().is::<T>()
    }

    /// The Rust type name of the wrapped value (diagnostics only).
    pub fn type_name(&self) -> &'static str {
        self.type_name
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload<{}>", self.type_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct A(u8);
    #[derive(Debug, PartialEq)]
    struct B(u8);

    #[test]
    fn downcast_success_and_failure() {
        let p = Payload::new(A(3));
        assert!(p.is::<A>());
        assert!(!p.is::<B>());
        assert_eq!(p.downcast_ref::<A>(), Some(&A(3)));
        assert_eq!(p.downcast_ref::<B>(), None);
    }

    #[test]
    fn clone_shares_value() {
        let p = Payload::new(A(9));
        let q = p.clone();
        assert_eq!(q.downcast_ref::<A>(), Some(&A(9)));
    }

    #[test]
    fn debug_includes_type_name() {
        let p = Payload::new(A(1));
        let s = format!("{p:?}");
        assert!(s.contains("A"), "{s}");
    }
}

#[cfg(test)]
mod thread_safety {
    use super::*;

    #[test]
    fn payload_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Payload>();
    }
}
