//! Message payloads: typed fast path, inline small-box, lazy wire frames.
//!
//! A [`Payload`] is one of three representations:
//!
//! * **Typed** — a shared `Arc<dyn Any>` value, optionally carrying its
//!   [`WireMessage`] identity so the wire boundary can serialize it.
//!   Outputs ([`Context::output`]) and large messages live here; cloning
//!   is an `Arc` bump.
//! * **Inline** — the *encoded frame* of a small message (body ≤ 24
//!   bytes) stored inline in the payload itself: no allocation per
//!   message on the send path, and cloning is a 30-byte copy. Most
//!   protocol control messages (votes, acks, gather sets) take this
//!   path.
//! * **Wire** — a received byte frame, held as a [`FrameBytes`] range of
//!   a shared (possibly pooled) read buffer and decoded *lazily*:
//!   [`Payload::view`] decodes through the expected type's own decoder,
//!   so a malformed or kind-spoofed frame simply fails to view — exactly
//!   like an in-memory type-confused value fails to downcast. The
//!   wire-serialized runtime slices these straight out of its per-party
//!   socket read buffers (no per-frame copy), resolving the kind's
//!   diagnostic name through its per-run [`CodecRegistry`].
//!
//! Honest receivers read messages with [`Payload::view`] /
//! [`Payload::to_msg`], which work uniformly across all three
//! representations. A failed view or downcast during a delivery is
//! recorded per kind and surfaces in
//! [`Metrics`](crate::Metrics)`::decode_misses` — type-confused or
//! byte-garbled deliveries are observable, not silently dropped.
//!
//! [`Context::output`]: crate::Context::output
//! [`CodecRegistry`]: crate::wire::CodecRegistry

use crate::wire::{parse_frame, CodecRegistry, WireMessage, WireVtable};
use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Maximum encoded *body* size stored inline (frame = 6-byte header +
/// body).
pub const INLINE_BODY_CAP: usize = 24;
const INLINE_FRAME_CAP: usize = crate::wire::FRAME_HEADER_LEN + INLINE_BODY_CAP;

/// Diagnostic name reported for wire frames whose kind no registry entry
/// explains.
const UNKNOWN_WIRE_KIND: &str = "wire:unknown";
/// Diagnostic name reported for byte frames whose header is malformed.
const MALFORMED_WIRE_FRAME: &str = "wire:malformed";
/// Kind sentinel for malformed frames (never matches a real kind because
/// views compare against `T::KIND` after re-parsing the frame).
const MALFORMED_KIND: u16 = u16::MAX;

/// A received wire frame: a byte range of a shared read buffer.
///
/// The wire transport reads a whole envelope batch into one contiguous
/// buffer and hands each payload its frame as a range of that buffer —
/// no per-frame `Vec`. Cloning bumps the `Arc`; the buffer returns to
/// the transport's pool once every frame sliced from it is dropped.
#[derive(Clone)]
pub struct FrameBytes {
    buf: Arc<Vec<u8>>,
    start: u32,
    end: u32,
}

impl FrameBytes {
    /// Slices `buf[start..end]` as a frame. The range must be in bounds.
    pub(crate) fn from_shared(buf: &Arc<Vec<u8>>, start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= buf.len());
        FrameBytes {
            buf: Arc::clone(buf),
            start: start as u32,
            end: end as u32,
        }
    }

    /// The frame's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start as usize..self.end as usize]
    }
}

impl From<Vec<u8>> for FrameBytes {
    /// Wraps an owned frame (the whole vector) — the path for frames
    /// that were not sliced out of a transport read buffer.
    fn from(frame: Vec<u8>) -> Self {
        let end = frame.len() as u32;
        FrameBytes {
            buf: Arc::new(frame),
            start: 0,
            end,
        }
    }
}

impl Deref for FrameBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for FrameBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameBytes({} bytes)", self.as_slice().len())
    }
}

enum Repr {
    Typed {
        value: Arc<dyn Any + Send + Sync>,
        type_name: &'static str,
        /// Wire identity when constructed from a [`WireMessage`]
        /// (`None` for plain outputs, which never cross the wire).
        vt: Option<&'static WireVtable>,
    },
    Inline {
        vt: &'static WireVtable,
        len: u8,
        buf: [u8; INLINE_FRAME_CAP],
    },
    Wire {
        frame: FrameBytes,
        kind: u16,
        name: &'static str,
    },
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Typed {
                value,
                type_name,
                vt,
            } => Repr::Typed {
                value: value.clone(),
                type_name,
                vt: *vt,
            },
            Repr::Inline { vt, len, buf } => Repr::Inline {
                vt,
                len: *len,
                buf: *buf,
            },
            Repr::Wire { frame, kind, name } => Repr::Wire {
                frame: frame.clone(),
                kind: *kind,
                name,
            },
        }
    }
}

/// A protocol message payload or instance output. See the
/// [module docs](self) for the three representations.
///
/// ```
/// use aft_sim::Payload;
///
/// // Outputs: dynamically typed, read back with `downcast_ref`.
/// let out = Payload::new(vec![1u32, 2, 3]);
/// assert_eq!(out.downcast_ref::<Vec<u32>>(), Some(&vec![1, 2, 3]));
///
/// // Messages: wire-typed, read back with `view`/`to_msg` on every
/// // backend (u64 implements `WireMessage` as a builtin kind).
/// let msg = Payload::message(7u64);
/// assert_eq!(msg.to_msg::<u64>(), Some(7));
/// assert_eq!(msg.to_msg::<u32>(), None, "kind-checked");
/// ```
#[derive(Clone)]
pub struct Payload(Repr);

/// A decoded message handed out by [`Payload::view`]: borrowed from a
/// typed payload, owned when decoded from bytes. `Deref`s to the
/// message either way.
pub enum MsgView<'a, T> {
    /// Borrowed from an in-memory typed payload.
    Borrowed(&'a T),
    /// Decoded on the fly from an inline or wire frame.
    Owned(T),
}

impl<T> Deref for MsgView<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self {
            MsgView::Borrowed(v) => v,
            MsgView::Owned(v) => v,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MsgView<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

thread_local! {
    /// Per-kind decode/downcast misses observed on this thread since the
    /// last drain. `deliver_counted` drains it around every delivery, so
    /// the counts attribute to the run whose dispatch produced them.
    static MISSES: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
    /// Reusable encode scratch for the small-box probe.
    static ENCODE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

fn record_miss(kind: &'static str) {
    MISSES.with(|m| {
        let mut m = m.borrow_mut();
        if let Some(entry) = m.iter_mut().find(|(k, _)| *k == kind) {
            entry.1 += 1;
        } else {
            m.push((kind, 1));
        }
    });
}

/// Drains this thread's miss counters into `sink` (pass `None` to
/// discard). Called by the shared delivery core before and after each
/// dispatch.
pub(crate) fn drain_misses(mut sink: Option<&mut Vec<(&'static str, u64)>>) {
    MISSES.with(|m| {
        let mut m = m.borrow_mut();
        if m.is_empty() {
            return;
        }
        if let Some(sink) = &mut sink {
            for (kind, count) in m.drain(..) {
                if let Some(entry) = sink.iter_mut().find(|(k, _)| *k == kind) {
                    entry.1 += count;
                } else {
                    sink.push((kind, count));
                }
            }
        } else {
            m.clear();
        }
    });
}

impl Payload {
    /// Wraps a value as a dynamically-typed payload (outputs, child
    /// results — anything that never crosses the wire).
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        Payload(Repr::Typed {
            value: Arc::new(value),
            type_name: std::any::type_name::<T>(),
            vt: None,
        })
    }

    /// Wraps a protocol message, keeping its wire identity.
    ///
    /// Small messages (encoded body ≤ [`INLINE_BODY_CAP`] bytes) are
    /// stored as inline frames — no allocation; larger ones share an
    /// `Arc` and encode lazily at the wire boundary. Messages with an
    /// adversarial [`raw_frame`](WireMessage::raw_frame) stay typed so
    /// in-memory backends observe the same junk *values* the wire
    /// backend turns into junk *bytes*.
    ///
    /// Types advertising a [`MAX_BODY_HINT`](WireMessage::MAX_BODY_HINT)
    /// pick their representation at compile time: a bound within the
    /// inline cap guarantees the inline arm (the typed fallback is
    /// statically dead), and a bound above it skips the (always wasted)
    /// probe encode.
    pub fn message<T: WireMessage>(value: T) -> Self {
        // Both predicates are const-foldable: for hinted types exactly
        // one of the branches below survives monomorphization.
        let hinted_inline = matches!(T::MAX_BODY_HINT, Some(max) if max <= INLINE_BODY_CAP);
        let hinted_large = matches!(T::MAX_BODY_HINT, Some(max) if max > INLINE_BODY_CAP);
        if !hinted_large && value.raw_frame().is_none() {
            let inline = ENCODE_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                scratch.clear();
                crate::wire::encode_frame(&value, &mut scratch);
                if hinted_inline {
                    debug_assert!(
                        scratch.len() <= INLINE_FRAME_CAP,
                        "{}::MAX_BODY_HINT understates its encoding ({} frame bytes)",
                        T::KIND_NAME,
                        scratch.len(),
                    );
                }
                // The cap comparison stays even when the hint proves it
                // always true: the branch hands the optimizer the length
                // bound that keeps the copy below a few fixed moves
                // (folding it away regressed this path ~30% by forcing
                // an unbounded memcpy call).
                if scratch.len() <= INLINE_FRAME_CAP {
                    let mut buf = [0u8; INLINE_FRAME_CAP];
                    buf[..scratch.len()].copy_from_slice(&scratch);
                    Some(Repr::Inline {
                        vt: &T::VTABLE,
                        len: scratch.len() as u8,
                        buf,
                    })
                } else {
                    None
                }
            });
            if let Some(repr) = inline {
                return Payload(repr);
            }
        }
        Payload(Repr::Typed {
            value: Arc::new(value),
            type_name: std::any::type_name::<T>(),
            vt: Some(&T::VTABLE),
        })
    }

    /// Wraps a received wire frame, resolving its kind name through
    /// `registry` for diagnostics. Decoding happens lazily in
    /// [`view`](Payload::view); malformed headers yield a payload no view
    /// ever matches.
    pub fn from_wire(frame: impl Into<FrameBytes>, registry: &CodecRegistry) -> Self {
        Self::from_wire_named(frame, |kind| registry.kind_name(kind))
    }

    /// [`from_wire`](Payload::from_wire) resolving the kind name in the
    /// process-global registry (one lock read, no snapshot) — the cheap
    /// path for nested decoders like the cluster envelope.
    pub fn from_wire_global(frame: impl Into<FrameBytes>) -> Self {
        Self::from_wire_named(frame, crate::wire::global_kind_name)
    }

    pub(crate) fn from_wire_named(
        frame: impl Into<FrameBytes>,
        resolve: impl FnOnce(u16) -> Option<&'static str>,
    ) -> Self {
        let frame: FrameBytes = frame.into();
        let (kind, name) = match parse_frame(&frame) {
            Some((kind, _)) => (kind, resolve(kind).unwrap_or(UNKNOWN_WIRE_KIND)),
            None => (MALFORMED_KIND, MALFORMED_WIRE_FRAME),
        };
        Payload(Repr::Wire { frame, kind, name })
    }

    /// Views the payload as message type `T`, uniformly across
    /// representations: typed payloads borrow, inline/wire frames decode
    /// through `T`'s own decoder (kind-checked first). Returns `None` —
    /// and records a per-kind decode miss — for type-confused values,
    /// kind mismatches and malformed bytes.
    pub fn view<T: WireMessage>(&self) -> Option<MsgView<'_, T>> {
        match &self.0 {
            Repr::Typed { value, .. } => match value.as_ref().downcast_ref::<T>() {
                Some(v) => Some(MsgView::Borrowed(v)),
                None => {
                    record_miss(self.type_name());
                    None
                }
            },
            Repr::Inline { vt, len, buf } => {
                let frame = &buf[..*len as usize];
                if vt.kind == T::KIND {
                    if let Some(v) = crate::wire::decode_frame_as::<T>(frame) {
                        return Some(MsgView::Owned(v));
                    }
                }
                record_miss(vt.name);
                None
            }
            Repr::Wire { frame, kind, name } => {
                if *kind == T::KIND {
                    if let Some(v) = crate::wire::decode_frame_as::<T>(frame) {
                        return Some(MsgView::Owned(v));
                    }
                }
                record_miss(name);
                None
            }
        }
    }

    /// Owned convenience over [`view`](Payload::view) (clones borrowed
    /// values) — handy for small `Copy` messages.
    pub fn to_msg<T: WireMessage + Clone>(&self) -> Option<T> {
        self.view::<T>().map(|v| match v {
            MsgView::Borrowed(b) => b.clone(),
            MsgView::Owned(o) => o,
        })
    }

    /// Borrows a *typed* payload as `T`. Wire and inline frames always
    /// return `None` (use [`view`](Payload::view) for messages); a failed
    /// downcast during a delivery is recorded as a decode miss.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match &self.0 {
            Repr::Typed { value, .. } => {
                let hit = value.as_ref().downcast_ref::<T>();
                if hit.is_none() {
                    record_miss(self.type_name());
                }
                hit
            }
            Repr::Inline { vt, .. } => {
                record_miss(vt.name);
                None
            }
            Repr::Wire { name, .. } => {
                record_miss(name);
                None
            }
        }
    }

    /// Whether a *typed* payload holds a `T`.
    pub fn is<T: Any>(&self) -> bool {
        match &self.0 {
            Repr::Typed { value, .. } => value.as_ref().is::<T>(),
            _ => false,
        }
    }

    /// The payload's diagnostic name: the *kind name* whenever the
    /// payload has a wire identity (typed messages, inline frames, and
    /// received wire frames — `wire:unknown` / `wire:malformed` when no
    /// registry entry explains received bytes), the Rust type name for
    /// plain typed values (outputs).
    pub fn type_name(&self) -> &'static str {
        match &self.0 {
            Repr::Typed {
                type_name,
                vt: None,
                ..
            } => type_name,
            Repr::Typed { vt: Some(vt), .. } => vt.name,
            Repr::Inline { vt, .. } => vt.name,
            Repr::Wire { name, .. } => name,
        }
    }

    /// The frame kind this payload carries on the wire, if it has one.
    pub fn wire_kind(&self) -> Option<u16> {
        match &self.0 {
            Repr::Typed { vt, .. } => vt.as_ref().map(|vt| vt.kind),
            Repr::Inline { vt, .. } => Some(vt.kind),
            Repr::Wire { kind, .. } => Some(*kind),
        }
    }

    /// Appends this payload's wire frame to `out`. Returns `false` for
    /// typed payloads without a wire identity (outputs), which never
    /// legitimately reach a wire boundary.
    pub fn encode_wire_frame(&self, out: &mut Vec<u8>) -> bool {
        match &self.0 {
            Repr::Typed { value, vt, .. } => match vt {
                Some(vt) => {
                    (vt.encode_frame)(value.as_ref(), out);
                    true
                }
                None => false,
            },
            Repr::Inline { len, buf, .. } => {
                out.extend_from_slice(&buf[..*len as usize]);
                true
            }
            Repr::Wire { frame, .. } => {
                out.extend_from_slice(frame);
                true
            }
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload<{}>", self.type_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, CodecRegistry, WireReader, WireWriter};

    #[derive(Debug, PartialEq)]
    struct A(u8);
    #[derive(Debug, PartialEq)]
    struct B(u8);

    #[derive(Debug, Clone, PartialEq)]
    struct Big(Vec<u64>);
    impl WireMessage for Big {
        const KIND: u16 = crate::wire::KIND_TEST_BASE + 1;
        const KIND_NAME: &'static str = "test-big";
        fn encode_body(&self, out: &mut Vec<u8>) {
            for &v in &self.0 {
                WireWriter::u64(out, v);
            }
        }
        fn decode_body(bytes: &[u8]) -> Option<Self> {
            if !bytes.len().is_multiple_of(8) {
                return None;
            }
            let mut r = WireReader::new(bytes);
            let mut out = Vec::new();
            while r.remaining() > 0 {
                out.push(r.u64()?);
            }
            Some(Big(out))
        }
    }

    #[test]
    fn downcast_success_and_failure() {
        let p = Payload::new(A(3));
        assert!(p.is::<A>());
        assert!(!p.is::<B>());
        assert_eq!(p.downcast_ref::<A>(), Some(&A(3)));
        assert_eq!(p.downcast_ref::<B>(), None);
        drain_misses(None);
    }

    #[test]
    fn clone_shares_value() {
        let p = Payload::new(A(9));
        let q = p.clone();
        assert_eq!(q.downcast_ref::<A>(), Some(&A(9)));
    }

    #[test]
    fn debug_includes_type_name() {
        let p = Payload::new(A(1));
        let s = format!("{p:?}");
        assert!(s.contains("A"), "{s}");
    }

    #[test]
    fn small_message_is_inline_and_views_back() {
        let p = Payload::message(0xFEEDu64);
        assert!(matches!(p.0, Repr::Inline { .. }), "u64 must small-box");
        assert_eq!(p.to_msg::<u64>(), Some(0xFEED));
        assert_eq!(p.type_name(), "u64");
        assert_eq!(p.wire_kind(), Some(<u64 as WireMessage>::KIND));
        // Inline frames are not typed values.
        assert_eq!(p.downcast_ref::<u64>(), None);
        drain_misses(None);
    }

    #[test]
    fn large_message_stays_typed_with_wire_identity() {
        let big = Big((0..10).collect());
        let p = Payload::message(big.clone());
        assert!(matches!(p.0, Repr::Typed { vt: Some(_), .. }));
        assert_eq!(&*p.view::<Big>().unwrap(), &big);
        let mut frame = Vec::new();
        assert!(p.encode_wire_frame(&mut frame));
        let mut expect = Vec::new();
        encode_frame(&big, &mut expect);
        assert_eq!(frame, expect);
    }

    #[test]
    fn view_is_kind_checked_across_representations() {
        // Typed, inline, wire: a u64 payload never views as u32.
        let reg = CodecRegistry::with_builtins();
        let typed = Payload::message(Big(vec![1]));
        let inline = Payload::message(5u64);
        let mut frame = Vec::new();
        encode_frame(&5u64, &mut frame);
        let wire = Payload::from_wire(frame, &reg);
        for p in [&typed, &inline, &wire] {
            assert!(p.view::<u32>().is_none(), "{p:?}");
        }
        assert_eq!(wire.to_msg::<u64>(), Some(5));
        assert_eq!(wire.type_name(), "u64");
        drain_misses(None);
    }

    #[test]
    fn malformed_wire_frames_never_view_and_are_named() {
        let reg = CodecRegistry::with_builtins();
        let junk = Payload::from_wire(vec![1, 2, 3], &reg);
        assert_eq!(junk.type_name(), "wire:malformed");
        assert!(junk.view::<u64>().is_none());
        // Unknown kind with a consistent header.
        let mut frame = 0x7EEEu16.to_le_bytes().to_vec();
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(&[9, 9]);
        let unknown = Payload::from_wire(frame, &reg);
        assert_eq!(unknown.type_name(), "wire:unknown");
        assert!(unknown.view::<u16>().is_none());
        drain_misses(None);
    }

    #[test]
    fn misses_are_recorded_per_kind() {
        drain_misses(None);
        let p = Payload::message(7u64);
        assert!(p.view::<u32>().is_none());
        assert!(p.view::<u32>().is_none());
        let q = Payload::new(A(1));
        assert!(q.downcast_ref::<B>().is_none());
        let mut sink = Vec::new();
        drain_misses(Some(&mut sink));
        assert_eq!(sink.iter().find(|(k, _)| *k == "u64"), Some(&("u64", 2)));
        assert!(sink.iter().any(|(k, c)| k.contains("A") && *c == 1));
        // Drained: a second drain sees nothing.
        let mut sink2 = Vec::new();
        drain_misses(Some(&mut sink2));
        assert!(sink2.is_empty());
    }

    #[test]
    fn payload_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Payload>();
    }

    #[test]
    fn frame_bytes_slices_share_one_buffer() {
        let reg = CodecRegistry::with_builtins();
        let mut buf = Vec::new();
        encode_frame(&0x11u64, &mut buf);
        let first_len = buf.len();
        encode_frame(&0x22u64, &mut buf);
        let shared = Arc::new(buf);
        let a = Payload::from_wire(FrameBytes::from_shared(&shared, 0, first_len), &reg);
        let b = Payload::from_wire(
            FrameBytes::from_shared(&shared, first_len, shared.len()),
            &reg,
        );
        assert_eq!(a.to_msg::<u64>(), Some(0x11));
        assert_eq!(b.to_msg::<u64>(), Some(0x22));
        // Both payloads (and their clones) alias the one buffer.
        let c = b.clone();
        assert_eq!(Arc::strong_count(&shared), 4);
        assert_eq!(c.to_msg::<u64>(), Some(0x22));
        drop((a, b, c));
        assert_eq!(Arc::strong_count(&shared), 1, "slices released the buffer");
    }

    #[derive(Debug, Clone, PartialEq)]
    struct HintedPair(u64, u64);
    impl WireMessage for HintedPair {
        const KIND: u16 = crate::wire::KIND_TEST_BASE + 2;
        const KIND_NAME: &'static str = "test-hinted-pair";
        const MAX_BODY_HINT: Option<usize> = Some(16);
        fn encode_body(&self, out: &mut Vec<u8>) {
            WireWriter::u64(out, self.0);
            WireWriter::u64(out, self.1);
        }
        fn decode_body(bytes: &[u8]) -> Option<Self> {
            let mut r = WireReader::new(bytes);
            let v = HintedPair(r.u64()?, r.u64()?);
            r.finish()?;
            Some(v)
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    struct HintedWide([u64; 8]);
    impl WireMessage for HintedWide {
        const KIND: u16 = crate::wire::KIND_TEST_BASE + 3;
        const KIND_NAME: &'static str = "test-hinted-wide";
        const MAX_BODY_HINT: Option<usize> = Some(64);
        fn encode_body(&self, out: &mut Vec<u8>) {
            for v in self.0 {
                WireWriter::u64(out, v);
            }
        }
        fn decode_body(bytes: &[u8]) -> Option<Self> {
            let mut r = WireReader::new(bytes);
            let mut vs = [0u64; 8];
            for v in &mut vs {
                *v = r.u64()?;
            }
            r.finish()?;
            Some(HintedWide(vs))
        }
    }

    #[test]
    fn body_hints_pick_the_representation_statically() {
        let small = Payload::message(HintedPair(1, 2));
        assert!(matches!(small.0, Repr::Inline { .. }), "≤ cap hint inlines");
        assert_eq!(small.to_msg::<HintedPair>(), Some(HintedPair(1, 2)));
        let wide = Payload::message(HintedWide([7; 8]));
        assert!(
            matches!(wide.0, Repr::Typed { vt: Some(_), .. }),
            "> cap hint skips the probe and stays typed"
        );
        assert_eq!(wide.to_msg::<HintedWide>(), Some(HintedWide([7; 8])));
        // Both still encode well-formed frames at the wire boundary.
        for p in [&small, &wide] {
            let mut frame = Vec::new();
            assert!(p.encode_wire_frame(&mut frame));
            assert!(crate::wire::parse_frame(&frame).is_some());
        }
    }
}
