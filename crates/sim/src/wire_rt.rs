//! The wire-serialized runtime: every envelope crosses a byte boundary.
//!
//! [`WireRuntime`] drives the same deterministic scheduling machinery as
//! [`SimNetwork`](crate::SimNetwork), but parties exchange *bytes*, not
//! values: each party owns an OS socket pair (a `UnixStream` loopback),
//! and every same-destination run of envelopes it emits is
//!
//! 1. **encoded as one batch** — the shared sender/receiver, then per
//!    envelope the session path and the payload's self-describing frame
//!    (`kind`, `len`, body), serialized little-endian through
//!    [`WireWriter::write_batch`];
//! 2. **written** to the party's socket and **read back** through the
//!    kernel (the byte-stream seam a process-per-party deployment
//!    crosses; instance state stays in-process so deployments remain
//!    `Box<dyn Instance>`-generic) into a pooled, reusable read buffer;
//! 3. **re-framed** from the stream (outer length prefix — stream
//!    transports do not preserve message boundaries) and **decoded
//!    lazily**: each receiver gets a [`Payload`] wire frame *sliced*
//!    out of the shared read buffer (no per-frame copy) that only
//!    becomes a typed message when an instance [`view`](Payload::view)s
//!    it through its own kind-checked decoder.
//!
//! Steady-state delivery is allocation-free: read buffers recycle
//! through a pool once their frames are dropped ([`Metrics`]'s
//! `pool_reused`/`pool_alloc` counters prove the reuse), and the
//! batch framing plus a one-entry kind-name cache amortize the
//! per-message registry lookups across each run.
//!
//! Because the schedule depends only on envelope *metadata* (never on
//! payload representation), a wire run is bit-for-bit identical to the
//! same seed's `sim` run whenever every Byzantine payload is well-formed
//! — and when it is not (the `garbage`/`equivocate` behaviours emit
//! genuinely malformed, truncated or kind-spoofed frames via
//! [`WireMessage::raw_frame`](crate::wire::WireMessage::raw_frame)),
//! honest decoders must reject the bytes without panicking, which the
//! conformance suite checks. Byte-level activity is visible in
//! [`Metrics`]: `wire_frames`, `wire_bytes`, `wire_malformed`.
//!
//! Build one with [`runtime_by_name`](crate::runtime_by_name)
//! (`"wire"`, `"wire:<scheduler>"` — the process-global codec registry
//! snapshot supplies kind names), or directly with
//! [`WireRuntime::new`] for a custom per-run [`CodecRegistry`].

use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::network::SimNetwork;
use crate::node::Outgoing;
use crate::payload::{FrameBytes, Payload};
use crate::runtime::{Metrics, NetConfig, RunReport, Runtime};
use crate::scheduler::Scheduler;
use crate::wire::{get_session, parse_frame, put_session, CodecRegistry, WireReader, WireWriter};
use std::collections::VecDeque;
use std::sync::Arc;

/// Transport chunk size: batches are written and read back through the
/// kernel socket in alternating chunks of at most this many bytes, so an
/// arbitrarily large envelope batch cannot deadlock the synchronous
/// write-then-read loopback. The chunk must stay below the smallest
/// default unix-socket buffer pair among supported platforms — macOS
/// defaults to ~8 KiB per direction (Linux ~208 KiB), so 4 KiB leaves
/// comfortable headroom everywhere.
const SOCKET_CHUNK: usize = 4 * 1024;

/// Read buffers kept for reuse per link. Buffers released while their
/// frames are still referenced by in-flight payloads age out of the pool
/// naturally (an acquire that finds them still shared skips them).
const READBACK_POOL_CAP: usize = 64;

/// How many pooled buffers one acquire inspects before giving up and
/// allocating — bounds the per-run scan when the whole pool is pinned by
/// in-flight payloads.
const READBACK_SCAN: usize = 4;

/// One party's byte transport: a connected OS socket pair on Unix, an
/// in-memory loopback elsewhere.
struct Pipe {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
    #[cfg(not(unix))]
    buf: std::collections::VecDeque<u8>,
}

impl Pipe {
    fn new() -> Pipe {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()
                .expect("wire runtime: socketpair unavailable");
            Pipe { tx, rx }
        }
        #[cfg(not(unix))]
        {
            Pipe {
                buf: std::collections::VecDeque::new(),
            }
        }
    }

    /// Writes `bytes` and reads them back through the transport,
    /// alternating per [`SOCKET_CHUNK`]-sized chunk so batches of any
    /// size fit the kernel's socket buffers.
    fn round_trip(&mut self, bytes: &[u8], readback: &mut Vec<u8>) {
        readback.clear();
        #[cfg(unix)]
        {
            use std::io::{Read, Write};
            readback.resize(bytes.len(), 0);
            for (w, r) in bytes
                .chunks(SOCKET_CHUNK)
                .zip(readback.chunks_mut(SOCKET_CHUNK))
            {
                self.tx
                    .write_all(w)
                    .expect("wire runtime: socket write failed");
                self.rx
                    .read_exact(r)
                    .expect("wire runtime: socket read failed");
            }
        }
        #[cfg(not(unix))]
        {
            self.buf.extend(bytes);
            readback.extend(self.buf.drain(..));
        }
    }
}

/// The per-run byte boundary [`SimNetwork`] routes sends through when it
/// runs in wire mode: per-party pipes, the codec registry for kind-name
/// resolution, a pool of reusable read buffers and a one-entry kind-name
/// cache that amortizes the registry map hit across a batch.
pub(crate) struct WireLink {
    registry: Arc<CodecRegistry>,
    pipes: Vec<Pipe>,
    scratch: Vec<u8>,
    /// Recycled read buffers: a released buffer becomes reacquirable
    /// once every [`FrameBytes`] sliced from it has been dropped.
    pool: VecDeque<Arc<Vec<u8>>>,
    /// Last `(kind, name)` resolved — same-kind frames dominate a batch,
    /// so most lookups within a run hit this instead of the registry.
    kind_cache: Option<(u16, Option<&'static str>)>,
}

impl WireLink {
    pub(crate) fn new(n: usize, registry: Arc<CodecRegistry>) -> Self {
        WireLink {
            registry,
            pipes: (0..n).map(|_| Pipe::new()).collect(),
            scratch: Vec::new(),
            pool: VecDeque::new(),
            kind_cache: None,
        }
    }

    /// A cleared read buffer: recycled from the pool when one of the
    /// first [`READBACK_SCAN`] pooled buffers is no longer referenced by
    /// any in-flight frame, freshly allocated otherwise. Hits and misses
    /// land in the pool-stats metrics.
    fn acquire_buffer(&mut self, metrics: &mut Metrics) -> Arc<Vec<u8>> {
        for _ in 0..self.pool.len().min(READBACK_SCAN) {
            let mut buf = self.pool.pop_front().expect("len-bounded loop");
            match Arc::get_mut(&mut buf) {
                Some(v) => {
                    v.clear();
                    metrics.pool_reused += 1;
                    return buf;
                }
                // Still pinned by in-flight payloads: rotate to the back
                // and try an older (more likely free) buffer.
                None => self.pool.push_back(buf),
            }
        }
        metrics.pool_alloc += 1;
        Arc::new(Vec::new())
    }

    fn release_buffer(&mut self, buf: Arc<Vec<u8>>) {
        if self.pool.len() < READBACK_POOL_CAP {
            self.pool.push_back(buf);
        }
    }

    /// Resolves `kind`'s diagnostic name through the one-entry cache,
    /// falling back to the registry's map on a kind change.
    fn kind_name_cached(&mut self, kind: u16) -> Option<&'static str> {
        match self.kind_cache {
            Some((k, name)) if k == kind => name,
            _ => {
                let name = self.registry.kind_name(kind);
                self.kind_cache = Some((kind, name));
                name
            }
        }
    }

    /// Serializes a run of same-destination outgoing envelopes as one
    /// framed batch, round-trips the bytes through the sender's socket,
    /// and hands each reconstructed `(to, session, payload)` to
    /// `deliver` in order. The payloads are lazily decoded wire frames
    /// sliced straight out of the shared read buffer — no per-frame
    /// copy. Malformed payload frames (the byte-level adversary)
    /// survive as payloads no honest view will ever match — counted,
    /// never panicking.
    pub(crate) fn round_trip_run(
        &mut self,
        from: PartyId,
        run: &[Outgoing],
        metrics: &mut Metrics,
        mut deliver: impl FnMut(PartyId, SessionId, Payload),
    ) {
        let to = run[0].to;
        debug_assert!(run.iter().all(|o| o.to == to), "mixed-destination run");
        self.scratch.clear();
        // Outer transport frame: u32 length prefix (patched below), the
        // shared from/to, then the envelope batch (session + payload
        // frame per item).
        self.scratch.extend_from_slice(&[0; 4]);
        WireWriter::u32(&mut self.scratch, from.0 as u32);
        WireWriter::u32(&mut self.scratch, to.0 as u32);
        WireWriter::write_batch(&mut self.scratch, run.len(), |out, i| {
            put_session(out, &run[i].session);
            if !run[i].payload.encode_wire_frame(out) {
                // A payload without a wire identity (a plain
                // `Payload::new` value leaking onto the network) cannot
                // be serialized; emit an explicitly malformed frame so
                // the receiver drops it observably instead of the
                // runtime panicking.
                debug_assert!(false, "non-wire payload sent on the wire runtime");
                out.extend_from_slice(&u16::MAX.to_le_bytes());
            }
        });
        let total = (self.scratch.len() - 4) as u32;
        self.scratch[..4].copy_from_slice(&total.to_le_bytes());

        let mut readback = self.acquire_buffer(metrics);
        {
            let buf = Arc::get_mut(&mut readback).expect("buffer acquired unshared");
            self.pipes[from.0].round_trip(&self.scratch, buf);
        }
        metrics.wire_bytes += readback.len() as u64;
        metrics.wire_frames += run.len() as u64;

        // Re-frame from the stream: outer length first, then the batch
        // the transport wrote (always well-formed — only the payload
        // frame regions are adversary-controlled).
        let base = readback.as_ptr() as usize;
        let mut r = WireReader::new(&readback);
        let declared = r.u32().expect("wire transport lost the length prefix") as usize;
        assert_eq!(
            declared + 4,
            readback.len(),
            "wire transport desynchronized"
        );
        let decoded_from = PartyId(r.u32().expect("envelope sender") as usize);
        debug_assert_eq!(decoded_from, from, "sender survives the round trip");
        let to = PartyId(r.u32().expect("envelope receiver") as usize);
        let decoded = r.read_batch(|item| {
            let mut ir = WireReader::new(item);
            let session = get_session(&mut ir).expect("envelope session");
            let frame = ir.rest();
            if parse_frame(frame).is_none() {
                metrics.wire_malformed += 1;
            }
            // Slice the frame out of the shared read buffer by offset —
            // the zero-copy handoff to the payload layer.
            let start = frame.as_ptr() as usize - base;
            let frame = FrameBytes::from_shared(&readback, start, start + frame.len());
            let payload = Payload::from_wire_named(frame, |kind| self.kind_name_cached(kind));
            deliver(to, session, payload);
        });
        assert_eq!(
            decoded,
            Some(run.len() as u32),
            "wire transport lost part of the batch"
        );
        self.release_buffer(readback);
    }
}

/// The wire-serialized execution backend — see the [module docs](self).
///
/// # Examples
///
/// ```
/// use aft_sim::{Context, Instance, NetConfig, PartyId, Payload, RuntimeExt,
///               SessionId, SessionTag, runtime_by_name};
///
/// struct Hello { heard: usize }
/// impl Instance for Hello {
///     fn on_start(&mut self, ctx: &mut Context<'_>) { ctx.send_all(1u8); }
///     fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
///         if p.to_msg::<u8>() == Some(1) {
///             self.heard += 1;
///             if self.heard == ctx.n() { ctx.output(self.heard); }
///         }
///     }
/// }
///
/// let sid = SessionId::root().child(SessionTag::new("hello-wire", 0));
/// let mut rt = runtime_by_name("wire", NetConfig::new(4, 1, 7)).unwrap();
/// for p in 0..4 {
///     rt.spawn(PartyId(p), sid.clone(), Box::new(Hello { heard: 0 }));
/// }
/// let report = rt.run(1_000_000);
/// assert_eq!(report.stop, aft_sim::StopReason::Quiescent);
/// assert!(report.metrics.wire_frames > 0, "bytes actually moved");
/// for p in 0..4 {
///     assert_eq!(rt.output_as::<usize>(PartyId(p), &sid), Some(&4));
/// }
/// ```
pub struct WireRuntime {
    net: SimNetwork,
}

impl WireRuntime {
    /// Creates a wire runtime with an explicit per-run codec registry
    /// (use [`runtime_by_name`](crate::runtime_by_name) for the global
    /// snapshot).
    pub fn new(
        config: NetConfig,
        scheduler: Box<dyn Scheduler>,
        registry: Arc<CodecRegistry>,
    ) -> Self {
        WireRuntime {
            net: SimNetwork::with_codec(config, scheduler, registry),
        }
    }

    /// The first output of `party` in `session`, if recorded.
    pub fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.net.output(party, session)
    }

    /// Run metrics so far (including the `wire_*` byte-level counters).
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }
}

impl Runtime for WireRuntime {
    fn config(&self) -> &NetConfig {
        self.net.config()
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        self.net.spawn(party, session, instance);
    }

    fn crash(&mut self, party: PartyId) {
        self.net.crash(party);
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        self.net.run(max_steps)
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.net.output(party, session)
    }

    fn metrics(&self) -> Metrics {
        Runtime::metrics(&self.net)
    }

    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        self.net.retire_session(party, session)
    }

    fn schedule_recover(
        &mut self,
        party: PartyId,
        at_vtime: u64,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> bool {
        Runtime::schedule_recover(&mut self.net, party, at_vtime, session, instance)
    }

    fn set_trace(&mut self, mode: crate::trace::TraceMode) {
        self.net.set_trace(mode);
    }

    fn take_trace(&mut self) -> Option<Box<dyn crate::trace::TraceSink>> {
        self.net.take_trace()
    }

    fn install_adaptive(&mut self, ctrl: crate::adaptive::SharedAdaptive) -> bool {
        self.net.install_adaptive(ctrl);
        true
    }

    fn adaptive_handle(&self) -> Option<crate::adaptive::SharedAdaptive> {
        self.net.adaptive_handle()
    }

    fn backend_name(&self) -> &'static str {
        "wire"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::{runtime_by_name, RuntimeExt, StopReason};
    use crate::scheduler::RandomScheduler;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("wirert", 0))
    }

    /// Counts pings; outputs after 3.
    struct Pinger {
        heard: usize,
    }
    impl Instance for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if p.to_msg::<u8>().is_some() {
                self.heard += 1;
                if self.heard == 3 {
                    ctx.output(self.heard);
                }
            }
        }
    }

    #[test]
    fn wire_run_delivers_through_bytes() {
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 5),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::with_builtins()),
        );
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
        let m = rt.metrics();
        assert_eq!(m.wire_frames, m.sent, "every envelope crossed the wire");
        assert!(m.wire_bytes > 0);
        assert_eq!(m.wire_malformed, 0, "honest frames are well-formed");
        assert_eq!(m.sent, m.delivered + m.dropped_shunned + m.dropped_crashed);
    }

    /// Chatters: every received ping is answered to its sender until a
    /// budget runs out — sustained bounded-depth traffic (the protocol
    /// steady state the read-buffer pool is sized for).
    struct Chatter {
        budget: usize,
    }
    impl Instance for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, from: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if p.to_msg::<u8>().is_some() && self.budget > 0 {
                self.budget -= 1;
                ctx.send(from, 1u8);
            }
        }
    }

    #[test]
    fn read_buffers_recycle_through_the_pool() {
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 11),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::with_builtins()),
        );
        let sid = SessionId::root().child(SessionTag::new("wirepool", 0));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid.clone(), Box::new(Chatter { budget: 50 }));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        let m = report.metrics;
        assert!(
            m.pool_reused > 0,
            "sustained traffic must recycle read buffers (reused {}, alloc {})",
            m.pool_reused,
            m.pool_alloc
        );
        assert!(
            m.pool_reused > m.pool_alloc,
            "steady state should mostly hit the pool (reused {}, alloc {})",
            m.pool_reused,
            m.pool_alloc
        );
        assert_eq!(m.wire_malformed, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// Differential no-leak property: a link whose read buffers
        /// recycle through the pool decodes every run identically to a
        /// fresh (never-pooled) link — so a reused buffer can never
        /// surface bytes from a prior message, across shrinking and
        /// growing variable-length bodies.
        #[test]
        fn recycled_read_buffers_never_leak_prior_bytes(
            runs in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200),
                    1..6,
                ),
                2..8,
            ),
        ) {
            let registry = Arc::new(CodecRegistry::with_builtins());
            let session = SessionId::root().child(SessionTag::new("leak", 0));
            let mut pooled = WireLink::new(1, Arc::clone(&registry));
            let mut metrics = Metrics::default();
            for bodies in &runs {
                let run: Vec<Outgoing> = bodies
                    .iter()
                    .map(|body| Outgoing {
                        to: PartyId(0),
                        session: session.clone(),
                        payload: Payload::message(body.clone()),
                    })
                    .collect();
                let mut decoded: Vec<Option<Vec<u8>>> = Vec::new();
                pooled.round_trip_run(PartyId(0), &run, &mut metrics, |_, _, p| {
                    decoded.push(p.to_msg::<Vec<u8>>());
                });
                let mut fresh = WireLink::new(1, Arc::clone(&registry));
                let mut fresh_metrics = Metrics::default();
                let mut reference: Vec<Option<Vec<u8>>> = Vec::new();
                fresh.round_trip_run(PartyId(0), &run, &mut fresh_metrics, |_, _, p| {
                    reference.push(p.to_msg::<Vec<u8>>());
                });
                proptest::prop_assert_eq!(&decoded, &reference);
                let expect: Vec<Option<Vec<u8>>> =
                    bodies.iter().map(|b| Some(b.clone())).collect();
                proptest::prop_assert_eq!(decoded, expect);
            }
            // Payloads are dropped inside the closure, so every run after
            // the first must find the previous buffer free.
            proptest::prop_assert!(metrics.pool_reused > 0);
        }
    }

    #[test]
    fn wire_matches_sim_bit_for_bit_on_honest_runs() {
        // Same seed, same scheduler family: the byte boundary must not
        // perturb the schedule or the outputs.
        for seed in [1u64, 9, 42] {
            let run = |name: &str| {
                let mut rt = runtime_by_name(name, NetConfig::new(4, 1, seed)).unwrap();
                for p in 0..4 {
                    rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
                }
                let report = rt.run(1_000_000);
                let outs: Vec<Option<usize>> = (0..4)
                    .map(|p| rt.output_as::<usize>(PartyId(p), &sid()).copied())
                    .collect();
                (
                    report.stop,
                    report.metrics.sent,
                    report.metrics.delivered,
                    outs,
                )
            };
            assert_eq!(run("sim"), run("wire"), "seed {seed}");
            assert_eq!(run("sim:lifo"), run("wire:lifo"), "seed {seed}");
        }
    }

    #[test]
    fn crash_before_run_retracts_on_the_wire_backend() {
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 3),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::with_builtins()),
        );
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        rt.crash(PartyId(3));
        assert_eq!(rt.metrics().sent, 12, "P3's buffered sends retracted");
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..3 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
    }

    #[test]
    fn unregistered_kinds_still_deliver_with_fallback_name() {
        // An empty registry (no builtins): frames still round-trip and
        // decode lazily by type; only the diagnostic name degrades.
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 5),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::new()),
        );
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        rt.run(1_000_000);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
    }
}
