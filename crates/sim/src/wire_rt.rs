//! The wire-serialized runtime: every envelope crosses a byte boundary.
//!
//! [`WireRuntime`] drives the same deterministic scheduling machinery as
//! [`SimNetwork`](crate::SimNetwork), but parties exchange *bytes*, not
//! values: each party owns an OS socket pair (a `UnixStream` loopback),
//! and every envelope it emits is
//!
//! 1. **encoded** — sender, session path and the payload's
//!    self-describing frame (`kind`, `len`, body) serialized
//!    little-endian;
//! 2. **written** to the party's socket and **read back** through the
//!    kernel (the byte-stream seam a process-per-party deployment
//!    crosses; instance state stays in-process so deployments remain
//!    `Box<dyn Instance>`-generic);
//! 3. **re-framed** from the stream (outer length prefix — stream
//!    transports do not preserve message boundaries) and **decoded
//!    lazily**: the receiver gets a [`Payload`] wire frame that only
//!    becomes a typed message when an instance [`view`](Payload::view)s
//!    it through its own kind-checked decoder.
//!
//! Because the schedule depends only on envelope *metadata* (never on
//! payload representation), a wire run is bit-for-bit identical to the
//! same seed's `sim` run whenever every Byzantine payload is well-formed
//! — and when it is not (the `garbage`/`equivocate` behaviours emit
//! genuinely malformed, truncated or kind-spoofed frames via
//! [`WireMessage::raw_frame`](crate::wire::WireMessage::raw_frame)),
//! honest decoders must reject the bytes without panicking, which the
//! conformance suite checks. Byte-level activity is visible in
//! [`Metrics`]: `wire_frames`, `wire_bytes`, `wire_malformed`.
//!
//! Build one with [`runtime_by_name`](crate::runtime_by_name)
//! (`"wire"`, `"wire:<scheduler>"` — the process-global codec registry
//! snapshot supplies kind names), or directly with
//! [`WireRuntime::new`] for a custom per-run [`CodecRegistry`].

use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::network::SimNetwork;
use crate::node::Outgoing;
use crate::payload::Payload;
use crate::runtime::{Metrics, NetConfig, RunReport, Runtime};
use crate::scheduler::Scheduler;
use crate::wire::{get_session, parse_frame, put_session, CodecRegistry, WireReader, WireWriter};
use std::sync::Arc;

/// Envelopes larger than this bypass the kernel socket (they are framed
/// and decoded identically, just not written through the OS) so a single
/// oversized message cannot deadlock the synchronous
/// write-all-then-read-back loopback. The cap must stay below the
/// smallest default unix-socket buffer pair among supported platforms —
/// macOS defaults to ~8 KiB per direction (Linux ~208 KiB), so 4 KiB
/// leaves comfortable headroom everywhere.
const SOCKET_MAX_ENVELOPE: usize = 4 * 1024;

/// One party's byte transport: a connected OS socket pair on Unix, an
/// in-memory loopback elsewhere.
struct Pipe {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
    #[cfg(not(unix))]
    buf: std::collections::VecDeque<u8>,
}

impl Pipe {
    fn new() -> Pipe {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()
                .expect("wire runtime: socketpair unavailable");
            Pipe { tx, rx }
        }
        #[cfg(not(unix))]
        {
            Pipe {
                buf: std::collections::VecDeque::new(),
            }
        }
    }

    /// Writes `bytes` and reads them back through the transport.
    fn round_trip(&mut self, bytes: &[u8], readback: &mut Vec<u8>) {
        readback.clear();
        #[cfg(unix)]
        {
            use std::io::{Read, Write};
            self.tx
                .write_all(bytes)
                .expect("wire runtime: socket write failed");
            readback.resize(bytes.len(), 0);
            self.rx
                .read_exact(readback)
                .expect("wire runtime: socket read failed");
        }
        #[cfg(not(unix))]
        {
            self.buf.extend(bytes);
            readback.extend(self.buf.drain(..));
        }
    }
}

/// The per-run byte boundary [`SimNetwork`] routes sends through when it
/// runs in wire mode: per-party pipes, the codec registry for kind-name
/// resolution, and reusable buffers.
pub(crate) struct WireLink {
    registry: Arc<CodecRegistry>,
    pipes: Vec<Pipe>,
    scratch: Vec<u8>,
    readback: Vec<u8>,
}

impl WireLink {
    pub(crate) fn new(n: usize, registry: Arc<CodecRegistry>) -> Self {
        WireLink {
            registry,
            pipes: (0..n).map(|_| Pipe::new()).collect(),
            scratch: Vec::new(),
            readback: Vec::new(),
        }
    }

    /// Serializes one outgoing envelope, round-trips the bytes through
    /// the sender's socket, and reconstructs the envelope with a lazily
    /// decoded wire payload. Malformed payload frames (the byte-level
    /// adversary) survive as payloads no honest view will ever match —
    /// counted, never panicking.
    pub(crate) fn round_trip(
        &mut self,
        from: PartyId,
        out: Outgoing,
        metrics: &mut Metrics,
    ) -> (PartyId, SessionId, Payload) {
        self.scratch.clear();
        // Outer transport frame: u32 length prefix (patched below), then
        // the envelope: from, to, session, payload frame.
        self.scratch.extend_from_slice(&[0; 4]);
        WireWriter::u32(&mut self.scratch, from.0 as u32);
        WireWriter::u32(&mut self.scratch, out.to.0 as u32);
        put_session(&mut self.scratch, &out.session);
        if !out.payload.encode_wire_frame(&mut self.scratch) {
            // A payload without a wire identity (a plain `Payload::new`
            // value leaking onto the network) cannot be serialized;
            // emit an explicitly malformed frame so the receiver drops
            // it observably instead of the runtime panicking.
            debug_assert!(false, "non-wire payload sent on the wire runtime");
            self.scratch.extend_from_slice(&u16::MAX.to_le_bytes());
        }
        let total = (self.scratch.len() - 4) as u32;
        self.scratch[..4].copy_from_slice(&total.to_le_bytes());

        if self.scratch.len() <= SOCKET_MAX_ENVELOPE {
            let (pipe, scratch) = (&mut self.pipes[from.0], &self.scratch);
            pipe.round_trip(scratch, &mut self.readback);
        } else {
            self.readback.clear();
            self.readback.extend_from_slice(&self.scratch);
        }
        metrics.wire_bytes += self.readback.len() as u64;
        metrics.wire_frames += 1;

        // Re-frame from the stream: outer length first, then the
        // envelope fields the transport wrote (always well-formed — only
        // the payload frame region is adversary-controlled).
        let mut r = WireReader::new(&self.readback);
        let declared = r.u32().expect("wire transport lost the length prefix") as usize;
        assert_eq!(
            declared + 4,
            self.readback.len(),
            "wire transport desynchronized"
        );
        let decoded_from = PartyId(r.u32().expect("envelope sender") as usize);
        debug_assert_eq!(decoded_from, from, "sender survives the round trip");
        let to = PartyId(r.u32().expect("envelope receiver") as usize);
        let session = get_session(&mut r).expect("envelope session");
        let frame = r.rest();
        if parse_frame(frame).is_none() {
            metrics.wire_malformed += 1;
        }
        let payload = Payload::from_wire(frame.to_vec(), &self.registry);
        (to, session, payload)
    }
}

/// The wire-serialized execution backend — see the [module docs](self).
///
/// # Examples
///
/// ```
/// use aft_sim::{Context, Instance, NetConfig, PartyId, Payload, RuntimeExt,
///               SessionId, SessionTag, runtime_by_name};
///
/// struct Hello { heard: usize }
/// impl Instance for Hello {
///     fn on_start(&mut self, ctx: &mut Context<'_>) { ctx.send_all(1u8); }
///     fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
///         if p.to_msg::<u8>() == Some(1) {
///             self.heard += 1;
///             if self.heard == ctx.n() { ctx.output(self.heard); }
///         }
///     }
/// }
///
/// let sid = SessionId::root().child(SessionTag::new("hello-wire", 0));
/// let mut rt = runtime_by_name("wire", NetConfig::new(4, 1, 7)).unwrap();
/// for p in 0..4 {
///     rt.spawn(PartyId(p), sid.clone(), Box::new(Hello { heard: 0 }));
/// }
/// let report = rt.run(1_000_000);
/// assert_eq!(report.stop, aft_sim::StopReason::Quiescent);
/// assert!(report.metrics.wire_frames > 0, "bytes actually moved");
/// for p in 0..4 {
///     assert_eq!(rt.output_as::<usize>(PartyId(p), &sid), Some(&4));
/// }
/// ```
pub struct WireRuntime {
    net: SimNetwork,
}

impl WireRuntime {
    /// Creates a wire runtime with an explicit per-run codec registry
    /// (use [`runtime_by_name`](crate::runtime_by_name) for the global
    /// snapshot).
    pub fn new(
        config: NetConfig,
        scheduler: Box<dyn Scheduler>,
        registry: Arc<CodecRegistry>,
    ) -> Self {
        WireRuntime {
            net: SimNetwork::with_codec(config, scheduler, registry),
        }
    }

    /// The first output of `party` in `session`, if recorded.
    pub fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.net.output(party, session)
    }

    /// Run metrics so far (including the `wire_*` byte-level counters).
    pub fn metrics(&self) -> &Metrics {
        self.net.metrics()
    }
}

impl Runtime for WireRuntime {
    fn config(&self) -> &NetConfig {
        self.net.config()
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        self.net.spawn(party, session, instance);
    }

    fn crash(&mut self, party: PartyId) {
        self.net.crash(party);
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        self.net.run(max_steps)
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.net.output(party, session)
    }

    fn metrics(&self) -> Metrics {
        self.net.metrics().clone()
    }

    fn backend_name(&self) -> &'static str {
        "wire"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::{runtime_by_name, RuntimeExt, StopReason};
    use crate::scheduler::RandomScheduler;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("wirert", 0))
    }

    /// Counts pings; outputs after 3.
    struct Pinger {
        heard: usize,
    }
    impl Instance for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if p.to_msg::<u8>().is_some() {
                self.heard += 1;
                if self.heard == 3 {
                    ctx.output(self.heard);
                }
            }
        }
    }

    #[test]
    fn wire_run_delivers_through_bytes() {
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 5),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::with_builtins()),
        );
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
        let m = rt.metrics();
        assert_eq!(m.wire_frames, m.sent, "every envelope crossed the wire");
        assert!(m.wire_bytes > 0);
        assert_eq!(m.wire_malformed, 0, "honest frames are well-formed");
        assert_eq!(m.sent, m.delivered + m.dropped_shunned + m.dropped_crashed);
    }

    #[test]
    fn wire_matches_sim_bit_for_bit_on_honest_runs() {
        // Same seed, same scheduler family: the byte boundary must not
        // perturb the schedule or the outputs.
        for seed in [1u64, 9, 42] {
            let run = |name: &str| {
                let mut rt = runtime_by_name(name, NetConfig::new(4, 1, seed)).unwrap();
                for p in 0..4 {
                    rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
                }
                let report = rt.run(1_000_000);
                let outs: Vec<Option<usize>> = (0..4)
                    .map(|p| rt.output_as::<usize>(PartyId(p), &sid()).copied())
                    .collect();
                (
                    report.stop,
                    report.metrics.sent,
                    report.metrics.delivered,
                    outs,
                )
            };
            assert_eq!(run("sim"), run("wire"), "seed {seed}");
            assert_eq!(run("sim:lifo"), run("wire:lifo"), "seed {seed}");
        }
    }

    #[test]
    fn crash_before_run_retracts_on_the_wire_backend() {
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 3),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::with_builtins()),
        );
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        rt.crash(PartyId(3));
        assert_eq!(rt.metrics().sent, 12, "P3's buffered sends retracted");
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..3 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
    }

    #[test]
    fn unregistered_kinds_still_deliver_with_fallback_name() {
        // An empty registry (no builtins): frames still round-trip and
        // decode lazily by type; only the diagnostic name degrades.
        let mut rt = WireRuntime::new(
            NetConfig::new(4, 1, 5),
            Box::new(RandomScheduler),
            Arc::new(CodecRegistry::new()),
        );
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        rt.run(1_000_000);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
    }
}
