//! The deterministic asynchronous network simulator.

use crate::adaptive::{ObsEvent, SharedAdaptive};
use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::net::NetEvent;
use crate::node::{Node, Outgoing};
use crate::payload::Payload;
use crate::queue::Pending;
use crate::runtime::{
    account_delivery, build_node, deliver_raw, DeliverCtx, DeliverStatus, DeliveryOutcome, Metrics,
    NetConfig, RecoverPlan, RunReport, Runtime, StopReason, REJOIN_GRACE,
};
use crate::scheduler::Scheduler;
use crate::trace::{TraceEvent, TraceMode, TraceSink};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;

/// An in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Destination session.
    pub session: SessionId,
    /// Body.
    pub payload: Payload,
    /// Global send sequence number (unique, monotone).
    pub seq: u64,
    /// Delivery step at which the envelope was sent.
    pub born_step: u64,
}

/// Where the network's node-side work actually executes.
///
/// Normally `SimNetwork` owns its [`Node`]s and dispatches inline. A
/// backend that wants the *same* schedule but different execution (the
/// async event-loop backend runs each party as a task) takes the nodes
/// out, installs a host, and the network routes every node operation —
/// delivery dispatch, crash, recovery revival, spawn — through it while
/// keeping all scheduling, metrics and tracing itself. The step
/// sequence is therefore bit-for-bit identical with and without a host.
pub(crate) trait StepHost {
    /// Dispatches `env` to its destination party, returning the
    /// delivery's outcome and the envelopes it emitted.
    fn deliver(&mut self, env: Envelope) -> (DeliveryOutcome, Vec<Outgoing>);
    /// Crashes `party`'s node.
    fn crash(&mut self, party: PartyId);
    /// Recovery phase 1: un-crashes `party` and retires its stale
    /// `session` slot.
    fn revive(&mut self, party: PartyId, session: &SessionId);
    /// Spawns `instance` on `party`, returning its initial sends.
    fn spawn(
        &mut self,
        party: PartyId,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> Vec<Outgoing>;
    /// Tears the host down and hands the nodes back, in party order, so
    /// the network can resume inline dispatch (and serve outputs).
    fn finish(self: Box<Self>) -> Vec<Node>;
}

/// The deterministic discrete-event network: `n` nodes, a slab of in-flight
/// envelopes, and a [`Scheduler`] choosing the delivery order.
///
/// A run is a pure function of `(NetConfig, spawned instances, scheduler)`,
/// which is what makes Monte-Carlo estimation over seeds meaningful and
/// every failure replayable.
///
/// `SimNetwork` implements [`Runtime`], so deployments written against the
/// trait run identically here and on the [`ThreadedRuntime`]; the inherent
/// methods additionally expose simulator-only power (step-by-step
/// execution, delivery traces, scheduled crashes, mid-run inspection).
///
/// [`ThreadedRuntime`]: crate::ThreadedRuntime
///
/// # Examples
///
/// ```
/// use aft_sim::{Context, Instance, NetConfig, PartyId, Payload, RandomScheduler,
///               SessionId, SessionTag, SimNetwork};
///
/// /// Every party greets everyone; a party outputs when it heard n greetings.
/// struct Hello { heard: usize }
/// impl Instance for Hello {
///     fn on_start(&mut self, ctx: &mut Context<'_>) { ctx.send_all(1u8); }
///     fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
///         self.heard += 1;
///         if self.heard == ctx.n() { ctx.output(self.heard); }
///     }
/// }
///
/// let mut net = SimNetwork::new(NetConfig::new(4, 1, 7), Box::new(RandomScheduler));
/// let sid = SessionId::root().child(SessionTag::new("hello", 0));
/// for p in 0..4 {
///     net.spawn(PartyId(p), sid.clone(), Box::new(Hello { heard: 0 }));
/// }
/// let report = net.run(100_000);
/// assert_eq!(report.stop, aft_sim::StopReason::Quiescent);
/// for p in 0..4 {
///     assert_eq!(net.output(PartyId(p), &sid).unwrap().downcast_ref::<usize>(), Some(&4));
/// }
/// ```
pub struct SimNetwork {
    config: NetConfig,
    nodes: Vec<Node>,
    pending: Pending,
    scheduler: Box<dyn Scheduler>,
    sched_rng: ChaCha12Rng,
    metrics: Metrics,
    seq: u64,
    /// Parties whose outgoing messages are silently discarded (full crash).
    muted: Vec<bool>,
    /// Optional per-party crash step: at this delivery step the party stops.
    crash_at: HashMap<PartyId, u64>,
    /// Trace of (seq, from, to) for determinism checks, if enabled.
    trace: Option<Vec<(u64, PartyId, PartyId)>>,
    /// Structured flight recorder (see [`crate::trace`]), if enabled.
    /// Observational only: consulted behind one `Option` check and never
    /// allowed to perturb schedules, RNGs or metrics.
    sink: Option<Box<dyn TraceSink>>,
    /// Whether any delivery step has executed (gates the crash-before-run
    /// retraction of buffered sends).
    started: bool,
    /// Pending crash-recoveries, fired against the scheduler's virtual
    /// clock (see [`Runtime::schedule_recover`]).
    recoveries: Vec<RecoverPlan>,
    /// Reusable dispatch-output buffer (empty between steps).
    scratch: Vec<Outgoing>,
    /// When present, every enqueued envelope round-trips through the
    /// byte-level wire boundary (the [`WireRuntime`](crate::WireRuntime)
    /// runs a `SimNetwork` in this mode).
    codec: Option<Box<crate::wire_rt::WireLink>>,
    /// Adaptive-adversary controller, if an adaptive scenario installed
    /// one: fed schedule-stable observation events at each delivery.
    adaptive: Option<SharedAdaptive>,
    /// When installed, node-side work (dispatch, crash, revive, spawn)
    /// executes through this host instead of `self.nodes` — see
    /// [`StepHost`]. The async backend installs one for the duration of
    /// each `run`.
    host: Option<Box<dyn StepHost>>,
}

impl SimNetwork {
    /// Creates a network of `config.n` fresh nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n < 3t + 1` (the resilience bound assumed by
    /// every protocol in this workspace).
    pub fn new(config: NetConfig, scheduler: Box<dyn Scheduler>) -> Self {
        assert!(config.n > 0, "need at least one party");
        assert!(
            config.n > 3 * config.t,
            "optimal resilience requires n >= 3t + 1 (n={}, t={})",
            config.n,
            config.t
        );
        let nodes = (0..config.n).map(|i| build_node(&config, i)).collect();
        let sched_rng = ChaCha12Rng::seed_from_u64(config.seed.wrapping_add(0xC0FF_EE00));
        let mut scheduler = scheduler;
        scheduler.configure(&config);
        SimNetwork {
            config,
            nodes,
            pending: Pending::new(),
            scheduler,
            sched_rng,
            metrics: Metrics::default(),
            seq: 0,
            muted: vec![false; config.n],
            crash_at: HashMap::new(),
            trace: None,
            sink: None,
            started: false,
            recoveries: Vec::new(),
            scratch: Vec::new(),
            codec: None,
            adaptive: None,
            host: None,
        }
    }

    /// Takes the nodes out, leaving the network node-less — pair with
    /// [`set_host`](SimNetwork::set_host) so node work still has
    /// somewhere to run, and [`put_nodes`](SimNetwork::put_nodes) after.
    pub(crate) fn take_nodes(&mut self) -> Vec<Node> {
        std::mem::take(&mut self.nodes)
    }

    /// Puts nodes taken by [`take_nodes`](SimNetwork::take_nodes) back.
    pub(crate) fn put_nodes(&mut self, nodes: Vec<Node>) {
        self.nodes = nodes;
    }

    /// Routes subsequent node-side work through `host`.
    pub(crate) fn set_host(&mut self, host: Box<dyn StepHost>) {
        self.host = Some(host);
    }

    /// Removes the installed host, returning it for teardown.
    pub(crate) fn clear_host(&mut self) -> Option<Box<dyn StepHost>> {
        self.host.take()
    }

    /// Creates a network whose envelopes round-trip through the wire
    /// codec and a per-party OS socket pair — the engine behind
    /// [`WireRuntime`](crate::WireRuntime).
    pub(crate) fn with_codec(
        config: NetConfig,
        scheduler: Box<dyn Scheduler>,
        registry: std::sync::Arc<crate::wire::CodecRegistry>,
    ) -> Self {
        let mut net = SimNetwork::new(config, scheduler);
        net.codec = Some(Box::new(crate::wire_rt::WireLink::new(config.n, registry)));
        net
    }

    /// The network's static configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Enables recording of `(seq, from, to)` delivery tuples, for
    /// determinism tests.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded delivery trace (empty unless [`enable_trace`] was
    /// called).
    ///
    /// [`enable_trace`]: SimNetwork::enable_trace
    pub fn trace(&self) -> &[(u64, PartyId, PartyId)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Spawns `instance` for `party` at `session` and injects its initial
    /// sends.
    pub fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        let mut out = match &mut self.host {
            Some(host) => host.spawn(party, session, instance),
            None => self.nodes[party.0].spawn(session, instance),
        };
        // Spawn-phase sends have no causal parent: they are DAG roots.
        self.enqueue(party, &mut out, None);
    }

    /// Enables the structured flight recorder for subsequent runs (see
    /// [`crate::trace`]); [`TraceMode::Off`] disables it.
    pub fn set_trace(&mut self, mode: TraceMode) {
        self.sink = mode.build();
    }

    /// Detaches and returns the flight recorder's sink, if any.
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Installs an adaptive-adversary controller; subsequent deliveries
    /// and scheduler picks are fed to it as observation events.
    pub fn install_adaptive(&mut self, ctrl: SharedAdaptive) {
        self.adaptive = Some(ctrl);
    }

    /// The installed adaptive controller, if any.
    pub fn adaptive_handle(&self) -> Option<SharedAdaptive> {
        self.adaptive.clone()
    }

    /// Crashes `party` immediately: it stops processing and sending.
    ///
    /// If no delivery step has executed yet, the party's buffered initial
    /// sends are retracted and un-counted, so crash-before-run semantics
    /// match the backends that buffer spawns until `run` (threaded,
    /// sharded).
    pub fn crash(&mut self, party: PartyId) {
        match &mut self.host {
            Some(host) => host.crash(party),
            None => self.nodes[party.0].crash(),
        }
        self.muted[party.0] = true;
        if !self.started {
            for env in self.pending.retract_from(party) {
                self.metrics.on_retracted(&env.session);
            }
        }
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::Crash {
                step: self.metrics.steps,
                party,
            });
        }
    }

    /// Schedules `party` to crash at delivery step `step`.
    pub fn crash_at(&mut self, party: PartyId, step: u64) {
        self.crash_at.insert(party, step);
    }

    /// The number of in-flight envelopes.
    pub fn pending_len(&self) -> usize {
        self.pending.messages()
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Immutable access to a node (outputs, shun registry, …).
    pub fn node(&self, party: PartyId) -> &Node {
        &self.nodes[party.0]
    }

    /// The first output of `party` in `session`, if recorded.
    pub fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.nodes[party.0].output(session)
    }

    /// Typed convenience over [`output`](SimNetwork::output).
    pub fn output_as<T: 'static>(&self, party: PartyId, session: &SessionId) -> Option<&T> {
        self.output(party, session)
            .and_then(|p| p.downcast_ref::<T>())
    }

    /// Delivers the scheduler's next pick — one same-`(src, dst)` batch
    /// run in FIFO order, subject to the fairness cap. Returns `false`
    /// when nothing is pending.
    ///
    /// Delivering the run whole is what keeps the scheduler machinery
    /// (RNG draw, Fenwick lookup, random slab access) at O(batches)
    /// rather than O(messages); scheduling granularity is the batch,
    /// delivery accounting stays per-message.
    pub fn step(&mut self) -> bool {
        self.step_bounded(u64::MAX) > 0
    }

    /// [`step`](SimNetwork::step), with the run truncated to at most
    /// `limit` messages (exact step budgets). Returns the number
    /// delivered — `0` means nothing was pending (or `limit == 0`).
    fn step_bounded(&mut self, limit: u64) -> u64 {
        if limit == 0 {
            return 0;
        }
        self.fire_recoveries();
        let Some((slot, run)) = self.pick_next() else {
            return 0;
        };
        self.started = true;
        // The pick advanced the virtual clock (when there is one): the
        // whole batch run arrives at this virtual time.
        let vnow = self.scheduler.virtual_now();
        let run = run.min(limit);
        if let Some(sink) = &mut self.sink {
            let meta = self.pending.meta_of_slot(slot);
            sink.record(TraceEvent::SchedulerPick {
                step: self.metrics.steps,
                party: meta.to,
                queued: self.pending.len(),
                run: run as usize,
            });
        }
        if let Some(ctrl) = &self.adaptive {
            let ev = ObsEvent::SchedulerPick {
                party: self.pending.meta_of_slot(slot).to,
                queued: self.pending.len(),
                run: run as usize,
            };
            ctrl.lock()
                .expect("adaptive controller lock poisoned")
                .observe(&ev);
        }
        self.drain_net_events_to_sink();
        for _ in 0..run {
            // Trigger scheduled crashes per delivery, so a crash step
            // falling inside a batch run still fires exactly on time
            // (steps is incremented by the shared dispatch core below,
            // so "now" is steps + 1).
            if !self.crash_at.is_empty() {
                let step_now = self.metrics.steps + 1;
                let due: Vec<PartyId> = self
                    .crash_at
                    .iter()
                    .filter(|(_, &s)| s <= step_now)
                    .map(|(&p, _)| p)
                    .collect();
                for p in due {
                    self.crash_at.remove(&p);
                    self.crash(p);
                }
            }
            let env = self.pending.take_slot(slot);
            if let Some(trace) = &mut self.trace {
                trace.push((env.seq, env.from, env.to));
            }
            if let Some(vt) = vnow {
                let kind = env.session.last().map_or("root", |t| t.kind);
                self.metrics.on_virtual_delivery(kind, vt);
            }
            let obs_kind = self
                .adaptive
                .is_some()
                .then(|| env.session.last().map_or("root", |t| t.kind));
            let (to, from, seq) = (env.to, env.from, env.seq);
            let session_for_trace = self.sink.is_some().then(|| env.session.clone());
            let (outcome, mut out, local) = if let Some(host) = &mut self.host {
                let (outcome, out) = host.deliver(env);
                (outcome, out, false)
            } else {
                let mut out = std::mem::take(&mut self.scratch);
                let outcome = deliver_raw(
                    &mut self.nodes[to.0],
                    from,
                    env.session,
                    env.payload,
                    &mut out,
                );
                (outcome, out, true)
            };
            account_delivery(
                DeliverCtx {
                    to,
                    from,
                    session: session_for_trace,
                    seq,
                    vtime: vnow,
                },
                &outcome,
                &mut self.metrics,
                self.sink.as_deref_mut(),
            );
            if let Some(kind) = obs_kind {
                if outcome.status == DeliverStatus::Delivered {
                    let ev = ObsEvent::Deliver {
                        party: to,
                        from,
                        kind,
                        step: self.metrics.steps,
                    };
                    self.adaptive
                        .as_ref()
                        .expect("obs_kind implies adaptive")
                        .lock()
                        .expect("adaptive controller lock poisoned")
                        .observe(&ev);
                }
            }
            // Sends emitted by this handler are caused by the delivery
            // that just ran (its step index is the post-increment count).
            let parent = self.metrics.steps;
            self.enqueue(to, &mut out, Some(parent));
            if local {
                self.scratch = out;
            }
        }
        run
    }

    /// Runs until quiescence or until `max_steps` deliveries.
    pub fn run(&mut self, max_steps: u64) -> RunReport {
        self.run_until(max_steps, |_| false)
    }

    /// Runs until quiescence, the step budget, or `stop(self)` returning
    /// `true` (checked after every scheduler pick, i.e. every delivered
    /// batch run).
    pub fn run_until<F: FnMut(&SimNetwork) -> bool>(
        &mut self,
        max_steps: u64,
        mut stop: F,
    ) -> RunReport {
        let start = self.metrics.steps;
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::EpisodeStart { step: start });
        }
        let reason = loop {
            let remaining = max_steps - (self.metrics.steps - start);
            if remaining == 0 {
                break StopReason::StepLimit;
            }
            if self.step_bounded(remaining) == 0 {
                // Out of traffic with recoveries still scheduled: jump
                // the virtual clock to the last due time and fire them
                // (each forcing empties plans, so this terminates).
                if self.force_recoveries() {
                    continue;
                }
                break StopReason::Quiescent;
            }
            if stop(self) {
                break StopReason::Predicate;
            }
        };
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::EpisodeEnd {
                step: self.metrics.steps,
            });
        }
        self.report(reason)
    }

    /// Convenience: runs until every listed party has an output for
    /// `session` (or the budget runs out).
    pub fn run_until_outputs(
        &mut self,
        max_steps: u64,
        session: &SessionId,
        parties: &[PartyId],
    ) -> RunReport {
        let session = session.clone();
        let parties = parties.to_vec();
        self.run_until(max_steps, move |net| {
            parties.iter().all(|&p| net.output(p, &session).is_some())
        })
    }

    fn report(&self, stop: StopReason) -> RunReport {
        let metrics = self.metrics_snapshot();
        RunReport {
            stop,
            steps: metrics.steps,
            metrics,
            trace: self
                .sink
                .as_ref()
                .map(|s| crate::trace::summarize(s.as_ref())),
        }
    }

    /// Metrics snapshot folding in the in-flight queue's buffer-pool
    /// counters (the queue recycles its batch deques internally and
    /// reports reuse through the same `pool_*` metrics as the wire
    /// link). The borrowed [`metrics`](SimNetwork::metrics) accessor
    /// exposes the raw counters without that fold.
    fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.metrics.clone();
        let (reused, allocated) = self.pending.pool_stats();
        m.pool_reused += reused;
        m.pool_alloc += allocated;
        m
    }

    /// Releases all of `party`'s local state for a completed `session`
    /// (output, early buffer, arena slot) — see
    /// [`Runtime::retire_session`]. Returns `true` when a slot was
    /// freed.
    pub fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        self.nodes[party.0].retire_session(session)
    }

    /// Counts and enqueues one dispatch's outgoing envelopes, grouped by
    /// destination (a stable sort, so per-destination order is emission
    /// order): a multi-send dispatch becomes one batch per destination in
    /// the in-flight queue instead of one record per envelope. Metrics see
    /// the original emission order. Drains `out` in place so callers can
    /// reuse the buffer.
    fn enqueue(&mut self, from: PartyId, out: &mut Vec<Outgoing>, causal: Option<u64>) {
        if self.muted[from.0] {
            out.clear();
            return;
        }
        for o in out.iter() {
            self.metrics.on_sent(&o.session);
        }
        // Multi-sends already emit in ascending destination order; the
        // scan skips the stable sort (and its temp allocation) then.
        if !out.is_sorted_by_key(|o| o.to.0) {
            out.sort_by_key(|o| o.to.0);
        }
        let SimNetwork {
            codec,
            pending,
            metrics,
            seq,
            sink,
            ..
        } = self;
        let born_step = metrics.steps;
        match codec {
            // Wire mode: each same-destination run crosses the byte
            // boundary as one framed batch before it is ever scheduled —
            // what the receiver will see is exactly what the bytes said.
            Some(link) => {
                let mut start = 0;
                while start < out.len() {
                    let to = out[start].to;
                    let end = start + out[start..].iter().take_while(|o| o.to == to).count();
                    link.round_trip_run(
                        from,
                        &out[start..end],
                        &mut *metrics,
                        |to, session, payload| {
                            if let Some(s) = sink.as_deref_mut() {
                                s.record(TraceEvent::Send {
                                    step: born_step,
                                    from,
                                    to,
                                    session: session.clone(),
                                    seq: *seq,
                                    causal_parent: causal,
                                });
                            }
                            pending.push(Envelope {
                                from,
                                to,
                                session,
                                payload,
                                seq: *seq,
                                born_step,
                            });
                            *seq += 1;
                        },
                    );
                    start = end;
                }
                out.clear();
            }
            None => {
                for o in out.drain(..) {
                    if let Some(s) = sink.as_deref_mut() {
                        s.record(TraceEvent::Send {
                            step: born_step,
                            from,
                            to: o.to,
                            session: o.session.clone(),
                            seq: *seq,
                            causal_parent: causal,
                        });
                    }
                    pending.push(Envelope {
                        from,
                        to: o.to,
                        session: o.session,
                        payload: o.payload,
                        seq: *seq,
                        born_step,
                    });
                    *seq += 1;
                }
            }
        }
    }

    /// Schedules `party` to recover at virtual time `at_vtime` — see
    /// [`Runtime::schedule_recover`]. Fires against the scheduler's
    /// virtual clock (the `net:` family); with an order-only scheduler
    /// the recovery still fires once traffic drains.
    pub fn schedule_recover(
        &mut self,
        party: PartyId,
        at_vtime: u64,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) {
        self.recoveries.push(RecoverPlan {
            party,
            at: at_vtime,
            session,
            instance: Some(instance),
            revived: false,
        });
    }

    /// Fires due recovery phases against the virtual clock. Phase 1 at
    /// `at`: the party un-crashes, un-mutes and retires its stale
    /// session slot. Phase 2 at `at + REJOIN_GRACE`: the stored
    /// instance respawns — deliveries that landed in the gap
    /// early-buffered in the fresh slot and replay at spawn, making the
    /// mid-episode rejoin observable.
    fn fire_recoveries(&mut self) {
        if self.recoveries.is_empty() {
            return;
        }
        let Some(vnow) = self.scheduler.virtual_now() else {
            return;
        };
        for i in 0..self.recoveries.len() {
            if !self.recoveries[i].revived && self.recoveries[i].at <= vnow {
                let party = self.recoveries[i].party;
                let at = self.recoveries[i].at;
                let session = self.recoveries[i].session.clone();
                self.recoveries[i].revived = true;
                self.revive(party, at, &session);
            }
        }
        let mut i = 0;
        while i < self.recoveries.len() {
            if self.recoveries[i].revived && self.recoveries[i].at + REJOIN_GRACE <= vnow {
                let plan = self.recoveries.remove(i);
                if let Some(instance) = plan.instance {
                    SimNetwork::spawn(self, plan.party, plan.session, instance);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Recovery phase 1 for one party.
    fn revive(&mut self, party: PartyId, at: u64, session: &SessionId) {
        match &mut self.host {
            Some(host) => host.revive(party, session),
            None => {
                self.nodes[party.0].recover();
                self.nodes[party.0].retire_session(session);
            }
        }
        self.muted[party.0] = false;
        if let Some(sink) = &mut self.sink {
            sink.record(TraceEvent::Recover {
                step: self.metrics.steps,
                vtime: at,
                party,
            });
        }
    }

    /// Forces all scheduled recoveries at quiescence: fast-forwards the
    /// virtual clock past the last due time and fires both phases (for
    /// order-only schedulers, which cannot fast-forward, the plans fire
    /// unconditionally). Returns whether anything fired — the caller
    /// then re-enters the delivery loop.
    fn force_recoveries(&mut self) -> bool {
        if self.recoveries.is_empty() {
            return false;
        }
        let target = self
            .recoveries
            .iter()
            .map(|r| r.at.saturating_add(REJOIN_GRACE))
            .max()
            .expect("non-empty");
        self.scheduler.fast_forward(target);
        self.fire_recoveries();
        self.drain_net_events_to_sink();
        // Order-only schedulers report no clock: fire the plans directly.
        let plans = std::mem::take(&mut self.recoveries);
        for plan in plans {
            if !plan.revived {
                self.revive(plan.party, plan.at, &plan.session);
            }
            if let Some(instance) = plan.instance {
                SimNetwork::spawn(self, plan.party, plan.session, instance);
            }
        }
        true
    }

    /// Forwards the scheduler's queued partition lifecycle events to the
    /// flight recorder (observational only; the scheduler queues at most
    /// one start and one heal per run).
    fn drain_net_events_to_sink(&mut self) {
        if self.sink.is_none() {
            return;
        }
        let mut events = Vec::new();
        self.scheduler.drain_net_events(&mut events);
        let step = self.metrics.steps;
        let sink = self.sink.as_deref_mut().expect("checked above");
        for e in events {
            sink.record(match e {
                NetEvent::PartitionStart { vtime, cut } => {
                    TraceEvent::PartitionStart { step, vtime, cut }
                }
                NetEvent::PartitionHeal { vtime } => TraceEvent::PartitionHeal { step, vtime },
            });
        }
    }

    /// Applies the fairness cap, then the scheduler. Returns the stable
    /// handle of the picked batch and the length of its run.
    fn pick_next(&mut self) -> Option<(crate::queue::BatchSlot, u64)> {
        if self.pending.is_empty() {
            return None;
        }
        let now = self.metrics.steps;
        let max_age = self.config.scheduler.max_age;
        // The queue mirrors the oldest batch's birth step inline, so the
        // per-pick age check costs a field read, not a slab access.
        let idx = if now.saturating_sub(self.pending.head_born_step()) > max_age {
            0
        } else {
            let i = self.scheduler.pick(&self.pending, &mut self.sched_rng);
            debug_assert!(i < self.pending.len(), "scheduler index out of range");
            i.min(self.pending.len() - 1)
        };
        let slot = self.pending.slot_of(idx);
        let run = self.pending.run_len_of_slot(slot) as u64;
        Some((slot, run))
    }
}

impl Runtime for SimNetwork {
    fn config(&self) -> &NetConfig {
        &self.config
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        SimNetwork::spawn(self, party, session, instance);
    }

    fn crash(&mut self, party: PartyId) {
        SimNetwork::crash(self, party);
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        SimNetwork::run(self, max_steps)
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        SimNetwork::output(self, party, session)
    }

    fn metrics(&self) -> Metrics {
        self.metrics_snapshot()
    }

    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        SimNetwork::retire_session(self, party, session)
    }

    fn schedule_recover(
        &mut self,
        party: PartyId,
        at_vtime: u64,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> bool {
        SimNetwork::schedule_recover(self, party, at_vtime, session, instance);
        true
    }

    fn set_trace(&mut self, mode: TraceMode) {
        SimNetwork::set_trace(self, mode);
    }

    fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        SimNetwork::take_trace(self)
    }

    fn install_adaptive(&mut self, ctrl: SharedAdaptive) -> bool {
        SimNetwork::install_adaptive(self, ctrl);
        true
    }

    fn adaptive_handle(&self) -> Option<SharedAdaptive> {
        SimNetwork::adaptive_handle(self)
    }

    fn backend_name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::scheduler::{FifoScheduler, LifoScheduler, RandomScheduler};

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("t", 0))
    }

    /// Flood: every party sends `rounds` waves of pings; outputs when it
    /// received `n * rounds` pings.
    struct Flood {
        rounds: u32,
        sent: u32,
        heard: usize,
    }
    impl Flood {
        fn new(rounds: u32) -> Self {
            Flood {
                rounds,
                sent: 0,
                heard: 0,
            }
        }
    }
    impl Instance for Flood {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.sent = 1;
            ctx.send_all(0u32);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard.is_multiple_of(ctx.n()) && self.sent < self.rounds {
                self.sent += 1;
                ctx.send_all(self.sent);
            }
            if self.heard == ctx.n() * self.rounds as usize {
                ctx.output(self.heard);
            }
        }
    }

    fn flood_net(seed: u64, sched: Box<dyn Scheduler>) -> SimNetwork {
        let mut net = SimNetwork::new(NetConfig::new(4, 1, seed), sched);
        for p in 0..4 {
            net.spawn(PartyId(p), sid(), Box::new(Flood::new(3)));
        }
        net
    }

    #[test]
    fn flood_reaches_quiescence_under_all_schedulers() {
        for sched in [
            Box::new(FifoScheduler) as Box<dyn Scheduler>,
            Box::new(RandomScheduler),
            Box::new(LifoScheduler),
        ] {
            let mut net = flood_net(3, sched);
            let report = net.run(1_000_000);
            assert_eq!(report.stop, StopReason::Quiescent);
            for p in 0..4 {
                assert_eq!(
                    net.output_as::<usize>(PartyId(p), &sid()),
                    Some(&12),
                    "party {p}"
                );
            }
        }
    }

    #[test]
    fn deterministic_replay_same_seed() {
        let trace = |seed| {
            let mut net = flood_net(seed, Box::new(RandomScheduler));
            net.enable_trace();
            net.run(1_000_000);
            net.trace().to_vec()
        };
        assert_eq!(trace(9), trace(9));
        assert_ne!(trace(9), trace(10), "different seeds should differ");
    }

    #[test]
    fn crash_suppresses_party() {
        let mut net = flood_net(1, Box::new(RandomScheduler));
        net.crash(PartyId(3));
        let report = net.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        // The crashed party never outputs; others can't finish all rounds
        // (they need n*rounds pings but P3 is silent) — but no deadlock:
        // quiescence is reached.
        assert!(net.output(PartyId(3), &sid()).is_none());
        assert!(report.metrics.dropped_crashed > 0);
    }

    #[test]
    fn crash_before_first_step_retracts_buffered_sends() {
        // 4 Flood(1) broadcasters buffer 16 sends; crashing P3 before the
        // first delivery retracts its 4, matching the buffered backends.
        let mut net = flood_net(1, Box::new(RandomScheduler));
        assert_eq!(net.metrics().sent, 16);
        net.crash(PartyId(3));
        assert_eq!(net.metrics().sent, 12, "P3's initial sends retracted");
        assert_eq!(net.metrics().sent_by_kind("t"), 12);
        assert_eq!(net.pending_len(), 12);
        let report = net.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.metrics.dropped_crashed, 3, "deliveries to P3");
        // After a step has run, crashes no longer retract in-flight sends.
        let mut net = flood_net(1, Box::new(RandomScheduler));
        assert!(net.step());
        let sent_before = net.metrics().sent;
        net.crash(PartyId(2));
        assert_eq!(
            net.metrics().sent,
            sent_before,
            "mid-run crash keeps counts"
        );
    }

    #[test]
    fn crash_at_takes_effect_mid_run() {
        let mut net = flood_net(1, Box::new(FifoScheduler));
        net.crash_at(PartyId(2), 5);
        net.run(1_000_000);
        assert!(net.node(PartyId(2)).is_crashed());
    }

    #[test]
    fn step_limit_stops_runaway() {
        let mut net = flood_net(1, Box::new(RandomScheduler));
        let report = net.run(3);
        assert_eq!(report.stop, StopReason::StepLimit);
        assert_eq!(report.steps, 3);
    }

    #[test]
    fn metrics_count_sends_and_deliveries() {
        let mut net = flood_net(1, Box::new(FifoScheduler));
        let report = net.run(1_000_000);
        assert!(report.metrics.sent >= 48, "3 waves * 4 parties * 4 dests");
        assert_eq!(
            report.metrics.sent,
            report.metrics.delivered
                + report.metrics.dropped_shunned
                + report.metrics.dropped_crashed
                + net.pending_len() as u64
        );
        assert_eq!(report.metrics.sent_by_kind("t"), report.metrics.sent);
        assert_eq!(report.metrics.sent_by_kind("nope"), 0);
    }

    #[test]
    fn fairness_cap_forces_starved_delivery() {
        // LIFO would starve the first message forever without the cap.
        struct OneShot;
        impl Instance for OneShot {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(PartyId(1), 1u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                ctx.output(1u8);
            }
        }
        /// Keeps the network busy with self-traffic.
        struct Chatter {
            left: u32,
        }
        impl Instance for Chatter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let me = ctx.me();
                ctx.send(me, 0u8);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
                if self.left > 0 {
                    self.left -= 1;
                    let me = ctx.me();
                    ctx.send(me, 0u8);
                }
            }
        }
        let mut config = NetConfig::new(4, 1, 1);
        config.scheduler.max_age = 50;
        let mut net = SimNetwork::new(config, Box::new(LifoScheduler));
        let s_victim = SessionId::root().child(SessionTag::new("victim", 0));
        let s_noise = SessionId::root().child(SessionTag::new("noise", 0));
        net.spawn(PartyId(0), s_victim.clone(), Box::new(OneShot));
        net.spawn(PartyId(1), s_victim.clone(), Box::new(OneShot));
        net.spawn(
            PartyId(2),
            s_noise.clone(),
            Box::new(Chatter { left: 10_000 }),
        );
        let report = net.run(20_000);
        // Despite LIFO + endless chatter, the victim's message must deliver
        // within the aging cap.
        assert!(
            net.output(PartyId(1), &s_victim).is_some(),
            "fairness cap failed: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "optimal resilience")]
    fn rejects_insufficient_n() {
        let _ = SimNetwork::new(NetConfig::new(3, 1, 0), Box::new(FifoScheduler));
    }

    #[test]
    fn output_as_downcasts() {
        let mut net = flood_net(2, Box::new(FifoScheduler));
        net.run(1_000_000);
        assert_eq!(net.output_as::<usize>(PartyId(0), &sid()), Some(&12));
        assert_eq!(net.output_as::<u64>(PartyId(0), &sid()), None);
    }

    #[test]
    fn runtime_trait_drives_the_simulator() {
        use crate::runtime::{Runtime, RuntimeExt};
        let mut rt: Box<dyn Runtime> = Box::new(SimNetwork::new(
            NetConfig::new(4, 1, 3),
            Box::new(RandomScheduler),
        ));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid(), Box::new(Flood::new(3)));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(rt.backend_name(), "sim");
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&12));
        }
        assert_eq!(rt.metrics().sent, report.metrics.sent);
    }
}
