//! A single party's runtime: session routing, child spawning, output
//! propagation, shun enforcement.
//!
//! Per-session state (instance, early-message buffer, first output) lives
//! in an **arena** indexed by the dense interning index of each
//! [`SessionId`] — the delivery hot path does one bounds-checked array
//! access instead of hashing, and the effect loop reuses its work queue
//! and effect buffers across deliveries, so a steady-state run allocates
//! nothing per message.

use crate::ids::{PartyId, SessionId, SessionTag};
use crate::instance::{Context, Effect, Instance};
use crate::payload::Payload;
use rand_chacha::ChaCha12Rng;
use std::collections::{HashMap, VecDeque};

/// An outgoing envelope produced by a node (delivery is the network's job).
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Destination party.
    pub to: PartyId,
    /// Destination session.
    pub session: SessionId,
    /// Message body.
    pub payload: Payload,
}

/// Per-party record of shunned peers.
///
/// `Shun(i → j)` is recorded at most once per ordered pair (so fewer than
/// `n^2` shun events occur globally — the bound the paper's coin analysis
/// relies on). Messages from a shunned party are dropped unless they belong
/// to the *invocation subtree in which the shun occurred*, matching the
/// paper: "it accepted messages from it in the current invocation, but
/// won't accept any messages from it in future interactions".
#[derive(Debug, Default, Clone)]
pub struct ShunRegistry {
    /// target -> session in which the shun was declared.
    entries: HashMap<PartyId, SessionId>,
}

impl ShunRegistry {
    /// Records a shun of `target` declared inside `session`. Returns `true`
    /// if this is a *new* shun event (first for this ordered pair).
    pub fn record(&mut self, target: PartyId, session: SessionId) -> bool {
        if self.entries.contains_key(&target) {
            return false;
        }
        self.entries.insert(target, session);
        true
    }

    /// Whether a message from `from` addressed to `session` should be
    /// dropped.
    #[inline]
    pub fn blocks(&self, from: PartyId, session: &SessionId) -> bool {
        // Fast path for the overwhelmingly common case: no shun recorded.
        if self.entries.is_empty() {
            return false;
        }
        match self.entries.get(&from) {
            None => false,
            // Same invocation subtree (or an ancestor of it) still accepted.
            Some(declared_in) => {
                !(session.starts_with(declared_in) || declared_in.starts_with(session))
            }
        }
    }

    /// Parties currently shunned by this node.
    pub fn shunned(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.entries.keys().copied()
    }

    /// Number of shun entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no shun was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Internal work items processed by the node's effect loop.
enum Work {
    Start(SessionId),
    Msg(SessionId, PartyId, Payload),
    ChildOutput(SessionId, SessionTag, Payload),
}

/// Sessions per arena page. Arena indices are process-global (assigned by
/// the interner), so a flat `Vec` per node would grow with every session
/// ever interned anywhere; pages keep a node's footprint proportional to
/// the sessions *it* touches (which get near-contiguous indices, since a
/// deployment interns its sessions together).
const ARENA_PAGE: usize = 64;

/// One lazily-allocated page of session slots.
type ArenaPage = [Option<SessionSlot>; ARENA_PAGE];

/// Arena cell holding everything the node tracks for one session.
struct SessionSlot {
    /// The session this cell belongs to (for iteration back to ids).
    session: SessionId,
    /// The live instance. `None` while the instance is running a callback
    /// (taken out to sidestep re-entrancy) or when the session was only
    /// ever touched by early messages / outputs.
    instance: Option<Box<dyn Instance>>,
    /// Whether an instance was ever spawned here (spawn idempotence).
    spawned: bool,
    /// Messages that arrived before the session was spawned locally.
    early: Vec<(PartyId, Payload)>,
    /// First output of the session.
    output: Option<Payload>,
}

impl SessionSlot {
    fn new(session: SessionId, early: Vec<(PartyId, Payload)>) -> Self {
        SessionSlot {
            session,
            instance: None,
            spawned: false,
            early,
            output: None,
        }
    }
}

/// One party's local runtime: routes messages to protocol instances,
/// spawns children, propagates outputs upward, and enforces shunning.
pub struct Node {
    id: PartyId,
    n: usize,
    t: usize,
    rng: ChaCha12Rng,
    /// Per-session state, indexed by [`SessionId::arena_index`] through a
    /// two-level page table (see [`ARENA_PAGE`]).
    slots: Vec<Option<Box<ArenaPage>>>,
    /// Number of sessions with a spawned instance (diagnostics).
    instances: usize,
    /// Peers this node shuns.
    pub(crate) shun: ShunRegistry,
    /// True once the party has crashed (stops reacting entirely).
    crashed: bool,
    /// Count of shun events this node declared (for metrics).
    shun_events: u64,
    /// Count of session outputs recorded (first-wins outputs only). The
    /// flight recorder diffs this across a delivery to attribute
    /// `Output` events without scanning the arena.
    outputs_recorded: u64,
    /// Reusable effect-loop work queue (empty between deliveries).
    work: VecDeque<Work>,
    /// Reusable effect buffer handed to instance callbacks.
    effects_pool: Vec<Effect>,
    /// Recycled early-message buffer from the most recently retired
    /// session, handed to the next freshly created slot.
    early_pool: Vec<(PartyId, Payload)>,
}

impl Node {
    /// Creates a node for party `id` in an `(n, t)` system with the given
    /// deterministic RNG.
    pub fn new(id: PartyId, n: usize, t: usize, rng: ChaCha12Rng) -> Self {
        Node {
            id,
            n,
            t,
            rng,
            slots: Vec::new(),
            instances: 0,
            shun: ShunRegistry::default(),
            crashed: false,
            shun_events: 0,
            outputs_recorded: 0,
            work: VecDeque::new(),
            effects_pool: Vec::new(),
            early_pool: Vec::new(),
        }
    }

    /// This node's party id.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// Marks the party as crashed: it stops processing and emitting.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Whether the party has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Un-crashes the party: it resumes processing and emitting. Used by
    /// the crash-recovery path (`recover@<vtime>` under the `net:`
    /// virtual-time model); the caller is responsible for retiring stale
    /// session state and respawning instances afterwards.
    pub fn recover(&mut self) {
        self.crashed = false;
    }

    /// The arena cell for `session`, created on first touch.
    fn slot_mut(&mut self, session: &SessionId) -> &mut SessionSlot {
        let idx = session.arena_index();
        let (page, offset) = (idx / ARENA_PAGE, idx % ARENA_PAGE);
        if page >= self.slots.len() {
            self.slots.resize_with(page + 1, || None);
        }
        let cells = self.slots[page].get_or_insert_with(|| Box::new(std::array::from_fn(|_| None)));
        cells[offset].get_or_insert_with(|| {
            SessionSlot::new(session.clone(), std::mem::take(&mut self.early_pool))
        })
    }

    /// Retires `session`'s arena cell: drops its instance, output, and
    /// early buffer, recycling the early buffer's allocation and freeing
    /// the whole page once every cell on it is retired. Returns `true`
    /// if the session had a slot to free.
    ///
    /// Retiring *forgets* the session: its output becomes unreadable and
    /// a later spawn at the same id starts fresh — callers retire only
    /// after consuming the session's result.
    pub fn retire_session(&mut self, session: &SessionId) -> bool {
        let idx = session.arena_index();
        let (page, offset) = (idx / ARENA_PAGE, idx % ARENA_PAGE);
        let Some(Some(cells)) = self.slots.get_mut(page) else {
            return false;
        };
        let Some(slot) = cells[offset].take() else {
            return false;
        };
        if slot.spawned {
            self.instances -= 1;
        }
        let mut early = slot.early;
        if early.capacity() > self.early_pool.capacity() {
            early.clear();
            self.early_pool = early;
        }
        if cells.iter().all(|c| c.is_none()) {
            self.slots[page] = None;
        }
        true
    }

    /// The arena cell for `session`, if it was ever touched.
    fn slot(&self, session: &SessionId) -> Option<&SessionSlot> {
        let idx = session.arena_index();
        self.slots.get(idx / ARENA_PAGE)?.as_ref()?[idx % ARENA_PAGE].as_ref()
    }

    /// The first output recorded for `session`, if any.
    pub fn output(&self, session: &SessionId) -> Option<&Payload> {
        self.slot(session)?.output.as_ref()
    }

    /// All recorded `(session, output)` pairs.
    pub fn outputs(&self) -> impl Iterator<Item = (&SessionId, &Payload)> {
        self.slots
            .iter()
            .filter_map(|page| page.as_deref())
            .flatten()
            .filter_map(|cell| {
                let slot = cell.as_ref()?;
                Some((&slot.session, slot.output.as_ref()?))
            })
    }

    /// Number of live instances (diagnostics).
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Number of shun events declared by this node.
    pub fn shun_event_count(&self) -> u64 {
        self.shun_events
    }

    /// Number of session outputs ever recorded by this node (monotonic;
    /// unaffected by [`retire_session`](Node::retire_session)).
    pub fn output_count(&self) -> u64 {
        self.outputs_recorded
    }

    /// The node's shun registry.
    pub fn shun_registry(&self) -> &ShunRegistry {
        &self.shun
    }

    /// Spawns a root-level instance at `session`, running its `on_start`.
    /// Returns envelopes to inject into the network.
    pub fn spawn(&mut self, session: SessionId, instance: Box<dyn Instance>) -> Vec<Outgoing> {
        let mut out = Vec::new();
        if self.crashed {
            return out;
        }
        let slot = self.slot_mut(&session);
        if slot.spawned {
            return out; // idempotent
        }
        slot.spawned = true;
        slot.instance = Some(instance);
        self.instances += 1;
        self.run_loop(Work::Start(session), &mut out);
        out
    }

    /// Delivers a message to `session` from `from`. Messages for unknown
    /// sessions are buffered until the session spawns. Messages from
    /// shunned parties (outside the shun's invocation subtree) are dropped;
    /// returns `false` in that case.
    pub fn deliver(
        &mut self,
        from: PartyId,
        session: SessionId,
        payload: Payload,
        out: &mut Vec<Outgoing>,
    ) -> bool {
        if self.crashed {
            return false;
        }
        if from != self.id && self.shun.blocks(from, &session) {
            return false;
        }
        self.run_loop(Work::Msg(session, from, payload), out);
        true
    }

    /// The effect-processing loop: executes one work item, then drains all
    /// effects it generated (which may enqueue more work). The work queue
    /// and effect buffer are node-owned and reused across deliveries.
    fn run_loop(&mut self, first: Work, out: &mut Vec<Outgoing>) {
        debug_assert!(self.work.is_empty(), "work queue must drain fully");
        let mut queue = std::mem::take(&mut self.work);
        // The first item executes directly — the queue only ever holds
        // follow-up work (early-message replays, child starts, output
        // routing), so the common single-item delivery never touches it.
        let mut next = Some(first);
        while let Some(work) = next.take().or_else(|| queue.pop_front()) {
            let mut effects = match work {
                Work::Start(session) => {
                    let slot = self.slot_mut(&session);
                    let Some(mut inst) = slot.instance.take() else {
                        continue;
                    };
                    let mut ctx =
                        Context::new(self.id, self.n, self.t, session.clone(), &mut self.rng);
                    ctx.effects = std::mem::take(&mut self.effects_pool);
                    inst.on_start(&mut ctx);
                    let effects = std::mem::take(&mut ctx.effects);
                    drop(ctx);
                    let slot = self.slot_mut(&session);
                    slot.instance = Some(inst);
                    // Drain any messages that raced ahead of the spawn.
                    for (from, payload) in std::mem::take(&mut slot.early) {
                        queue.push_back(Work::Msg(session.clone(), from, payload));
                    }
                    effects
                }
                Work::Msg(session, from, payload) => {
                    let idx = session.arena_index();
                    let slot = self.slot_mut(&session);
                    let Some(mut inst) = slot.instance.take() else {
                        slot.early.push((from, payload));
                        continue;
                    };
                    let mut ctx =
                        Context::new(self.id, self.n, self.t, session.clone(), &mut self.rng);
                    ctx.effects = std::mem::take(&mut self.effects_pool);
                    inst.on_message(from, &payload, &mut ctx);
                    let effects = std::mem::take(&mut ctx.effects);
                    drop(ctx);
                    // Put the instance back by the index resolved above:
                    // the slot cannot move or vanish while it is borrowed
                    // out (retire/spawn only happen between dispatches).
                    self.slots[idx / ARENA_PAGE]
                        .as_mut()
                        .expect("slot accessed above")[idx % ARENA_PAGE]
                        .as_mut()
                        .expect("slot accessed above")
                        .instance = Some(inst);
                    effects
                }
                Work::ChildOutput(session, tag, value) => {
                    let slot = self.slot_mut(&session);
                    let Some(mut inst) = slot.instance.take() else {
                        continue;
                    };
                    let mut ctx =
                        Context::new(self.id, self.n, self.t, session.clone(), &mut self.rng);
                    ctx.effects = std::mem::take(&mut self.effects_pool);
                    inst.on_child_output(&tag, &value, &mut ctx);
                    let effects = std::mem::take(&mut ctx.effects);
                    drop(ctx);
                    self.slot_mut(&session).instance = Some(inst);
                    effects
                }
            };
            for effect in effects.drain(..) {
                match effect {
                    Effect::Send {
                        to,
                        session,
                        payload,
                    } => out.push(Outgoing {
                        to,
                        session,
                        payload,
                    }),
                    Effect::SendAll { session, payload } => {
                        for p in 0..self.n {
                            out.push(Outgoing {
                                to: PartyId(p),
                                session: session.clone(),
                                payload: payload.clone(),
                            });
                        }
                    }
                    Effect::Spawn { session, instance } => {
                        let slot = self.slot_mut(&session);
                        if !slot.spawned {
                            slot.spawned = true;
                            slot.instance = Some(instance);
                            self.instances += 1;
                            queue.push_back(Work::Start(session));
                        }
                    }
                    Effect::Output { session, value } => {
                        let slot = self.slot_mut(&session);
                        if slot.output.is_some() {
                            continue; // first output wins
                        }
                        slot.output = Some(value.clone());
                        self.outputs_recorded += 1;
                        if let (Some(parent), Some(tag)) = (session.parent(), session.last()) {
                            queue.push_back(Work::ChildOutput(parent, *tag, value));
                        }
                    }
                    Effect::Shun { target, session } => {
                        if target != self.id && self.shun.record(target, session) {
                            self.shun_events += 1;
                        }
                    }
                }
            }
            // Recycle the drained buffer for the next callback.
            if effects.capacity() > self.effects_pool.capacity() {
                self.effects_pool = effects;
            }
        }
        self.work = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn node(id: usize) -> Node {
        Node::new(PartyId(id), 4, 1, ChaCha12Rng::seed_from_u64(id as u64))
    }

    fn sid(kind: &'static str) -> SessionId {
        SessionId::root().child(SessionTag::new(kind, 0))
    }

    /// Echoes every received u32 back to the sender, doubled; outputs on 99.
    struct Doubler;
    impl Instance for Doubler {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(PartyId(0), 1u32);
        }
        fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
            if let Some(v) = payload.to_msg::<u32>() {
                if v == 99 {
                    ctx.output(v);
                } else {
                    ctx.send(from, v * 2);
                }
            }
        }
    }

    #[test]
    fn spawn_runs_on_start_and_emits() {
        let mut n = node(1);
        let out = n.spawn(sid("x"), Box::new(Doubler));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, PartyId(0));
        assert_eq!(out[0].payload.to_msg::<u32>(), Some(1));
        assert_eq!(n.instance_count(), 1);
    }

    #[test]
    fn spawn_is_idempotent() {
        let mut n = node(1);
        assert_eq!(n.spawn(sid("x"), Box::new(Doubler)).len(), 1);
        assert!(n.spawn(sid("x"), Box::new(Doubler)).is_empty());
        assert_eq!(n.instance_count(), 1);
    }

    #[test]
    fn deliver_routes_and_responds() {
        let mut n = node(1);
        n.spawn(sid("x"), Box::new(Doubler));
        let mut out = Vec::new();
        assert!(n.deliver(PartyId(2), sid("x"), Payload::new(21u32), &mut out));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.to_msg::<u32>(), Some(42));
        assert_eq!(out[0].to, PartyId(2));
    }

    #[test]
    fn early_messages_buffer_until_spawn() {
        let mut n = node(1);
        let mut out = Vec::new();
        assert!(n.deliver(PartyId(2), sid("x"), Payload::new(5u32), &mut out));
        assert!(out.is_empty(), "no instance yet");
        let out2 = n.spawn(sid("x"), Box::new(Doubler));
        // on_start send + the buffered message's reply
        assert_eq!(out2.len(), 2);
        assert_eq!(out2[1].payload.to_msg::<u32>(), Some(10));
    }

    #[test]
    fn output_recorded_once_and_not_overwritten() {
        let mut n = node(1);
        n.spawn(sid("x"), Box::new(Doubler));
        let mut out = Vec::new();
        n.deliver(PartyId(0), sid("x"), Payload::new(99u32), &mut out);
        assert_eq!(
            n.output(&sid("x")).unwrap().downcast_ref::<u32>(),
            Some(&99)
        );
        n.deliver(PartyId(0), sid("x"), Payload::new(99u32), &mut out);
        assert_eq!(n.outputs().count(), 1);
    }

    /// Parent spawns a child on start; child outputs immediately; parent
    /// records what it heard.
    struct Parent {
        heard: Option<u32>,
    }
    struct Child;
    impl Instance for Child {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.output(7u32);
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
    }
    impl Instance for Parent {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.spawn(SessionTag::new("child", 3), Box::new(Child));
        }
        fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
            assert_eq!(child, &SessionTag::new("child", 3));
            self.heard = output.downcast_ref::<u32>().copied();
            ctx.output(*output.downcast_ref::<u32>().unwrap() + 1);
        }
    }

    #[test]
    fn child_output_routes_to_parent() {
        let mut n = node(0);
        n.spawn(sid("p"), Box::new(Parent { heard: None }));
        // parent's own output = child output + 1
        assert_eq!(n.output(&sid("p")).unwrap().downcast_ref::<u32>(), Some(&8));
        // child output recorded too
        let child_sid = sid("p").child(SessionTag::new("child", 3));
        assert_eq!(
            n.output(&child_sid).unwrap().downcast_ref::<u32>(),
            Some(&7)
        );
    }

    #[test]
    fn retire_session_frees_the_slot_and_page() {
        let mut n = node(1);
        n.spawn(sid("x"), Box::new(Doubler));
        assert_eq!(n.instance_count(), 1);
        assert!(n.retire_session(&sid("x")));
        assert_eq!(n.instance_count(), 0);
        assert!(n.output(&sid("x")).is_none(), "retire forgets the output");
        assert!(!n.retire_session(&sid("x")), "second retire is a no-op");
        // The whole page is reclaimed once its last cell is retired.
        assert!(n.slots.iter().all(|p| p.is_none()));
        // A later spawn at the same id starts fresh.
        assert_eq!(n.spawn(sid("x"), Box::new(Doubler)).len(), 1);
        assert_eq!(n.instance_count(), 1);
    }

    #[test]
    fn retire_recycles_the_early_buffer() {
        let mut n = node(1);
        let mut out = Vec::new();
        // Buffer early messages for a session that never spawns …
        for s in 0..8 {
            n.deliver(PartyId(2), sid("x"), Payload::new(s as u32), &mut out);
        }
        assert!(n.retire_session(&sid("x")));
        // … and the next fresh slot inherits the allocation.
        n.deliver(PartyId(2), sid("y"), Payload::new(0u32), &mut out);
        let slot = n.slot(&sid("y")).unwrap();
        assert!(slot.early.capacity() >= 8, "early buffer was recycled");
    }

    #[test]
    fn crashed_node_is_inert() {
        let mut n = node(1);
        n.crash();
        assert!(n.spawn(sid("x"), Box::new(Doubler)).is_empty());
        let mut out = Vec::new();
        assert!(!n.deliver(PartyId(0), sid("x"), Payload::new(1u32), &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn shun_blocks_other_sessions_but_not_same_invocation() {
        let mut reg = ShunRegistry::default();
        let inv = sid("svss");
        assert!(reg.record(PartyId(2), inv.clone()));
        assert!(!reg.record(PartyId(2), sid("other")), "idempotent per pair");
        // same invocation subtree: allowed
        assert!(!reg.blocks(PartyId(2), &inv));
        assert!(!reg.blocks(PartyId(2), &inv.child(SessionTag::new("sub", 1))));
        // unrelated session: blocked
        assert!(reg.blocks(PartyId(2), &sid("other")));
        // other parties unaffected
        assert!(!reg.blocks(PartyId(3), &sid("other")));
    }

    #[test]
    fn node_drops_messages_from_shunned_party() {
        struct Shunner;
        impl Instance for Shunner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.shun(PartyId(2));
            }
            fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
                if let Some(v) = p.to_msg::<u32>() {
                    ctx.output(v);
                }
            }
        }
        let mut n = node(1);
        n.spawn(sid("a"), Box::new(Shunner));
        assert_eq!(n.shun_event_count(), 1);
        let mut out = Vec::new();
        // same invocation: accepted
        assert!(n.deliver(PartyId(2), sid("a"), Payload::new(5u32), &mut out));
        assert_eq!(n.output(&sid("a")).unwrap().downcast_ref::<u32>(), Some(&5));
        // different session: dropped
        n.spawn(sid("b"), Box::new(Doubler));
        assert!(!n.deliver(PartyId(2), sid("b"), Payload::new(5u32), &mut out));
    }

    #[test]
    fn self_shun_ignored() {
        struct SelfShun;
        impl Instance for SelfShun {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let me = ctx.me();
                ctx.shun(me);
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        }
        let mut n = node(1);
        n.spawn(sid("x"), Box::new(SelfShun));
        assert_eq!(n.shun_event_count(), 0);
    }
}
