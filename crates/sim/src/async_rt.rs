//! The async event-loop backend: every party runs as a task on a
//! single-threaded executor.
//!
//! [`AsyncRuntime`] keeps the *entire* deterministic machinery of
//! [`SimNetwork`] — scheduler, pending slab, metrics, flight recorder,
//! crash/recovery plumbing, adaptive-adversary observation — and moves
//! only the node-side dispatch onto an event loop: each party's
//! [`Node`] lives inside a task spawned on a `tokio` current-thread
//! [`LocalSet`](tokio::task::LocalSet), and every delivery round-trips
//! through that party's command/response channel pair. The network
//! drives the loop through the [`StepHost`] seam, so the step sequence
//! (and therefore every metric, trace and fingerprint) is bit-for-bit
//! identical to `rt=sim` under the same `(seed, scheduler)`.
//!
//! The executor is the offline API-compatible stand-in vendored at
//! `vendor/tokio`; swapping in real tokio is a one-line
//! `[workspace.dependencies]` change (see `vendor/README.md`).

use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::network::{Envelope, SimNetwork, StepHost};
use crate::node::{Node, Outgoing};
use crate::payload::Payload;
use crate::runtime::{deliver_raw, DeliveryOutcome, Metrics, NetConfig, RunReport, Runtime};
use crate::scheduler::Scheduler;
use crate::trace::{TraceMode, TraceSink};
use crate::SharedAdaptive;
use tokio::sync::mpsc::{unbounded_channel, UnboundedReceiver, UnboundedSender};

/// One request to a party task.
enum Cmd {
    /// Dispatch a message to the party's node.
    Deliver {
        /// Sending party.
        from: PartyId,
        /// Destination session.
        session: SessionId,
        /// Message body.
        payload: Payload,
    },
    /// Crash the node.
    Crash,
    /// Recovery phase 1: un-crash and retire the stale session slot.
    Revive(SessionId),
    /// Deploy an instance.
    Spawn(SessionId, Box<dyn Instance>),
    /// Hand the node back and terminate the task.
    Finish,
}

/// One party task's answer to a [`Cmd`].
enum Rsp {
    /// Outcome and emitted envelopes of a `Deliver`.
    Delivered(DeliveryOutcome, Vec<Outgoing>),
    /// `Crash` / `Revive` acknowledged.
    Done,
    /// Initial sends of a `Spawn`.
    Spawned(Vec<Outgoing>),
    /// The node, returned by `Finish`.
    Node(Box<Node>),
}

/// The event loop body of one party: receive commands, run them against
/// the owned [`Node`], answer on the response channel. Terminates when
/// told to [`Cmd::Finish`] (or when the command channel closes).
async fn party_loop(mut node: Node, mut rx: UnboundedReceiver<Cmd>, tx: UnboundedSender<Rsp>) {
    while let Some(cmd) = rx.recv().await {
        let rsp = match cmd {
            Cmd::Deliver {
                from,
                session,
                payload,
            } => {
                let mut out = Vec::new();
                let outcome = deliver_raw(&mut node, from, session, payload, &mut out);
                Rsp::Delivered(outcome, out)
            }
            Cmd::Crash => {
                node.crash();
                Rsp::Done
            }
            Cmd::Revive(session) => {
                node.recover();
                node.retire_session(&session);
                Rsp::Done
            }
            Cmd::Spawn(session, instance) => Rsp::Spawned(node.spawn(session, instance)),
            Cmd::Finish => {
                let _ = tx.send(Rsp::Node(Box::new(node)));
                return;
            }
        };
        if tx.send(rsp).is_err() {
            return; // host gone — run is over
        }
    }
}

/// The [`StepHost`] that routes node operations onto the event loop:
/// one command/response channel pair per party task.
struct AsyncHost {
    rt: tokio::runtime::Runtime,
    local: tokio::task::LocalSet,
    cmds: Vec<UnboundedSender<Cmd>>,
    rsps: Vec<UnboundedReceiver<Rsp>>,
}

impl AsyncHost {
    fn new(nodes: Vec<Node>) -> Self {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_all()
            .build()
            .expect("current-thread runtime");
        let local = tokio::task::LocalSet::new();
        let (mut cmds, mut rsps) = (Vec::new(), Vec::new());
        for node in nodes {
            let (cmd_tx, cmd_rx) = unbounded_channel();
            let (rsp_tx, rsp_rx) = unbounded_channel();
            local.spawn_local(party_loop(node, cmd_rx, rsp_tx));
            cmds.push(cmd_tx);
            rsps.push(rsp_rx);
        }
        AsyncHost {
            rt,
            local,
            cmds,
            rsps,
        }
    }

    /// Sends `cmd` to party `p`'s task and drives the executor until
    /// the task answers.
    fn roundtrip(&mut self, p: usize, cmd: Cmd) -> Rsp {
        if self.cmds[p].send(cmd).is_err() {
            panic!("async backend: party {p} task terminated early");
        }
        self.local
            .block_on(&self.rt, self.rsps[p].recv())
            .expect("async backend: party task dropped its response channel")
    }
}

impl StepHost for AsyncHost {
    fn deliver(&mut self, env: Envelope) -> (DeliveryOutcome, Vec<Outgoing>) {
        let p = env.to.0;
        match self.roundtrip(
            p,
            Cmd::Deliver {
                from: env.from,
                session: env.session,
                payload: env.payload,
            },
        ) {
            Rsp::Delivered(outcome, out) => (outcome, out),
            _ => unreachable!("Deliver answered with a non-Delivered response"),
        }
    }

    fn crash(&mut self, party: PartyId) {
        match self.roundtrip(party.0, Cmd::Crash) {
            Rsp::Done => {}
            _ => unreachable!("Crash answered with a non-Done response"),
        }
    }

    fn revive(&mut self, party: PartyId, session: &SessionId) {
        match self.roundtrip(party.0, Cmd::Revive(session.clone())) {
            Rsp::Done => {}
            _ => unreachable!("Revive answered with a non-Done response"),
        }
    }

    fn spawn(
        &mut self,
        party: PartyId,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> Vec<Outgoing> {
        match self.roundtrip(party.0, Cmd::Spawn(session, instance)) {
            Rsp::Spawned(out) => out,
            _ => unreachable!("Spawn answered with a non-Spawned response"),
        }
    }

    fn finish(mut self: Box<Self>) -> Vec<Node> {
        let mut nodes = Vec::with_capacity(self.cmds.len());
        for p in 0..self.cmds.len() {
            match self.roundtrip(p, Cmd::Finish) {
                Rsp::Node(node) => nodes.push(*node),
                _ => unreachable!("Finish answered with a non-Node response"),
            }
        }
        nodes
    }
}

/// The async event-loop backend (`rt=async[:sched]`).
///
/// A [`SimNetwork`] whose node-side dispatch runs on an event loop: for
/// the duration of every [`run`](Runtime::run) the nodes move into
/// per-party tasks on a current-thread executor, and each delivery is a
/// command/response round-trip into the destination party's task.
/// Outside of `run` (spawns, crashes, output reads) the nodes live in
/// the network as usual, exactly like `rt=sim`.
///
/// Determinism: scheduling decisions never leave [`SimNetwork`], so for
/// any deterministic scheduler family the backend produces bit-for-bit
/// the schedule, metrics and fingerprint of `rt=sim` — it participates
/// in the all-backend conformance matrix on those rows.
///
/// # Examples
///
/// ```
/// use aft_sim::{runtime_by_name, NetConfig};
/// let rt = runtime_by_name("async:fifo", NetConfig::new(4, 1, 7)).unwrap();
/// assert_eq!(rt.backend_name(), "async");
/// ```
pub struct AsyncRuntime {
    net: SimNetwork,
}

impl AsyncRuntime {
    /// Builds the backend for `config` with the given scheduler.
    pub fn new(config: NetConfig, scheduler: Box<dyn Scheduler>) -> Self {
        AsyncRuntime {
            net: SimNetwork::new(config, scheduler),
        }
    }
}

impl Runtime for AsyncRuntime {
    fn config(&self) -> &NetConfig {
        self.net.config()
    }

    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>) {
        self.net.spawn(party, session, instance);
    }

    fn crash(&mut self, party: PartyId) {
        self.net.crash(party);
    }

    fn run(&mut self, max_steps: u64) -> RunReport {
        let nodes = self.net.take_nodes();
        self.net.set_host(Box::new(AsyncHost::new(nodes)));
        let report = SimNetwork::run(&mut self.net, max_steps);
        let host = self
            .net
            .clear_host()
            .expect("host installed for the duration of run");
        self.net.put_nodes(host.finish());
        report
    }

    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload> {
        self.net.output(party, session)
    }

    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        self.net.retire_session(party, session)
    }

    fn schedule_recover(
        &mut self,
        party: PartyId,
        at_vtime: u64,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> bool {
        self.net
            .schedule_recover(party, at_vtime, session, instance);
        true
    }

    fn metrics(&self) -> Metrics {
        Runtime::metrics(&self.net)
    }

    fn set_trace(&mut self, mode: TraceMode) {
        self.net.set_trace(mode);
    }

    fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.net.take_trace()
    }

    fn install_adaptive(&mut self, ctrl: SharedAdaptive) -> bool {
        self.net.install_adaptive(ctrl);
        true
    }

    fn adaptive_handle(&self) -> Option<SharedAdaptive> {
        self.net.adaptive_handle()
    }

    fn backend_name(&self) -> &'static str {
        "async"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;
    use crate::runtime::{runtime_by_name, StopReason};
    use crate::RuntimeExt;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("t", 0))
    }

    /// Every party pings everyone once and outputs how many pings it
    /// heard.
    struct Ping {
        heard: usize,
    }

    impl Instance for Ping {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _from: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.heard);
            }
        }
    }

    fn deploy(rt: &mut dyn Runtime) {
        for p in 0..rt.config().n {
            rt.spawn(PartyId(p), sid(), Box::new(Ping { heard: 0 }));
        }
    }

    #[test]
    fn async_backend_runs_to_quiescence() {
        let mut rt = runtime_by_name("async", NetConfig::new(4, 1, 7)).unwrap();
        deploy(rt.as_mut());
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&4), "{p}");
        }
    }

    #[test]
    fn async_matches_sim_bit_for_bit() {
        for sched in ["fifo", "lifo", "random", "window4", "net:lat=1..8"] {
            for seed in [1u64, 9, 42] {
                let mut reports = Vec::new();
                for backend in ["sim", "async"] {
                    let name = format!("{backend}:{sched}");
                    let mut rt = runtime_by_name(&name, NetConfig::new(4, 1, seed)).unwrap();
                    deploy(rt.as_mut());
                    let report = rt.run(1_000_000);
                    let m = Runtime::metrics(rt.as_ref());
                    reports.push((report.stop, m.steps, m.sent, m.delivered));
                }
                assert_eq!(reports[0], reports[1], "sched={sched} seed={seed}");
            }
        }
    }

    #[test]
    fn async_crash_and_recover_matches_sim() {
        // Crash before run retracts the party; schedule_recover brings it
        // back mid-episode under the virtual-time scheduler. The whole
        // crash/revive/respawn path must round-trip through the event
        // loop with the exact outcome of the inline sim dispatch.
        let mut results = Vec::new();
        for backend in ["sim", "async"] {
            let name = format!("{backend}:net:lat=1..4");
            let mut rt = runtime_by_name(&name, NetConfig::new(4, 1, 3)).unwrap();
            deploy(rt.as_mut());
            rt.crash(PartyId(3));
            assert!(rt.schedule_recover(PartyId(3), 50, sid(), Box::new(Ping { heard: 0 })));
            let report = rt.run(1_000_000);
            assert_eq!(report.stop, StopReason::Quiescent, "{backend}");
            let m = Runtime::metrics(rt.as_ref());
            let outputs: Vec<Option<usize>> = (0..4)
                .map(|p| rt.output_as::<usize>(PartyId(p), &sid()).copied())
                .collect();
            results.push((m.steps, m.sent, m.delivered, outputs));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn async_multi_episode_nodes_persist() {
        // Nodes move out to tasks and back per run; a second episode sees
        // the same nodes (spawn of a fresh session works, outputs persist).
        let mut rt = runtime_by_name("async", NetConfig::new(4, 1, 11)).unwrap();
        deploy(rt.as_mut());
        rt.run(1_000_000);
        let sid2 = SessionId::root().child(SessionTag::new("t", 1));
        for p in 0..4 {
            rt.spawn(PartyId(p), sid2.clone(), Box::new(Ping { heard: 0 }));
        }
        let report = rt.run(1_000_000);
        assert_eq!(report.stop, StopReason::Quiescent);
        for p in 0..4 {
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid()), Some(&4));
            assert_eq!(rt.output_as::<usize>(PartyId(p), &sid2), Some(&4));
        }
    }
}
