//! Message schedulers: the asynchronous adversary's delivery-order control.
//!
//! The asynchronous model lets the adversary delay any message by an
//! arbitrary *finite* amount. A [`Scheduler`] is exactly that power: it
//! picks which in-flight envelope is delivered next. Every scheduler here
//! is *fair* — no message is deferred forever — which is the hypothesis of
//! the paper's almost-sure-termination claims. The aging cap in
//! [`SchedulerConfig::max_age`] enforces fairness even for adversarial
//! policies.

use crate::network::Envelope;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

use crate::ids::PartyId;

/// Picks the next envelope to deliver from the pending set.
///
/// `pending` is never empty when `pick` is called. The returned index must
/// be `< pending.len()`.
pub trait Scheduler: Send {
    /// Chooses the index of the next envelope to deliver.
    fn pick(&mut self, pending: &[Envelope], rng: &mut ChaCha12Rng) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Delivers messages in the order they were sent (a synchronous-looking,
/// best-case network).
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, _pending: &[Envelope], _rng: &mut ChaCha12Rng) -> usize {
        0
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers a uniformly random pending message — the standard *oblivious*
/// asynchronous adversary. Fair with probability 1.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomScheduler;

impl Scheduler for RandomScheduler {
    fn pick(&mut self, pending: &[Envelope], rng: &mut ChaCha12Rng) -> usize {
        rng.gen_range(0..pending.len())
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// An adversarial scheduler that starves a victim set: messages to or from
/// victims are deferred while any non-victim message is pending. The
/// network-level aging cap still forces eventual delivery, so the adversary
/// delays victims "up to any finite amount" — the paper's model, at its
/// most hostile.
#[derive(Debug, Clone)]
pub struct StarveScheduler {
    victims: HashSet<PartyId>,
}

impl StarveScheduler {
    /// Starves messages touching any party in `victims`.
    pub fn new<I: IntoIterator<Item = PartyId>>(victims: I) -> Self {
        StarveScheduler {
            victims: victims.into_iter().collect(),
        }
    }

    fn touches_victim(&self, e: &Envelope) -> bool {
        self.victims.contains(&e.from) || self.victims.contains(&e.to)
    }
}

impl Scheduler for StarveScheduler {
    fn pick(&mut self, pending: &[Envelope], rng: &mut ChaCha12Rng) -> usize {
        let clean: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, e)| !self.touches_victim(e))
            .map(|(i, _)| i)
            .collect();
        if clean.is_empty() {
            rng.gen_range(0..pending.len())
        } else {
            clean[rng.gen_range(0..clean.len())]
        }
    }
    fn name(&self) -> &'static str {
        "starve"
    }
}

/// Reorders within a sliding window: picks uniformly among the `window`
/// oldest pending messages. `window = 1` degenerates to FIFO; large windows
/// approach [`RandomScheduler`]. Models bounded out-of-orderness.
#[derive(Debug, Clone, Copy)]
pub struct WindowScheduler {
    window: usize,
}

impl WindowScheduler {
    /// Creates a scheduler picking among the `window` oldest messages.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WindowScheduler { window }
    }
}

impl Scheduler for WindowScheduler {
    fn pick(&mut self, pending: &[Envelope], rng: &mut ChaCha12Rng) -> usize {
        // Pending is kept in arrival order by the network, so the first
        // `window` entries are the oldest.
        let lim = self.window.min(pending.len());
        rng.gen_range(0..lim)
    }
    fn name(&self) -> &'static str {
        "window"
    }
}

/// A last-in-first-out scheduler: always delivers the *newest* message.
/// Maximally unfair without an aging cap; with the cap it stress-tests
/// buffering and session races (children spawned late, replies overtaking
/// requests).
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn pick(&mut self, pending: &[Envelope], _rng: &mut ChaCha12Rng) -> usize {
        pending.len() - 1
    }
    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Configuration shared by all schedulers.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Fairness cap: if the oldest pending envelope has waited more than
    /// this many delivery steps, it is delivered regardless of the
    /// scheduler's preference. This enforces the "every message is
    /// eventually delivered" hypothesis of the asynchronous model.
    pub max_age: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        // Generous but finite: adversaries can starve hard, never forever.
        SchedulerConfig { max_age: 4096 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::payload::Payload;
    use rand::SeedableRng;

    fn env(from: usize, to: usize, seq: u64) -> Envelope {
        Envelope {
            from: PartyId(from),
            to: PartyId(to),
            session: SessionId::root().child(SessionTag::new("x", 0)),
            payload: Payload::new(0u8),
            seq,
            born_step: 0,
        }
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn fifo_picks_first_lifo_picks_last() {
        let pending = vec![env(0, 1, 0), env(1, 2, 1), env(2, 3, 2)];
        let mut r = rng();
        assert_eq!(FifoScheduler.pick(&pending, &mut r), 0);
        assert_eq!(LifoScheduler.pick(&pending, &mut r), 2);
    }

    #[test]
    fn random_stays_in_bounds() {
        let pending = vec![env(0, 1, 0), env(1, 2, 1)];
        let mut r = rng();
        let mut s = RandomScheduler;
        for _ in 0..100 {
            assert!(s.pick(&pending, &mut r) < pending.len());
        }
    }

    #[test]
    fn starve_avoids_victims_when_possible() {
        let mut s = StarveScheduler::new([PartyId(1)]);
        let pending = vec![env(1, 2, 0), env(0, 2, 1), env(2, 1, 2)];
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.pick(&pending, &mut r), 1, "only index 1 avoids P1");
        }
        // When everything touches a victim, still picks something valid.
        let all_victim = vec![env(1, 2, 0), env(2, 1, 2)];
        for _ in 0..50 {
            assert!(s.pick(&all_victim, &mut r) < 2);
        }
    }

    #[test]
    fn window_respects_window() {
        let pending = vec![env(0, 1, 0), env(1, 2, 1), env(2, 3, 2), env(3, 0, 3)];
        let mut r = rng();
        let mut s = WindowScheduler::new(2);
        for _ in 0..100 {
            assert!(s.pick(&pending, &mut r) < 2);
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_zero_panics() {
        let _ = WindowScheduler::new(0);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FifoScheduler.name(),
            RandomScheduler.name(),
            StarveScheduler::new([]).name(),
            WindowScheduler::new(1).name(),
            LifoScheduler.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
