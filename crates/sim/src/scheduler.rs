//! Message schedulers: the asynchronous adversary's delivery-order control.
//!
//! The asynchronous model lets the adversary delay any message by an
//! arbitrary *finite* amount. A [`Scheduler`] is exactly that power: it
//! picks which in-flight message is delivered next. Every scheduler here
//! is *fair* — no message is deferred forever — which is the hypothesis of
//! the paper's almost-sure-termination claims. The aging cap in
//! [`SchedulerConfig::max_age`] enforces fairness even for adversarial
//! policies.
//!
//! Schedulers see only the arrival-ordered [`MsgMeta`] view of the
//! in-flight queue ([`Pending`]) — endpoints, sequence numbers, ages,
//! session kinds and batch sizes — never payloads, which keeps the
//! delivery hot path free of envelope copies. Since the queue batches
//! same-`(src, dst)` runs, a pick selects a *batch* and the network
//! delivers its oldest envelope; the batch keeps its arrival position
//! until its run drains.

use crate::ids::PartyId;
use crate::queue::Pending;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

#[allow(unused_imports)] // doc links
use crate::queue::MsgMeta;

/// Picks the next message to deliver from the pending set.
///
/// `pending` is never empty when `pick` is called. The returned index is
/// an arrival-order position and must be `< pending.len()`.
pub trait Scheduler: Send {
    /// Chooses the arrival-order index of the next message to deliver.
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }

    /// Called once by the backend before any delivery, with the
    /// network-wide configuration. Schedulers that derive per-run plans
    /// from `(seed, n, t)` — the virtual-time `net:` family's partition
    /// cut — hook this; order-only schedulers ignore it.
    fn configure(&mut self, _config: &crate::runtime::NetConfig) {}

    /// The scheduler's virtual clock in virtual milliseconds, if it
    /// keeps one (`None` for order-only schedulers).
    fn virtual_now(&self) -> Option<u64> {
        None
    }

    /// Advances the virtual clock to at least `to` (used to force
    /// scheduled recoveries due at quiescence). No-op without a clock.
    fn fast_forward(&mut self, _to: u64) {}

    /// Drains queued network-lifecycle events (partition start/heal)
    /// into `out`. Backends feed these to the trace.
    fn drain_net_events(&mut self, _out: &mut Vec<crate::net::NetEvent>) {}
}

/// Delivers messages in the order they were sent (a synchronous-looking,
/// best-case network).
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, _pending: &Pending, _rng: &mut ChaCha12Rng) -> usize {
        0
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers a uniformly random pending message — the standard *oblivious*
/// asynchronous adversary. Fair with probability 1.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomScheduler;

impl Scheduler for RandomScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        rng.gen_range(0..pending.len())
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// An adversarial scheduler that starves a victim set: messages to or from
/// victims are deferred while any non-victim message is pending. The
/// network-level aging cap still forces eventual delivery, so the adversary
/// delays victims "up to any finite amount" — the paper's model, at its
/// most hostile.
#[derive(Debug, Clone)]
pub struct StarveScheduler {
    victims: HashSet<PartyId>,
    /// Scratch buffer of non-victim indices, reused across picks.
    clean: Vec<usize>,
}

impl StarveScheduler {
    /// Starves messages touching any party in `victims`.
    pub fn new<I: IntoIterator<Item = PartyId>>(victims: I) -> Self {
        StarveScheduler {
            victims: victims.into_iter().collect(),
            clean: Vec::new(),
        }
    }
}

impl Scheduler for StarveScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        self.clean.clear();
        for (i, m) in pending.metas().enumerate() {
            if !self.victims.contains(&m.from) && !self.victims.contains(&m.to) {
                self.clean.push(i);
            }
        }
        if self.clean.is_empty() {
            rng.gen_range(0..pending.len())
        } else {
            self.clean[rng.gen_range(0..self.clean.len())]
        }
    }
    fn name(&self) -> &'static str {
        "starve"
    }
}

/// Reorders within a sliding window: picks uniformly among the `window`
/// oldest pending messages. `window = 1` degenerates to FIFO; large windows
/// approach [`RandomScheduler`]. Models bounded out-of-orderness.
#[derive(Debug, Clone, Copy)]
pub struct WindowScheduler {
    window: usize,
}

impl WindowScheduler {
    /// Creates a scheduler picking among the `window` oldest messages.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WindowScheduler { window }
    }
}

impl Scheduler for WindowScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        // Arrival order means the first `window` entries are the oldest.
        let lim = self.window.min(pending.len());
        rng.gen_range(0..lim)
    }
    fn name(&self) -> &'static str {
        "window"
    }
}

/// A last-in-first-out scheduler: always delivers the *newest* message.
/// Maximally unfair without an aging cap; with the cap it stress-tests
/// buffering and session races (children spawned late, replies overtaking
/// requests).
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn pick(&mut self, pending: &Pending, _rng: &mut ChaCha12Rng) -> usize {
        pending.len() - 1
    }
    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// A locality-preserving random scheduler: delivers the `block` oldest
/// pending entries in a fresh random permutation, then moves on to the
/// next block.
///
/// A uniformly random pick (the standard oblivious adversary) touches the
/// in-flight slab at a random position every delivery — on large queues
/// that is a cache miss per message. `block:<b>` keeps the randomness an
/// asynchronous adversary needs (within-block order is uniformly
/// shuffled, and blocks can interleave with concurrently arriving
/// traffic) while confining each burst of picks to the `b` oldest
/// entries, so slab reads stay in a contiguous arrival region and old
/// messages cannot starve — the schedule is FIFO at block granularity.
///
/// The permutation is drawn deterministically from the scheduler RNG, so
/// the schedule remains a pure function of `(seed, scheduler)` on every
/// backend — `sim`, `sharded:1` and `sharded:k` resolve it identically
/// as long as `sim`'s fairness cap never intervenes (the sharded epochs
/// are structurally fair and have no cap; on the tested stacks the cap
/// never fires, but a run deep enough to age batches past
/// [`SchedulerConfig::max_age`] makes `sim` force front deliveries the
/// sharded backend would not).
///
/// A cap-forced delivery (or a budget-truncated final run) also leaves
/// this scheduler's current block plan one position out of phase:
/// in-range stale entries then resolve to neighboring batches rather
/// than the originally planned ones. The schedule stays valid, fair and
/// deterministic — only the "exact permutation of the `b` oldest"
/// reading weakens while the external interference lasts.
#[derive(Debug, Clone)]
pub struct BlockScheduler {
    block: usize,
    /// Planned picks for the current block, consumed from the back.
    plan: Vec<usize>,
}

impl BlockScheduler {
    /// Creates a scheduler shuffling blocks of `block` oldest entries.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn new(block: usize) -> Self {
        assert!(block > 0, "block must be positive");
        BlockScheduler {
            block,
            plan: Vec::new(),
        }
    }
}

impl Scheduler for BlockScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        loop {
            match self.plan.pop() {
                Some(i) if i < pending.len() => {
                    // The network drains the picked batch's whole run
                    // before the next pick, vacating its position and
                    // shifting later arrival positions down one. (A
                    // budget-truncated final pick can leave the batch
                    // alive; the `i < len` guard absorbs that stale
                    // entry on the next call.)
                    for j in &mut self.plan {
                        if *j > i {
                            *j -= 1;
                        }
                    }
                    return i;
                }
                // Out-of-range stale entry (an external removal shrank
                // the view): drop it and re-plan if empty. In-range
                // entries left stale by a fairness-cap delivery are NOT
                // detectable here and resolve to a neighboring batch —
                // see the type-level docs.
                Some(_) => continue,
                None => {
                    let m = self.block.min(pending.len());
                    self.plan.extend(0..m);
                    // Fisher–Yates; picks pop from the back, so the block
                    // is consumed in uniformly shuffled order.
                    for k in (1..m).rev() {
                        let j = rng.gen_range(0..=k);
                        self.plan.swap(k, j);
                    }
                }
            }
        }
    }
    fn name(&self) -> &'static str {
        "block"
    }
}

/// Configuration shared by all schedulers.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Fairness cap: if the oldest pending envelope has waited more than
    /// this many delivery steps, it is delivered regardless of the
    /// scheduler's preference. This enforces the "every message is
    /// eventually delivered" hypothesis of the asynchronous model.
    pub max_age: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        // Generous but finite: adversaries can starve hard, never forever.
        SchedulerConfig { max_age: 4096 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::network::Envelope;
    use crate::payload::Payload;
    use rand::SeedableRng;

    fn pending(entries: &[(usize, usize)]) -> Pending {
        let mut q = Pending::new();
        for (seq, &(from, to)) in entries.iter().enumerate() {
            q.push(Envelope {
                from: PartyId(from),
                to: PartyId(to),
                session: SessionId::root().child(SessionTag::new("x", 0)),
                payload: Payload::new(0u8),
                seq: seq as u64,
                born_step: 0,
            });
        }
        q
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn fifo_picks_first_lifo_picks_last() {
        let q = pending(&[(0, 1), (1, 2), (2, 3)]);
        let mut r = rng();
        assert_eq!(FifoScheduler.pick(&q, &mut r), 0);
        assert_eq!(LifoScheduler.pick(&q, &mut r), 2);
    }

    #[test]
    fn random_stays_in_bounds() {
        let q = pending(&[(0, 1), (1, 2)]);
        let mut r = rng();
        let mut s = RandomScheduler;
        for _ in 0..100 {
            assert!(s.pick(&q, &mut r) < q.len());
        }
    }

    #[test]
    fn starve_avoids_victims_when_possible() {
        let mut s = StarveScheduler::new([PartyId(1)]);
        let q = pending(&[(1, 2), (0, 2), (2, 1)]);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.pick(&q, &mut r), 1, "only index 1 avoids P1");
        }
        // When everything touches a victim, still picks something valid.
        let all_victim = pending(&[(1, 2), (2, 1)]);
        for _ in 0..50 {
            assert!(s.pick(&all_victim, &mut r) < 2);
        }
    }

    #[test]
    fn window_respects_window() {
        let q = pending(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut r = rng();
        let mut s = WindowScheduler::new(2);
        for _ in 0..100 {
            assert!(s.pick(&q, &mut r) < 2);
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_zero_panics() {
        let _ = WindowScheduler::new(0);
    }

    #[test]
    #[should_panic(expected = "block must be positive")]
    fn block_zero_panics() {
        let _ = BlockScheduler::new(0);
    }

    #[test]
    fn block_consumes_oldest_block_as_a_permutation() {
        // 6 singleton batches, block size 4: the first four picks must be
        // a permutation of the four oldest entries (accounting for index
        // shifts as they drain), i.e. after 4 picks exactly the two
        // youngest remain.
        let mut q = pending(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]);
        let mut r = rng();
        let mut s = BlockScheduler::new(4);
        let mut picked = Vec::new();
        for _ in 0..4 {
            let i = s.pick(&q, &mut r);
            picked.push(q.take(i).seq);
        }
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 1, 2, 3], "first block = 4 oldest");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn block_is_deterministic_for_a_fixed_rng_stream() {
        let picks = |seed: u64| {
            let mut q = pending(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            let mut s = BlockScheduler::new(3);
            let mut order = Vec::new();
            while !q.is_empty() {
                let i = s.pick(&q, &mut r);
                order.push(q.take(i).seq);
            }
            order
        };
        assert_eq!(picks(7), picks(7));
    }

    #[test]
    fn block_one_degenerates_to_fifo() {
        let q = pending(&[(0, 1), (1, 2), (2, 3)]);
        let mut r = rng();
        let mut s = BlockScheduler::new(1);
        for _ in 0..10 {
            assert_eq!(s.pick(&q, &mut r), 0);
        }
    }

    #[test]
    fn block_keeps_position_while_a_batch_drains() {
        // One batch of 3 (same pair) and one singleton: picks stay in
        // bounds and eventually drain everything.
        let mut q = pending(&[(0, 1), (0, 1), (0, 1), (2, 3)]);
        assert_eq!(q.len(), 2, "3-run collapses into one batch");
        let mut r = rng();
        let mut s = BlockScheduler::new(8);
        let mut drained = Vec::new();
        while !q.is_empty() {
            let i = s.pick(&q, &mut r);
            assert!(i < q.len());
            drained.push(q.take(i).seq);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FifoScheduler.name(),
            RandomScheduler.name(),
            StarveScheduler::new([]).name(),
            WindowScheduler::new(1).name(),
            LifoScheduler.name(),
            BlockScheduler::new(1).name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
