//! Message schedulers: the asynchronous adversary's delivery-order control.
//!
//! The asynchronous model lets the adversary delay any message by an
//! arbitrary *finite* amount. A [`Scheduler`] is exactly that power: it
//! picks which in-flight message is delivered next. Every scheduler here
//! is *fair* — no message is deferred forever — which is the hypothesis of
//! the paper's almost-sure-termination claims. The aging cap in
//! [`SchedulerConfig::max_age`] enforces fairness even for adversarial
//! policies.
//!
//! Schedulers see only the arrival-ordered [`MsgMeta`] view of the
//! in-flight queue ([`Pending`]) — endpoints, sequence numbers, ages and
//! session kinds — never payloads, which keeps the delivery hot path free
//! of envelope copies.

use crate::ids::PartyId;
use crate::queue::Pending;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

#[allow(unused_imports)] // doc links
use crate::queue::MsgMeta;

/// Picks the next message to deliver from the pending set.
///
/// `pending` is never empty when `pick` is called. The returned index is
/// an arrival-order position and must be `< pending.len()`.
pub trait Scheduler: Send {
    /// Chooses the arrival-order index of the next message to deliver.
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Delivers messages in the order they were sent (a synchronous-looking,
/// best-case network).
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, _pending: &Pending, _rng: &mut ChaCha12Rng) -> usize {
        0
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers a uniformly random pending message — the standard *oblivious*
/// asynchronous adversary. Fair with probability 1.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomScheduler;

impl Scheduler for RandomScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        rng.gen_range(0..pending.len())
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// An adversarial scheduler that starves a victim set: messages to or from
/// victims are deferred while any non-victim message is pending. The
/// network-level aging cap still forces eventual delivery, so the adversary
/// delays victims "up to any finite amount" — the paper's model, at its
/// most hostile.
#[derive(Debug, Clone)]
pub struct StarveScheduler {
    victims: HashSet<PartyId>,
    /// Scratch buffer of non-victim indices, reused across picks.
    clean: Vec<usize>,
}

impl StarveScheduler {
    /// Starves messages touching any party in `victims`.
    pub fn new<I: IntoIterator<Item = PartyId>>(victims: I) -> Self {
        StarveScheduler {
            victims: victims.into_iter().collect(),
            clean: Vec::new(),
        }
    }
}

impl Scheduler for StarveScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        self.clean.clear();
        for (i, m) in pending.metas().enumerate() {
            if !self.victims.contains(&m.from) && !self.victims.contains(&m.to) {
                self.clean.push(i);
            }
        }
        if self.clean.is_empty() {
            rng.gen_range(0..pending.len())
        } else {
            self.clean[rng.gen_range(0..self.clean.len())]
        }
    }
    fn name(&self) -> &'static str {
        "starve"
    }
}

/// Reorders within a sliding window: picks uniformly among the `window`
/// oldest pending messages. `window = 1` degenerates to FIFO; large windows
/// approach [`RandomScheduler`]. Models bounded out-of-orderness.
#[derive(Debug, Clone, Copy)]
pub struct WindowScheduler {
    window: usize,
}

impl WindowScheduler {
    /// Creates a scheduler picking among the `window` oldest messages.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WindowScheduler { window }
    }
}

impl Scheduler for WindowScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        // Arrival order means the first `window` entries are the oldest.
        let lim = self.window.min(pending.len());
        rng.gen_range(0..lim)
    }
    fn name(&self) -> &'static str {
        "window"
    }
}

/// A last-in-first-out scheduler: always delivers the *newest* message.
/// Maximally unfair without an aging cap; with the cap it stress-tests
/// buffering and session races (children spawned late, replies overtaking
/// requests).
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoScheduler;

impl Scheduler for LifoScheduler {
    fn pick(&mut self, pending: &Pending, _rng: &mut ChaCha12Rng) -> usize {
        pending.len() - 1
    }
    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Configuration shared by all schedulers.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Fairness cap: if the oldest pending envelope has waited more than
    /// this many delivery steps, it is delivered regardless of the
    /// scheduler's preference. This enforces the "every message is
    /// eventually delivered" hypothesis of the asynchronous model.
    pub max_age: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        // Generous but finite: adversaries can starve hard, never forever.
        SchedulerConfig { max_age: 4096 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::network::Envelope;
    use crate::payload::Payload;
    use rand::SeedableRng;

    fn pending(entries: &[(usize, usize)]) -> Pending {
        let mut q = Pending::new();
        for (seq, &(from, to)) in entries.iter().enumerate() {
            q.push(Envelope {
                from: PartyId(from),
                to: PartyId(to),
                session: SessionId::root().child(SessionTag::new("x", 0)),
                payload: Payload::new(0u8),
                seq: seq as u64,
                born_step: 0,
            });
        }
        q
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn fifo_picks_first_lifo_picks_last() {
        let q = pending(&[(0, 1), (1, 2), (2, 3)]);
        let mut r = rng();
        assert_eq!(FifoScheduler.pick(&q, &mut r), 0);
        assert_eq!(LifoScheduler.pick(&q, &mut r), 2);
    }

    #[test]
    fn random_stays_in_bounds() {
        let q = pending(&[(0, 1), (1, 2)]);
        let mut r = rng();
        let mut s = RandomScheduler;
        for _ in 0..100 {
            assert!(s.pick(&q, &mut r) < q.len());
        }
    }

    #[test]
    fn starve_avoids_victims_when_possible() {
        let mut s = StarveScheduler::new([PartyId(1)]);
        let q = pending(&[(1, 2), (0, 2), (2, 1)]);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(s.pick(&q, &mut r), 1, "only index 1 avoids P1");
        }
        // When everything touches a victim, still picks something valid.
        let all_victim = pending(&[(1, 2), (2, 1)]);
        for _ in 0..50 {
            assert!(s.pick(&all_victim, &mut r) < 2);
        }
    }

    #[test]
    fn window_respects_window() {
        let q = pending(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut r = rng();
        let mut s = WindowScheduler::new(2);
        for _ in 0..100 {
            assert!(s.pick(&q, &mut r) < 2);
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_zero_panics() {
        let _ = WindowScheduler::new(0);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FifoScheduler.name(),
            RandomScheduler.name(),
            StarveScheduler::new([]).name(),
            WindowScheduler::new(1).name(),
            LifoScheduler.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
