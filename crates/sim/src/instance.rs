//! The protocol-instance abstraction: event-driven state machines that
//! compose hierarchically.

use crate::ids::{PartyId, SessionId, SessionTag};
use crate::payload::Payload;
use rand_chacha::ChaCha12Rng;

/// An event-driven protocol instance (one party's state machine for one
/// protocol session).
///
/// Instances never block: they react to `on_start` / `on_message` /
/// `on_child_output` by emitting effects through the [`Context`] — sends,
/// child spawns, outputs, shun events. The same instance code runs under
/// the deterministic simulator and the threaded runtime.
///
/// Byzantine parties are modelled by substituting a different `Instance`
/// implementation for the honest one; the framework is identical.
pub trait Instance: Send {
    /// Called once when the instance is spawned locally.
    fn on_start(&mut self, ctx: &mut Context<'_>);

    /// Called for every message delivered to this instance's session.
    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>);

    /// Called when a direct child instance produces its (first) output.
    fn on_child_output(&mut self, child: &SessionTag, output: &Payload, ctx: &mut Context<'_>) {
        let _ = (child, output, ctx);
    }
}

/// A deferred effect emitted by an instance.
///
/// (Not `derive(Debug)`: `Spawn` holds a trait object.)
pub(crate) enum Effect {
    /// Point-to-point send within the emitting session.
    Send {
        to: PartyId,
        session: SessionId,
        payload: Payload,
    },
    /// Send to every party (including the sender) within the session.
    SendAll {
        session: SessionId,
        payload: Payload,
    },
    /// Spawn a child instance under the emitting session.
    Spawn {
        session: SessionId,
        instance: Box<dyn Instance>,
    },
    /// Produce the session's output (first output wins; instance stays
    /// alive to keep participating, as the paper's protocols require).
    Output { session: SessionId, value: Payload },
    /// Record a shun event against `target` observed in `session`.
    Shun { target: PartyId, session: SessionId },
}

impl std::fmt::Debug for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Effect::Send {
                to,
                session,
                payload,
            } => f
                .debug_struct("Send")
                .field("to", to)
                .field("session", session)
                .field("payload", payload)
                .finish(),
            Effect::SendAll { session, payload } => f
                .debug_struct("SendAll")
                .field("session", session)
                .field("payload", payload)
                .finish(),
            Effect::Spawn { session, .. } => f
                .debug_struct("Spawn")
                .field("session", session)
                .finish_non_exhaustive(),
            Effect::Output { session, value } => f
                .debug_struct("Output")
                .field("session", session)
                .field("value", value)
                .finish(),
            Effect::Shun { target, session } => f
                .debug_struct("Shun")
                .field("target", target)
                .field("session", session)
                .finish(),
        }
    }
}

/// The execution context handed to an [`Instance`] callback.
///
/// Collects effects to be applied by the node after the callback returns
/// (avoiding re-entrancy), and exposes the party's identity, the system
/// parameters `n` and `t`, and the party's deterministic RNG.
pub struct Context<'a> {
    me: PartyId,
    n: usize,
    t: usize,
    session: SessionId,
    rng: &'a mut ChaCha12Rng,
    pub(crate) effects: Vec<Effect>,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        me: PartyId,
        n: usize,
        t: usize,
        session: SessionId,
        rng: &'a mut ChaCha12Rng,
    ) -> Self {
        Context {
            me,
            n,
            t,
            session,
            rng,
            effects: Vec::new(),
        }
    }

    /// This party's identifier.
    pub fn me(&self) -> PartyId {
        self.me
    }

    /// Total number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault threshold `t` (the system guarantees `n >= 3t + 1`).
    pub fn t(&self) -> usize {
        self.t
    }

    /// The session id of the running instance.
    pub fn session(&self) -> &SessionId {
        &self.session
    }

    /// The party's deterministic random generator.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }

    /// Iterator over all party ids `0..n`.
    pub fn parties(&self) -> impl Iterator<Item = PartyId> {
        (0..self.n).map(PartyId)
    }

    /// Sends `payload` to `to` within this session.
    ///
    /// Messages are [`WireMessage`]s: they carry a typed codec identity,
    /// so the same send works on in-memory backends (delivered as typed
    /// values, small ones inlined without allocation) and on the
    /// wire-serialized backend (delivered as encoded byte frames).
    /// Receivers read them back with [`Payload::view`] /
    /// [`Payload::to_msg`].
    ///
    /// [`WireMessage`]: crate::wire::WireMessage
    pub fn send<T: crate::wire::WireMessage>(&mut self, to: PartyId, payload: T) {
        self.effects.push(Effect::Send {
            to,
            session: self.session.clone(),
            payload: Payload::message(payload),
        });
    }

    /// Sends `payload` to every party, including this one. See
    /// [`send`](Context::send) for the message bound.
    pub fn send_all<T: crate::wire::WireMessage>(&mut self, payload: T) {
        self.effects.push(Effect::SendAll {
            session: self.session.clone(),
            payload: Payload::message(payload),
        });
    }

    /// Spawns a child instance under `tag`.
    ///
    /// All parties that spawn the same tag path participate in the same
    /// logical sub-protocol. Spawning an already-existing child is ignored
    /// (idempotent), so "continue participating" loops are harmless.
    pub fn spawn(&mut self, tag: SessionTag, instance: Box<dyn Instance>) {
        self.effects.push(Effect::Spawn {
            session: self.session.child(tag),
            instance,
        });
    }

    /// Emits this session's output. The first output is recorded and routed
    /// to the parent instance (or to the top-level results for root
    /// sessions); later outputs are ignored.
    pub fn output<T: Send + Sync + 'static>(&mut self, value: T) {
        self.effects.push(Effect::Output {
            session: self.session.clone(),
            value: Payload::new(value),
        });
    }

    /// Records that this party *shuns* `target`: messages from `target`
    /// outside the current invocation subtree will be dropped from now on
    /// (Definition 3.2's shunning semantics). Idempotent per ordered pair,
    /// so fewer than `n^2` shun events can ever occur.
    pub fn shun(&mut self, target: PartyId) {
        self.effects.push(Effect::Shun {
            target,
            session: self.session.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Nop;
    impl Instance for Nop {
        fn on_start(&mut self, _ctx: &mut Context<'_>) {}
        fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
    }

    #[test]
    fn context_collects_effects_in_order() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let sid = SessionId::root().child(SessionTag::new("x", 0));
        let mut ctx = Context::new(PartyId(1), 4, 1, sid.clone(), &mut rng);
        ctx.send(PartyId(2), 42u32);
        ctx.send_all("hello".to_string());
        ctx.spawn(SessionTag::new("child", 9), Box::new(Nop));
        ctx.output(7u8);
        ctx.shun(PartyId(3));
        assert_eq!(ctx.effects.len(), 5);
        match &ctx.effects[0] {
            Effect::Send {
                to,
                session,
                payload,
            } => {
                assert_eq!(*to, PartyId(2));
                assert_eq!(session, &sid);
                assert_eq!(payload.to_msg::<u32>(), Some(42));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ctx.effects[2] {
            Effect::Spawn { session, .. } => {
                assert_eq!(session, &sid.child(SessionTag::new("child", 9)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn context_accessors() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let sid = SessionId::root();
        let ctx = Context::new(PartyId(0), 7, 2, sid.clone(), &mut rng);
        assert_eq!(ctx.me(), PartyId(0));
        assert_eq!(ctx.n(), 7);
        assert_eq!(ctx.t(), 2);
        assert_eq!(ctx.session(), &sid);
        assert_eq!(ctx.parties().count(), 7);
    }
}
