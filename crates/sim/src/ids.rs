//! Identifiers: parties and hierarchical protocol sessions.
//!
//! [`SessionId`] paths are *hash-consed*: every distinct tag path is
//! stored exactly once in a global trie of interned nodes and a
//! `SessionId` is a reference to that canonical storage. Cloning a
//! session id — the per-send hot path, since every envelope carries one —
//! is a pointer copy instead of a `Vec` allocation, and equality/hashing
//! compare one machine word instead of walking the path.
//!
//! The interner is a *trie*: children resolve through a single
//! `(parent, tag)`-keyed table, so deriving a child
//! ([`SessionId::child`], the session-spawn hot path) takes one read
//! lock and allocates nothing on a hit — no path `Vec` is built just to
//! probe the table. Walking up ([`SessionId::parent`]) follows a stored
//! pointer in O(1).
//!
//! Every interned session also carries a **dense arena index** assigned
//! at interning time. [`Node`](crate::Node) keys its per-session state by
//! that index instead of hashing session ids, which removes hash lookups
//! from the delivery loop entirely.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{OnceLock, RwLock};

/// A party (processor) identifier in `0..n`.
///
/// The secret-sharing layer maps party `i` to the field point `i + 1`
/// (zero is reserved for the secret).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PartyId(pub usize);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for PartyId {
    fn from(v: usize) -> Self {
        PartyId(v)
    }
}

/// One component of a hierarchical [`SessionId`]: a protocol kind plus an
/// instance index (round number, dealer id, …).
///
/// ```
/// use aft_sim::SessionTag;
/// let tag = SessionTag::new("svss-share", 3);
/// assert_eq!(tag.kind, "svss-share");
/// assert_eq!(tag.index, 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SessionTag {
    /// Protocol kind, e.g. `"acast"`, `"ba"`, `"svss-share"`.
    pub kind: &'static str,
    /// Instance index within the parent (dealer id, round, slot …).
    pub index: u64,
}

impl SessionTag {
    /// Creates a tag.
    pub fn new(kind: &'static str, index: u64) -> Self {
        SessionTag { kind, index }
    }

    /// Interns an arbitrary kind string to the canonical `&'static str`
    /// used by tags — the wire decoder's way back from bytes to tags.
    ///
    /// Kinds form a small closed set (a handful per protocol), so the
    /// intern table is bounded; each distinct kind is leaked exactly
    /// once. Interning the same text twice returns the same pointer.
    ///
    /// ```
    /// use aft_sim::SessionTag;
    /// let a = SessionTag::intern_kind("acast");
    /// let b = SessionTag::intern_kind(&String::from("acast"));
    /// assert!(std::ptr::eq(a, b));
    /// ```
    pub fn intern_kind(kind: &str) -> &'static str {
        static KINDS: OnceLock<RwLock<HashMap<String, &'static str>>> = OnceLock::new();
        let table = KINDS.get_or_init(|| RwLock::new(HashMap::new()));
        if let Some(&hit) = table.read().expect("kind interner poisoned").get(kind) {
            return hit;
        }
        let mut table = table.write().expect("kind interner poisoned");
        if let Some(&hit) = table.get(kind) {
            return hit;
        }
        let leaked: &'static str = Box::leak(kind.to_owned().into_boxed_str());
        table.insert(kind.to_owned(), leaked);
        leaked
    }
}

impl fmt::Display for SessionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// One canonical interned session: a node of the global session trie.
///
/// Leaked exactly once per distinct path; all `SessionId`s for the path
/// alias this storage. Memory grows with the number of *distinct*
/// sessions ever created (a few per protocol instance), never with
/// message volume. Plain data only — the mutable trie structure lives in
/// the [`children`] table, so `SessionId` stays a well-behaved map key.
struct Interned {
    /// The full tag path from the root.
    path: &'static [SessionTag],
    /// The parent trie node (`None` at the root).
    parent: Option<&'static Interned>,
    /// Dense arena index, assigned in interning order (root = 0).
    index: u32,
    /// The path's final tag, mirrored inline (`None` at the root): the
    /// leaf kind is read per enqueued envelope (batch metadata, per-kind
    /// metrics), and the mirror saves the `path` slice indirection.
    leaf: Option<SessionTag>,
}

/// Next dense arena index to hand out (0 is reserved for the root).
static NEXT_INDEX: AtomicU32 = AtomicU32::new(1);

/// Cheap multiply-xor hasher for the interner's edge table. The keys are
/// a pointer plus a tag (static-str pointer bytes and a small index), so
/// collision quality far beyond this is wasted; SipHash on the 24-byte
/// key is measurable on the session-spawn hot path. Internal only.
#[derive(Default)]
struct EdgeHasher(u64);

impl Hasher for EdgeHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a for the str bytes of a tag kind (short).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

type EdgeMap =
    HashMap<(usize, SessionTag), &'static Interned, std::hash::BuildHasherDefault<EdgeHasher>>;

/// The trie's edge table: `(parent node address, tag)` resolves to the
/// interned child. One read lock and no allocation per already-interned
/// child — the session-spawn hot path.
fn children() -> &'static RwLock<EdgeMap> {
    static CHILDREN: OnceLock<RwLock<EdgeMap>> = OnceLock::new();
    // Pre-sized so large deployments (n=256 interns thousands of per-party
    // child sessions) never rehash the table under the write lock.
    CHILDREN
        .get_or_init(|| RwLock::new(EdgeMap::with_capacity_and_hasher(4096, Default::default())))
}

/// The canonical root trie node.
fn root_interned() -> &'static Interned {
    static ROOT: OnceLock<&'static Interned> = OnceLock::new();
    ROOT.get_or_init(|| {
        Box::leak(Box::new(Interned {
            path: &[],
            parent: None,
            index: 0,
            leaf: None,
        }))
    })
}

/// A hierarchical session identifier: the path of [`SessionTag`]s from the
/// root protocol down to a sub-protocol instance.
///
/// Hierarchy is what lets protocols *compose*: an instance spawns children
/// under child session ids, and a child's output is routed back to it. All
/// parties construct identical session ids for the same logical instance,
/// so messages route without global coordination.
///
/// Session ids are hash-consed (see the module docs): `clone` is a pointer
/// copy, `==`/`Hash` compare the canonical pointer — one word — rather
/// than the tag path, and [`parent`](SessionId::parent) is a stored
/// pointer. Lexicographic path order is preserved by [`Ord`]/[`PartialOrd`].
///
/// ```
/// use aft_sim::{SessionId, SessionTag};
/// let coin = SessionId::root().child(SessionTag::new("coin", 0));
/// let svss = coin.child(SessionTag::new("svss", 7));
/// assert_eq!(svss.parent(), Some(coin.clone()));
/// assert!(svss.starts_with(&coin));
/// assert_eq!(svss.last(), Some(&SessionTag::new("svss", 7)));
/// ```
#[derive(Clone)]
pub struct SessionId(&'static Interned);

impl SessionId {
    /// The empty (root) session.
    pub fn root() -> Self {
        SessionId(root_interned())
    }

    /// Builds a session id from a tag path.
    pub fn from_path(path: Vec<SessionTag>) -> Self {
        let mut id = SessionId::root();
        for tag in path {
            id = id.child(tag);
        }
        id
    }

    /// Returns a child session extended with `tag`.
    ///
    /// Hot path: a hit in the trie's edge table is one read lock and no
    /// allocation (the key is `(parent address, tag)`, so no path `Vec`
    /// is built to probe); only the first derivation of each distinct
    /// child pays for interning.
    #[must_use]
    pub fn child(&self, tag: SessionTag) -> SessionId {
        let key = (self.0 as *const Interned as usize, tag);
        if let Some(&hit) = children()
            .read()
            .expect("session interner poisoned")
            .get(&key)
        {
            return SessionId(hit);
        }
        let mut table = children().write().expect("session interner poisoned");
        // Double-check: another thread may have interned the child between
        // the read unlock and the write lock.
        if let Some(&hit) = table.get(&key) {
            return SessionId(hit);
        }
        let mut path = Vec::with_capacity(self.0.path.len() + 1);
        path.extend_from_slice(self.0.path);
        path.push(tag);
        let interned: &'static Interned = Box::leak(Box::new(Interned {
            path: Box::leak(path.into_boxed_slice()),
            parent: Some(self.0),
            index: NEXT_INDEX.fetch_add(1, Ordering::Relaxed),
            leaf: Some(tag),
        }));
        table.insert(key, interned);
        SessionId(interned)
    }

    /// The parent session, or `None` at the root. O(1): the trie stores
    /// the parent pointer.
    pub fn parent(&self) -> Option<SessionId> {
        self.0.parent.map(SessionId)
    }

    /// The final tag on the path, or `None` at the root.
    pub fn last(&self) -> Option<&SessionTag> {
        self.0.leaf.as_ref()
    }

    /// The tag path.
    pub fn path(&self) -> &[SessionTag] {
        self.0.path
    }

    /// Path length (root = 0).
    pub fn depth(&self) -> usize {
        self.0.path.len()
    }

    /// The dense interning index of this session (root = 0): distinct
    /// sessions get consecutive small integers, which is what lets
    /// [`Node`](crate::Node) arena-index its per-session state instead of
    /// hashing.
    pub(crate) fn arena_index(&self) -> usize {
        self.0.index as usize
    }

    /// Whether `self` is `prefix` or a descendant of it.
    pub fn starts_with(&self, prefix: &SessionId) -> bool {
        std::ptr::eq(self.0, prefix.0)
            || (self.0.path.len() >= prefix.0.path.len()
                && self.0.path[..prefix.0.path.len()] == prefix.0.path[..])
    }
}

impl Default for SessionId {
    fn default() -> Self {
        SessionId::root()
    }
}

impl PartialEq for SessionId {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes the canonical node unique per path, so
        // pointer identity IS path equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for SessionId {}

impl Hash for SessionId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self.0 as *const Interned as usize).hash(state);
    }
}

impl PartialOrd for SessionId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SessionId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic path order, matching the pre-interner semantics.
        self.0.path.cmp(other.0.path)
    }
}

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SessionId").field(&self.0.path).finish()
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.path.is_empty() {
            return write!(f, "/");
        }
        for tag in self.0.path {
            write!(f, "/{tag}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_roundtrip() {
        let root = SessionId::root();
        let a = root.child(SessionTag::new("a", 1));
        let b = a.child(SessionTag::new("b", 2));
        assert_eq!(b.parent(), Some(a.clone()));
        assert_eq!(a.parent(), Some(root.clone()));
        assert_eq!(root.parent(), None);
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn starts_with_semantics() {
        let a = SessionId::root().child(SessionTag::new("a", 1));
        let b = a.child(SessionTag::new("b", 2));
        assert!(b.starts_with(&a));
        assert!(b.starts_with(&b));
        assert!(b.starts_with(&SessionId::root()));
        assert!(!a.starts_with(&b));
        let other = SessionId::root().child(SessionTag::new("a", 2));
        assert!(!b.starts_with(&other));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SessionId::root().to_string(), "/");
        let s = SessionId::root()
            .child(SessionTag::new("coin", 0))
            .child(SessionTag::new("svss", 3));
        assert_eq!(s.to_string(), "/coin[0]/svss[3]");
        assert_eq!(PartyId(4).to_string(), "P4");
    }

    #[test]
    fn equality_and_hashing_distinguish_indices() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SessionId::root().child(SessionTag::new("x", 0)));
        set.insert(SessionId::root().child(SessionTag::new("x", 1)));
        set.insert(SessionId::root().child(SessionTag::new("y", 0)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn interning_canonicalizes_equal_paths() {
        // Two independently-built ids for the same logical path must alias
        // the same canonical storage (pointer-equal, not just path-equal).
        let a = SessionId::root()
            .child(SessionTag::new("i", 4))
            .child(SessionTag::new("j", 5));
        let b = SessionId::from_path(vec![SessionTag::new("i", 4), SessionTag::new("j", 5)]);
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.path(), b.path()));
        // Clones alias too: no per-clone allocation.
        let c = a.clone();
        assert!(std::ptr::eq(a.path(), c.path()));
        // Roots are canonical as well.
        assert_eq!(SessionId::from_path(Vec::new()), SessionId::root());
        assert_eq!(SessionId::default(), SessionId::root());
    }

    #[test]
    fn arena_indices_are_distinct_and_stable() {
        let a = SessionId::root().child(SessionTag::new("arena", 0));
        let b = SessionId::root().child(SessionTag::new("arena", 1));
        assert_ne!(a.arena_index(), b.arena_index());
        assert_eq!(SessionId::root().arena_index(), 0);
        // Re-deriving the same path resolves to the same index.
        let a2 = SessionId::root().child(SessionTag::new("arena", 0));
        assert_eq!(a.arena_index(), a2.arena_index());
    }

    #[test]
    fn ordering_is_lexicographic_by_path() {
        let a0 = SessionId::root().child(SessionTag::new("a", 0));
        let a1 = SessionId::root().child(SessionTag::new("a", 1));
        let a0b = a0.child(SessionTag::new("b", 0));
        assert!(SessionId::root() < a0);
        assert!(a0 < a0b, "prefix sorts before extension");
        assert!(a0b < a1, "index 0 subtree sorts before index 1");
    }

    #[test]
    fn interner_is_thread_safe() {
        let ids: Vec<SessionId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        SessionId::root()
                            .child(SessionTag::new("race", 7))
                            .child(SessionTag::new("deep", 9))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in ids.windows(2) {
            assert_eq!(pair[0], pair[1]);
            assert!(std::ptr::eq(pair[0].path(), pair[1].path()));
            assert_eq!(pair[0].arena_index(), pair[1].arena_index());
        }
    }
}
