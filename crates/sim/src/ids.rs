//! Identifiers: parties and hierarchical protocol sessions.

use std::fmt;

/// A party (processor) identifier in `0..n`.
///
/// The secret-sharing layer maps party `i` to the field point `i + 1`
/// (zero is reserved for the secret).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PartyId(pub usize);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for PartyId {
    fn from(v: usize) -> Self {
        PartyId(v)
    }
}

/// One component of a hierarchical [`SessionId`]: a protocol kind plus an
/// instance index (round number, dealer id, …).
///
/// ```
/// use aft_sim::SessionTag;
/// let tag = SessionTag::new("svss-share", 3);
/// assert_eq!(tag.kind, "svss-share");
/// assert_eq!(tag.index, 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SessionTag {
    /// Protocol kind, e.g. `"acast"`, `"ba"`, `"svss-share"`.
    pub kind: &'static str,
    /// Instance index within the parent (dealer id, round, slot …).
    pub index: u64,
}

impl SessionTag {
    /// Creates a tag.
    pub fn new(kind: &'static str, index: u64) -> Self {
        SessionTag { kind, index }
    }
}

impl fmt::Display for SessionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// A hierarchical session identifier: the path of [`SessionTag`]s from the
/// root protocol down to a sub-protocol instance.
///
/// Hierarchy is what lets protocols *compose*: an instance spawns children
/// under child session ids, and a child's output is routed back to it. All
/// parties construct identical session ids for the same logical instance,
/// so messages route without global coordination.
///
/// ```
/// use aft_sim::{SessionId, SessionTag};
/// let coin = SessionId::root().child(SessionTag::new("coin", 0));
/// let svss = coin.child(SessionTag::new("svss", 7));
/// assert_eq!(svss.parent(), Some(coin.clone()));
/// assert!(svss.starts_with(&coin));
/// assert_eq!(svss.last(), Some(&SessionTag::new("svss", 7)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct SessionId(Vec<SessionTag>);

impl SessionId {
    /// The empty (root) session.
    pub fn root() -> Self {
        SessionId(Vec::new())
    }

    /// Builds a session id from a tag path.
    pub fn from_path(path: Vec<SessionTag>) -> Self {
        SessionId(path)
    }

    /// Returns a child session extended with `tag`.
    #[must_use]
    pub fn child(&self, tag: SessionTag) -> SessionId {
        let mut path = self.0.clone();
        path.push(tag);
        SessionId(path)
    }

    /// The parent session, or `None` at the root.
    pub fn parent(&self) -> Option<SessionId> {
        if self.0.is_empty() {
            None
        } else {
            Some(SessionId(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The final tag on the path, or `None` at the root.
    pub fn last(&self) -> Option<&SessionTag> {
        self.0.last()
    }

    /// The tag path.
    pub fn path(&self) -> &[SessionTag] {
        &self.0
    }

    /// Path length (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Whether `self` is `prefix` or a descendant of it.
    pub fn starts_with(&self, prefix: &SessionId) -> bool {
        self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for tag in &self.0 {
            write!(f, "/{tag}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_roundtrip() {
        let root = SessionId::root();
        let a = root.child(SessionTag::new("a", 1));
        let b = a.child(SessionTag::new("b", 2));
        assert_eq!(b.parent(), Some(a.clone()));
        assert_eq!(a.parent(), Some(root.clone()));
        assert_eq!(root.parent(), None);
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn starts_with_semantics() {
        let a = SessionId::root().child(SessionTag::new("a", 1));
        let b = a.child(SessionTag::new("b", 2));
        assert!(b.starts_with(&a));
        assert!(b.starts_with(&b));
        assert!(b.starts_with(&SessionId::root()));
        assert!(!a.starts_with(&b));
        let other = SessionId::root().child(SessionTag::new("a", 2));
        assert!(!b.starts_with(&other));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SessionId::root().to_string(), "/");
        let s = SessionId::root()
            .child(SessionTag::new("coin", 0))
            .child(SessionTag::new("svss", 3));
        assert_eq!(s.to_string(), "/coin[0]/svss[3]");
        assert_eq!(PartyId(4).to_string(), "P4");
    }

    #[test]
    fn equality_and_hashing_distinguish_indices() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SessionId::root().child(SessionTag::new("x", 0)));
        set.insert(SessionId::root().child(SessionTag::new("x", 1)));
        set.insert(SessionId::root().child(SessionTag::new("y", 0)));
        assert_eq!(set.len(), 3);
    }
}
