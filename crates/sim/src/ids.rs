//! Identifiers: parties and hierarchical protocol sessions.
//!
//! [`SessionId`] paths are *hash-consed*: every distinct tag path is
//! stored exactly once in a global interner and a `SessionId` is a
//! reference to that canonical storage. Cloning a session id — the
//! per-send hot path, since every envelope carries one — is a pointer
//! copy instead of a `Vec` allocation, and equality/hashing compare one
//! machine word instead of walking the path.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// A party (processor) identifier in `0..n`.
///
/// The secret-sharing layer maps party `i` to the field point `i + 1`
/// (zero is reserved for the secret).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct PartyId(pub usize);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for PartyId {
    fn from(v: usize) -> Self {
        PartyId(v)
    }
}

/// One component of a hierarchical [`SessionId`]: a protocol kind plus an
/// instance index (round number, dealer id, …).
///
/// ```
/// use aft_sim::SessionTag;
/// let tag = SessionTag::new("svss-share", 3);
/// assert_eq!(tag.kind, "svss-share");
/// assert_eq!(tag.index, 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SessionTag {
    /// Protocol kind, e.g. `"acast"`, `"ba"`, `"svss-share"`.
    pub kind: &'static str,
    /// Instance index within the parent (dealer id, round, slot …).
    pub index: u64,
}

impl SessionTag {
    /// Creates a tag.
    pub fn new(kind: &'static str, index: u64) -> Self {
        SessionTag { kind, index }
    }
}

impl fmt::Display for SessionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// The canonical empty path (the root session).
const ROOT_PATH: &[SessionTag] = &[];

/// The global hash-consing table: every distinct path is leaked exactly
/// once and all `SessionId`s for that path alias the same storage.
///
/// Memory grows with the number of *distinct* sessions ever created (a
/// few per protocol instance), never with message volume.
fn interner() -> &'static RwLock<HashSet<&'static [SessionTag]>> {
    static INTERNER: OnceLock<RwLock<HashSet<&'static [SessionTag]>>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let mut set = HashSet::new();
        set.insert(ROOT_PATH);
        RwLock::new(set)
    })
}

/// Returns the canonical interned copy of `path`.
fn intern(path: &[SessionTag]) -> &'static [SessionTag] {
    if let Some(&hit) = interner().read().expect("interner poisoned").get(path) {
        return hit;
    }
    let mut table = interner().write().expect("interner poisoned");
    // Double-check: another thread may have interned `path` between the
    // read unlock and the write lock.
    if let Some(&hit) = table.get(path) {
        return hit;
    }
    let canonical: &'static [SessionTag] = Box::leak(path.to_vec().into_boxed_slice());
    table.insert(canonical);
    canonical
}

/// A hierarchical session identifier: the path of [`SessionTag`]s from the
/// root protocol down to a sub-protocol instance.
///
/// Hierarchy is what lets protocols *compose*: an instance spawns children
/// under child session ids, and a child's output is routed back to it. All
/// parties construct identical session ids for the same logical instance,
/// so messages route without global coordination.
///
/// Session ids are hash-consed (see the module docs): `clone` is a pointer
/// copy, and `==`/`Hash` compare the canonical pointer — one word — rather
/// than the tag path. Lexicographic path order is preserved by
/// [`Ord`]/[`PartialOrd`].
///
/// ```
/// use aft_sim::{SessionId, SessionTag};
/// let coin = SessionId::root().child(SessionTag::new("coin", 0));
/// let svss = coin.child(SessionTag::new("svss", 7));
/// assert_eq!(svss.parent(), Some(coin.clone()));
/// assert!(svss.starts_with(&coin));
/// assert_eq!(svss.last(), Some(&SessionTag::new("svss", 7)));
/// ```
#[derive(Clone)]
pub struct SessionId(&'static [SessionTag]);

impl SessionId {
    /// The empty (root) session.
    pub fn root() -> Self {
        SessionId(ROOT_PATH)
    }

    /// Builds a session id from a tag path.
    pub fn from_path(path: Vec<SessionTag>) -> Self {
        if path.is_empty() {
            return SessionId::root();
        }
        SessionId(intern(&path))
    }

    /// Returns a child session extended with `tag`.
    #[must_use]
    pub fn child(&self, tag: SessionTag) -> SessionId {
        let mut path = Vec::with_capacity(self.0.len() + 1);
        path.extend_from_slice(self.0);
        path.push(tag);
        SessionId(intern(&path))
    }

    /// The parent session, or `None` at the root.
    pub fn parent(&self) -> Option<SessionId> {
        match self.0.len() {
            0 => None,
            1 => Some(SessionId::root()),
            n => Some(SessionId(intern(&self.0[..n - 1]))),
        }
    }

    /// The final tag on the path, or `None` at the root.
    pub fn last(&self) -> Option<&SessionTag> {
        self.0.last()
    }

    /// The tag path.
    pub fn path(&self) -> &[SessionTag] {
        self.0
    }

    /// Path length (root = 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Whether `self` is `prefix` or a descendant of it.
    pub fn starts_with(&self, prefix: &SessionId) -> bool {
        std::ptr::eq(self.0, prefix.0)
            || (self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..])
    }
}

impl Default for SessionId {
    fn default() -> Self {
        SessionId::root()
    }
}

impl PartialEq for SessionId {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes the canonical slice unique per path, so
        // pointer identity IS path equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for SessionId {}

impl Hash for SessionId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
        self.0.len().hash(state);
    }
}

impl PartialOrd for SessionId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SessionId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic path order, matching the pre-interner semantics.
        self.0.cmp(other.0)
    }
}

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SessionId").field(&self.0).finish()
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "/");
        }
        for tag in self.0 {
            write!(f, "/{tag}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_roundtrip() {
        let root = SessionId::root();
        let a = root.child(SessionTag::new("a", 1));
        let b = a.child(SessionTag::new("b", 2));
        assert_eq!(b.parent(), Some(a.clone()));
        assert_eq!(a.parent(), Some(root.clone()));
        assert_eq!(root.parent(), None);
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn starts_with_semantics() {
        let a = SessionId::root().child(SessionTag::new("a", 1));
        let b = a.child(SessionTag::new("b", 2));
        assert!(b.starts_with(&a));
        assert!(b.starts_with(&b));
        assert!(b.starts_with(&SessionId::root()));
        assert!(!a.starts_with(&b));
        let other = SessionId::root().child(SessionTag::new("a", 2));
        assert!(!b.starts_with(&other));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SessionId::root().to_string(), "/");
        let s = SessionId::root()
            .child(SessionTag::new("coin", 0))
            .child(SessionTag::new("svss", 3));
        assert_eq!(s.to_string(), "/coin[0]/svss[3]");
        assert_eq!(PartyId(4).to_string(), "P4");
    }

    #[test]
    fn equality_and_hashing_distinguish_indices() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SessionId::root().child(SessionTag::new("x", 0)));
        set.insert(SessionId::root().child(SessionTag::new("x", 1)));
        set.insert(SessionId::root().child(SessionTag::new("y", 0)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn interning_canonicalizes_equal_paths() {
        // Two independently-built ids for the same logical path must alias
        // the same canonical storage (pointer-equal, not just path-equal).
        let a = SessionId::root()
            .child(SessionTag::new("i", 4))
            .child(SessionTag::new("j", 5));
        let b = SessionId::from_path(vec![SessionTag::new("i", 4), SessionTag::new("j", 5)]);
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.path(), b.path()));
        // Clones alias too: no per-clone allocation.
        let c = a.clone();
        assert!(std::ptr::eq(a.path(), c.path()));
        // Roots are canonical as well.
        assert_eq!(SessionId::from_path(Vec::new()), SessionId::root());
        assert_eq!(SessionId::default(), SessionId::root());
    }

    #[test]
    fn ordering_is_lexicographic_by_path() {
        let a0 = SessionId::root().child(SessionTag::new("a", 0));
        let a1 = SessionId::root().child(SessionTag::new("a", 1));
        let a0b = a0.child(SessionTag::new("b", 0));
        assert!(SessionId::root() < a0);
        assert!(a0 < a0b, "prefix sorts before extension");
        assert!(a0b < a1, "index 0 subtree sorts before index 1");
    }

    #[test]
    fn interner_is_thread_safe() {
        let ids: Vec<SessionId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        SessionId::root()
                            .child(SessionTag::new("race", 7))
                            .child(SessionTag::new("deep", 9))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in ids.windows(2) {
            assert_eq!(pair[0], pair[1]);
            assert!(std::ptr::eq(pair[0].path(), pair[1].path()));
        }
    }
}
