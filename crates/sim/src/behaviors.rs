//! Generic Byzantine behaviours, usable against any protocol.
//!
//! Protocol-specific attacks (wrong shares, equivocating dealers, …) live
//! next to the protocols they attack; the behaviours here are
//! protocol-agnostic: silence, delayed crash, and garbage injection.

use crate::ids::PartyId;
use crate::instance::{Context, Instance};
use crate::payload::Payload;
use crate::wire::WireMessage;
use rand::Rng;

/// A party that never sends anything — the paper's recurring
/// "faulty and silent" adversary (e.g. party C in the Section 2 attacks).
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentInstance;

impl Instance for SilentInstance {
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}
    fn on_message(&mut self, _from: PartyId, _payload: &Payload, _ctx: &mut Context<'_>) {}
}

/// Runs the honest `inner` instance but goes permanently silent after
/// `after` events (start + messages + child outputs combined) — a
/// mid-protocol crash confined to one session.
///
/// For whole-party crashes use [`SimNetwork::crash`] /
/// [`SimNetwork::crash_at`] instead.
///
/// [`SimNetwork::crash`]: crate::SimNetwork::crash
/// [`SimNetwork::crash_at`]: crate::SimNetwork::crash_at
pub struct MuteAfter {
    inner: Box<dyn Instance>,
    after: u64,
    seen: u64,
}

impl MuteAfter {
    /// Wraps `inner`, muting it after `after` events.
    pub fn new(inner: Box<dyn Instance>, after: u64) -> Self {
        MuteAfter {
            inner,
            after,
            seen: 0,
        }
    }

    fn alive(&mut self) -> bool {
        self.seen += 1;
        self.seen <= self.after
    }
}

impl Instance for MuteAfter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.alive() {
            self.inner.on_start(ctx);
        }
    }
    fn on_message(&mut self, from: PartyId, payload: &Payload, ctx: &mut Context<'_>) {
        if self.alive() {
            self.inner.on_message(from, payload, ctx);
        }
    }
    fn on_child_output(
        &mut self,
        child: &crate::SessionTag,
        output: &Payload,
        ctx: &mut Context<'_>,
    ) {
        if self.alive() {
            self.inner.on_child_output(child, output, ctx);
        }
    }
}

/// Junk payload type emitted by [`GarbageInstance`] and [`Equivocator`];
/// honest instances fail to view it and ignore it, exercising
/// type-confusion paths.
///
/// On the wire-serialized backend the junk becomes *bytes*: `Garbage`'s
/// [`raw_frame`](WireMessage::raw_frame) derives a deliberately malformed
/// frame from the junk value — pure noise, truncated bodies, kind-spoofed
/// headers, or oversized declared lengths — so byte-level adversaries are
/// exercised by the exact same scenarios that exercise in-memory type
/// confusion. Honest decoders must reject every variant without
/// panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Garbage(pub u64);

/// SplitMix64 step for deriving junk bytes deterministically.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WireMessage for Garbage {
    const KIND: u16 = crate::wire::KIND_BEHAVIOR_BASE;
    const KIND_NAME: &'static str = "garbage";

    fn encode_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }

    fn decode_body(bytes: &[u8]) -> Option<Self> {
        Some(Garbage(u64::from_le_bytes(bytes.try_into().ok()?)))
    }

    fn raw_frame(&self) -> Option<Vec<u8>> {
        let x = self.0;
        let mut frame = Vec::new();
        match x % 4 {
            // Pure noise: usually not even a parseable header.
            0 => {
                let len = (mix(x) % 19) as usize;
                for i in 0..len {
                    frame.push((mix(x ^ i as u64) & 0xFF) as u8);
                }
            }
            // Truncated: honest-looking header, body shorter than the
            // declared length.
            1 => {
                frame.extend_from_slice(&Self::KIND.to_le_bytes());
                frame.extend_from_slice(&8u32.to_le_bytes());
                frame.extend_from_slice(&mix(x).to_le_bytes()[..3]);
            }
            // Kind-spoofed: a consistent frame claiming a (likely
            // registered) kind with a junk body of junk length — the
            // receiving decoder, not the framing layer, must reject it.
            2 => {
                let kind = (mix(x) % 0x90) as u16;
                let len = (mix(x ^ 0xF00D) % 13) as usize;
                frame.extend_from_slice(&kind.to_le_bytes());
                frame.extend_from_slice(&(len as u32).to_le_bytes());
                for i in 0..len {
                    frame.push((mix(x ^ (i as u64) << 8) & 0xFF) as u8);
                }
            }
            // Oversized declared length with a tiny actual body —
            // length-prefix sanity must hold even when the prefix lies.
            _ => {
                frame.extend_from_slice(&Self::KIND.to_le_bytes());
                frame.extend_from_slice(&u32::MAX.to_le_bytes());
                frame.extend_from_slice(&[0xAB, 0xCD]);
            }
        }
        Some(frame)
    }
}

/// A party that responds to every event by spraying meaningless payloads at
/// random parties — stress for routing, buffering and downcast handling.
#[derive(Debug, Default, Clone, Copy)]
pub struct GarbageInstance {
    sent: u64,
    /// Cap on total garbage messages (keeps runs quiescent).
    budget: u64,
}

impl GarbageInstance {
    /// Creates a garbage sprayer with a total message budget.
    pub fn new(budget: u64) -> Self {
        GarbageInstance { sent: 0, budget }
    }

    fn spray(&mut self, ctx: &mut Context<'_>) {
        if self.sent >= self.budget {
            return;
        }
        self.sent += 1;
        let n = ctx.n();
        let to = PartyId(ctx.rng().gen_range(0..n));
        let junk = Garbage(ctx.rng().gen());
        ctx.send(to, junk);
    }
}

impl Instance for GarbageInstance {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.spray(ctx);
    }
    fn on_message(&mut self, _from: PartyId, _payload: &Payload, ctx: &mut Context<'_>) {
        self.spray(ctx);
    }
}

/// A party that *equivocates*: on every event (up to a budget) it sends a
/// different [`Garbage`] value to every party, so no two receivers share a
/// view of what it said. The protocol-agnostic skeleton of every
/// split-the-honest-parties attack; honest instances fail the downcast
/// and ignore it, but routing, buffering and per-receiver state all see
/// genuinely conflicting traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct Equivocator {
    events: u64,
    /// Cap on equivocation events (keeps runs quiescent).
    budget: u64,
}

impl Equivocator {
    /// Creates an equivocator active for `budget` events.
    pub fn new(budget: u64) -> Self {
        Equivocator { events: 0, budget }
    }

    fn equivocate(&mut self, ctx: &mut Context<'_>) {
        if self.events >= self.budget {
            return;
        }
        self.events += 1;
        let base: u64 = ctx.rng().gen();
        for p in ctx.parties().collect::<Vec<_>>() {
            // Each receiver gets a distinct value derived from one draw.
            ctx.send(p, Garbage(base ^ (p.0 as u64).wrapping_mul(0x9E37)));
        }
    }
}

impl Instance for Equivocator {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.equivocate(ctx);
    }
    fn on_message(&mut self, _from: PartyId, _payload: &Payload, ctx: &mut Context<'_>) {
        self.equivocate(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::network::SimNetwork;
    use crate::runtime::{NetConfig, StopReason};
    use crate::scheduler::RandomScheduler;

    fn sid() -> SessionId {
        SessionId::root().child(SessionTag::new("b", 0))
    }

    /// Counts pings; outputs after 3.
    struct Pinger {
        heard: usize,
    }
    impl Instance for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send_all(1u8);
        }
        fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
            if p.to_msg::<u8>().is_some() {
                self.heard += 1;
                if self.heard == 3 {
                    ctx.output(self.heard);
                }
            }
        }
    }

    #[test]
    fn silent_party_does_not_block_others() {
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 5), Box::new(RandomScheduler));
        for p in 0..3 {
            net.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        net.spawn(PartyId(3), sid(), Box::new(SilentInstance));
        let r = net.run(100_000);
        assert_eq!(r.stop, StopReason::Quiescent);
        for p in 0..3 {
            assert_eq!(net.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
        assert!(net.output(PartyId(3), &sid()).is_none());
    }

    #[test]
    fn garbage_is_ignored_by_honest_parties() {
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 5), Box::new(RandomScheduler));
        for p in 0..3 {
            net.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        net.spawn(PartyId(3), sid(), Box::new(GarbageInstance::new(50)));
        let r = net.run(100_000);
        assert_eq!(r.stop, StopReason::Quiescent);
        for p in 0..3 {
            assert_eq!(net.output_as::<usize>(PartyId(p), &sid()), Some(&3));
        }
    }

    #[test]
    fn mute_after_silences_inner() {
        // MuteAfter(0) behaves like SilentInstance.
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 5), Box::new(RandomScheduler));
        for p in 0..3 {
            net.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        net.spawn(
            PartyId(3),
            sid(),
            Box::new(MuteAfter::new(Box::new(Pinger { heard: 0 }), 0)),
        );
        net.run(100_000);
        assert!(net.output(PartyId(3), &sid()).is_none());

        // MuteAfter(large) behaves honestly.
        let mut net2 = SimNetwork::new(NetConfig::new(4, 1, 5), Box::new(RandomScheduler));
        for p in 0..3 {
            net2.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
        }
        net2.spawn(
            PartyId(3),
            sid(),
            Box::new(MuteAfter::new(Box::new(Pinger { heard: 0 }), 1_000)),
        );
        net2.run(100_000);
        assert_eq!(net2.output_as::<usize>(PartyId(3), &sid()), Some(&3));
    }

    // Cross-backend conformance of the generic behaviours: the same
    // deployment must quiesce and preserve honest outputs on the
    // deterministic simulator, the sharded simulator, and the OS-thread
    // runtime alike.

    const BACKENDS: &[&str] = &["sim", "sharded:2", "threaded", "wire"];

    fn on_every_backend(seed: u64, byzantine: impl Fn() -> Box<dyn Instance>) {
        use crate::runtime::{runtime_by_name, RuntimeExt};
        for backend in BACKENDS {
            let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, seed)).unwrap();
            for p in 0..3 {
                rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
            }
            rt.spawn(PartyId(3), sid(), byzantine());
            let r = rt.run(1_000_000);
            assert_eq!(r.stop, StopReason::Quiescent, "backend {backend}");
            let m = rt.metrics();
            assert_eq!(
                m.sent,
                m.delivered + m.dropped_shunned + m.dropped_crashed,
                "backend {backend}: conservation at quiescence"
            );
            for p in 0..3 {
                assert_eq!(
                    rt.output_as::<usize>(PartyId(p), &sid()),
                    Some(&3),
                    "backend {backend} party {p}: honest output survives the behaviour"
                );
            }
        }
    }

    #[test]
    fn mute_after_quiesces_on_every_backend() {
        // Mute after 2 events: the wrapped pinger broadcasts on start and
        // then dies mid-protocol on every backend.
        on_every_backend(41, || {
            Box::new(MuteAfter::new(Box::new(Pinger { heard: 0 }), 2))
        });
    }

    #[test]
    fn garbage_injection_quiesces_on_every_backend() {
        on_every_backend(43, || Box::new(GarbageInstance::new(64)));
    }

    #[test]
    fn equivocator_quiesces_on_every_backend() {
        on_every_backend(47, || Box::new(Equivocator::new(12)));
    }

    #[test]
    fn garbage_deliveries_are_observable_as_decode_misses() {
        // Satellite invariant: a type-confused delivery is not silently
        // dropped — it increments the per-kind miss counter. On the wire
        // backend the junk arrives as malformed/spoofed bytes, so the
        // misses land under the wire diagnostic kinds instead.
        use crate::runtime::{runtime_by_name, RuntimeExt};
        for backend in ["sim", "sharded:2", "wire"] {
            let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, 43)).unwrap();
            for p in 0..3 {
                rt.spawn(PartyId(p), sid(), Box::new(Pinger { heard: 0 }));
            }
            rt.spawn(PartyId(3), sid(), Box::new(GarbageInstance::new(16)));
            rt.run_to_quiescence();
            let m = rt.metrics();
            let misses: u64 = m.decode_misses().map(|(_, c)| c).sum();
            assert!(misses > 0, "backend {backend}: no miss recorded: {m:?}");
            if backend == "wire" {
                assert!(
                    m.decode_miss_by_kind("wire:malformed")
                        + m.decode_miss_by_kind("wire:unknown")
                        + m.decode_miss_by_kind("garbage")
                        > 0,
                    "wire misses must carry wire kind names: {:?}",
                    m.decode_misses().collect::<Vec<_>>()
                );
                assert!(m.wire_malformed > 0, "byte-level junk must be seen");
            } else {
                assert!(
                    m.decode_miss_by_kind("garbage") > 0,
                    "sim misses carry the junk type's kind name"
                );
            }
        }
    }

    #[test]
    fn equivocator_sends_conflicting_values() {
        // Two receivers record what the equivocator told them; the values
        // must differ (that is the point of equivocation).
        struct Recorder {
            seen: Option<u64>,
        }
        impl Instance for Recorder {
            fn on_start(&mut self, _ctx: &mut Context<'_>) {}
            fn on_message(&mut self, _f: PartyId, p: &Payload, ctx: &mut Context<'_>) {
                if let Some(g) = p.to_msg::<Garbage>() {
                    if self.seen.is_none() {
                        self.seen = Some(g.0);
                        ctx.output(g.0);
                    }
                }
            }
        }
        let mut net = SimNetwork::new(NetConfig::new(4, 1, 5), Box::new(RandomScheduler));
        for p in 0..3 {
            net.spawn(PartyId(p), sid(), Box::new(Recorder { seen: None }));
        }
        net.spawn(PartyId(3), sid(), Box::new(Equivocator::new(1)));
        let r = net.run(100_000);
        assert_eq!(r.stop, StopReason::Quiescent);
        let views: Vec<u64> = (0..3)
            .map(|p| *net.output_as::<u64>(PartyId(p), &sid()).unwrap())
            .collect();
        assert!(
            views.windows(2).any(|w| w[0] != w[1]),
            "receivers must disagree about the equivocator's value: {views:?}"
        );
    }
}
