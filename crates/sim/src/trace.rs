//! Flight recorder: a schedule-invisible structured trace subsystem.
//!
//! Every backend can record a stream of [`TraceEvent`]s — sends,
//! deliveries, drops, crashes, shuns, outputs, decode misses and
//! scheduler picks — into a pluggable [`TraceSink`]. Tracing is off by
//! default and is **observational only**: sinks are consulted behind a
//! single `Option` check on the delivery path, never touch RNGs,
//! fingerprints or schedules, and a traced run is bit-for-bit identical
//! to an untraced one (the conformance suite pins this).
//!
//! # The causal message DAG
//!
//! Each [`TraceEvent::Send`] carries a `causal_parent`: the step counter
//! of the delivery whose handler emitted the send (`None` for sends made
//! from the spawn phase — the roots of the DAG). A delivery's parent is
//! therefore recovered by joining its `seq` against the matching `Send`
//! and looking up the delivery `(send.from, send.causal_parent)`. Step
//! counters are global on `sim`/`wire` and per-party on `sharded:<k>` and
//! `threaded`; in both regimes `(party, step)` uniquely names a delivery,
//! so the same join works on every backend. [`depth_histograms`] folds
//! this DAG into per-kind critical-path depth ("virtual latency" in
//! delivery steps, the paper-relevant unit: the adversary controls
//! scheduling, so wall-clock time is meaningless but delivery depth is
//! not).
//!
//! # Exporters
//!
//! [`to_jsonl`] renders one JSON object per line for ad-hoc analysis;
//! [`to_chrome_trace`] renders the Chrome trace-event format (load in
//! Perfetto via <https://ui.perfetto.dev>) with one process per party and
//! one thread lane per session path.

use crate::ids::{PartyId, SessionId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Why a queued envelope was dropped instead of delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The receiver had shunned the sender (Definition 3.2 discard rule).
    Shunned,
    /// The receiver was crashed.
    Crashed,
}

impl DropReason {
    /// Short label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::Shunned => "shunned",
            DropReason::Crashed => "crashed",
        }
    }
}

/// One structured flight-recorder event.
///
/// `step` is the value of the recording backend's delivery-step counter
/// when the event fired: global on `sim`/`wire`, per-party on
/// `sharded:<k>` and `threaded`. `(party, step)` uniquely names a
/// delivery in both regimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A `run(..)` episode began.
    EpisodeStart {
        /// Step counter at episode entry.
        step: u64,
    },
    /// A `run(..)` episode ended (quiescent or budget-limited).
    EpisodeEnd {
        /// Step counter at episode exit.
        step: u64,
    },
    /// A handler (or the spawn phase) emitted a message.
    Send {
        /// Sender's step counter at emission time.
        step: u64,
        /// Emitting party.
        from: PartyId,
        /// Destination party.
        to: PartyId,
        /// Session the message belongs to.
        session: SessionId,
        /// Backend-assigned envelope sequence number (joins with
        /// [`TraceEvent::Deliver`]).
        seq: u64,
        /// Step of the delivery whose handler emitted this send;
        /// `None` for spawn-phase roots.
        causal_parent: Option<u64>,
    },
    /// An envelope was delivered to its destination's handler.
    Deliver {
        /// The delivery's own step number.
        step: u64,
        /// Receiving party.
        party: PartyId,
        /// Originating party.
        from: PartyId,
        /// Session the message belongs to.
        session: SessionId,
        /// Envelope sequence number (joins with [`TraceEvent::Send`]).
        seq: u64,
        /// Virtual arrival time in virtual milliseconds, when the run's
        /// scheduler keeps a virtual clock (the `net:` family).
        vtime: Option<u64>,
    },
    /// An envelope was consumed without reaching a handler.
    Drop {
        /// The step that consumed the envelope.
        step: u64,
        /// Would-be receiving party.
        party: PartyId,
        /// Originating party.
        from: PartyId,
        /// Session the message belonged to.
        session: SessionId,
        /// Envelope sequence number.
        seq: u64,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A party crashed (operator-driven or scripted `crash-at`).
    Crash {
        /// Step counter when the crash took effect.
        step: u64,
        /// The crashed party.
        party: PartyId,
    },
    /// A delivery caused the receiver to shun one or more parties.
    Shun {
        /// The delivery's step number.
        step: u64,
        /// The shunning party.
        party: PartyId,
        /// Session of the triggering delivery.
        session: SessionId,
        /// How many new shun edges this delivery recorded.
        count: u64,
    },
    /// A delivery caused one or more session outputs to be recorded.
    Output {
        /// The delivery's step number (0 for spawn-phase outputs).
        step: u64,
        /// The outputting party.
        party: PartyId,
        /// Session of the triggering delivery (outputs may land on child
        /// sessions of this one).
        session: SessionId,
        /// How many outputs this delivery recorded.
        count: u64,
    },
    /// A delivery's typed-payload downcast missed (see
    /// [`Metrics::decode_misses`](crate::Metrics::decode_misses)).
    DecodeMiss {
        /// The delivery's step number.
        step: u64,
        /// The receiving party.
        party: PartyId,
        /// Session of the triggering delivery.
        session: SessionId,
        /// How many misses the delivery produced.
        count: u64,
    },
    /// The scheduler chose the next delivery batch.
    SchedulerPick {
        /// Step counter before the picked batch runs.
        step: u64,
        /// Destination party of the picked batch.
        party: PartyId,
        /// Queued batches at pick time.
        queued: usize,
        /// Length of the picked same-`(from, to)` run.
        run: usize,
    },
    /// A network partition went up (the `net:` virtual-time model).
    PartitionStart {
        /// Step counter when the clock crossed the cut time.
        step: u64,
        /// Virtual time of the cut.
        vtime: u64,
        /// The isolated parties (sorted).
        cut: Vec<PartyId>,
    },
    /// A network partition healed.
    PartitionHeal {
        /// Step counter when the clock crossed the heal time.
        step: u64,
        /// Virtual time of the heal.
        vtime: u64,
    },
    /// A crashed party recovered (crash-recovery under the `net:` model):
    /// it resumes processing and its stale session state is retired ahead
    /// of the respawn.
    Recover {
        /// Step counter when the recovery took effect.
        step: u64,
        /// Virtual time the recovery was scheduled for.
        vtime: u64,
        /// The recovering party.
        party: PartyId,
    },
}

impl TraceEvent {
    /// The event's step counter value.
    pub fn step(&self) -> u64 {
        match self {
            TraceEvent::EpisodeStart { step }
            | TraceEvent::EpisodeEnd { step }
            | TraceEvent::Send { step, .. }
            | TraceEvent::Deliver { step, .. }
            | TraceEvent::Drop { step, .. }
            | TraceEvent::Crash { step, .. }
            | TraceEvent::Shun { step, .. }
            | TraceEvent::Output { step, .. }
            | TraceEvent::DecodeMiss { step, .. }
            | TraceEvent::SchedulerPick { step, .. }
            | TraceEvent::PartitionStart { step, .. }
            | TraceEvent::PartitionHeal { step, .. }
            | TraceEvent::Recover { step, .. } => *step,
        }
    }

    /// The event's virtual timestamp, if it carries one.
    pub fn vtime(&self) -> Option<u64> {
        match self {
            TraceEvent::Deliver { vtime, .. } => *vtime,
            TraceEvent::PartitionStart { vtime, .. }
            | TraceEvent::PartitionHeal { vtime, .. }
            | TraceEvent::Recover { vtime, .. } => Some(*vtime),
            _ => None,
        }
    }

    /// Short event-kind label (`"send"`, `"deliver"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::EpisodeStart { .. } => "episode-start",
            TraceEvent::EpisodeEnd { .. } => "episode-end",
            TraceEvent::Send { .. } => "send",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::Shun { .. } => "shun",
            TraceEvent::Output { .. } => "output",
            TraceEvent::DecodeMiss { .. } => "decode-miss",
            TraceEvent::SchedulerPick { .. } => "scheduler-pick",
            TraceEvent::PartitionStart { .. } => "partition-start",
            TraceEvent::PartitionHeal { .. } => "partition-heal",
            TraceEvent::Recover { .. } => "recover",
        }
    }

    /// The session the event concerns, if any.
    pub fn session(&self) -> Option<&SessionId> {
        match self {
            TraceEvent::Send { session, .. }
            | TraceEvent::Deliver { session, .. }
            | TraceEvent::Drop { session, .. }
            | TraceEvent::Shun { session, .. }
            | TraceEvent::Output { session, .. }
            | TraceEvent::DecodeMiss { session, .. } => Some(session),
            _ => None,
        }
    }
}

/// Leaf protocol kind of a session (`"root"` for the root session),
/// the key the per-kind histograms bucket by.
pub fn session_kind(session: &SessionId) -> &'static str {
    session.last().map_or("root", |t| t.kind)
}

/// A destination for trace events.
///
/// Sinks must be cheap to call (they sit behind one `Option` check on the
/// delivery path) and must not observe anything but the events handed to
/// them — a sink that, say, consulted a RNG would break the trace-on ≡
/// trace-off bit-for-bit guarantee.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
    /// The retained events, oldest first.
    fn snapshot(&self) -> Vec<TraceEvent>;
    /// Total events ever recorded (including any no longer retained).
    fn recorded(&self) -> u64;
}

/// Plain buffers work as sinks (the sharded backend records into
/// per-party `Vec`s and flattens them at merge barriers).
impl TraceSink for Vec<TraceEvent> {
    fn record(&mut self, event: TraceEvent) {
        self.push(event);
    }
    fn snapshot(&self) -> Vec<TraceEvent> {
        self.clone()
    }
    fn recorded(&self) -> u64 {
        self.len() as u64
    }
}

/// Bounded last-K recorder: keeps the most recent `capacity` events,
/// overwriting the oldest. This is the forensics sink — cheap enough to
/// leave on for long runs, and its tail is exactly what a violation
/// repro bundle wants.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    buf: Vec<TraceEvent>,
    head: usize,
    total: u64,
}

impl RingRecorder {
    /// Creates a recorder retaining the last `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            capacity,
            buf: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    /// How many events were overwritten by wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn recorded(&self) -> u64 {
        self.total
    }
}

/// Unbounded recorder: keeps every event. Use for exports and the causal
/// DAG; prefer [`RingRecorder`] for always-on forensics.
#[derive(Debug, Clone, Default)]
pub struct FullRecorder {
    events: Vec<TraceEvent>,
}

impl FullRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FullRecorder::default()
    }
}

impl TraceSink for FullRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
    fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.clone()
    }
    fn recorded(&self) -> u64 {
        self.events.len() as u64
    }
}

/// How a backend should trace, set via
/// [`Runtime::set_trace`](crate::Runtime::set_trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing (the default): the delivery path pays one predictable
    /// `Option` check.
    #[default]
    Off,
    /// Bounded last-K ring buffer ([`RingRecorder`]).
    Ring(usize),
    /// Unbounded recorder ([`FullRecorder`]).
    Full,
}

impl TraceMode {
    /// Builds the sink this mode describes (`None` for [`TraceMode::Off`]).
    pub fn build(self) -> Option<Box<dyn TraceSink>> {
        match self {
            TraceMode::Off => None,
            TraceMode::Ring(k) => Some(Box::new(RingRecorder::new(k))),
            TraceMode::Full => Some(Box::new(FullRecorder::new())),
        }
    }
}

/// Log-bucketed histogram of causal delivery depths: bucket `i` counts
/// depths in `[2^i − 1, 2^(i+1) − 2]` (so bucket 0 is exactly depth 0,
/// the roots).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthHistogram {
    /// Per-bucket counts (grown on demand).
    pub buckets: Vec<u64>,
    /// Total deliveries recorded.
    pub count: u64,
    /// Sum of all depths (for the mean).
    pub sum: u64,
    /// Largest depth seen — the critical-path length for this kind.
    pub max: u64,
}

impl DepthHistogram {
    /// Bucket index for `depth`.
    pub fn bucket_of(depth: u64) -> usize {
        (depth + 1).ilog2() as usize
    }

    /// Inclusive `(lo, hi)` depth range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        ((1u64 << i) - 1, (1u64 << (i + 1)) - 2)
    }

    /// Records one delivery at `depth`.
    pub fn record(&mut self, depth: u64) {
        let b = Self::bucket_of(depth);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += depth;
        self.max = self.max.max(depth);
    }

    /// Mean depth (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Folds the causal DAG in `events` into per-kind depth histograms,
/// sorted by kind.
///
/// A delivery's depth is `0` if its envelope was sent from the spawn
/// phase (`Send.causal_parent == None`, or the send was not retained by
/// the sink), else `1 +` the depth of the delivery `(send.from,
/// send.causal_parent)`.
pub fn depth_histograms(events: &[TraceEvent]) -> Vec<(&'static str, DepthHistogram)> {
    let mut send_parent: HashMap<u64, (PartyId, u64)> = HashMap::new();
    let mut depths: HashMap<(PartyId, u64), u64> = HashMap::new();
    let mut by_kind: BTreeMap<&'static str, DepthHistogram> = BTreeMap::new();
    for ev in events {
        match ev {
            TraceEvent::Send {
                seq,
                from,
                causal_parent: Some(cp),
                ..
            } => {
                send_parent.insert(*seq, (*from, *cp));
            }
            TraceEvent::Deliver {
                step,
                party,
                session,
                seq,
                ..
            } => {
                let depth = send_parent
                    .get(seq)
                    .and_then(|key| depths.get(key))
                    .map_or(0, |d| d + 1);
                depths.insert((*party, *step), depth);
                by_kind
                    .entry(session_kind(session))
                    .or_default()
                    .record(depth);
            }
            _ => {}
        }
    }
    by_kind.into_iter().collect()
}

/// Digest of a recorded trace, folded into
/// [`RunReport::trace`](crate::RunReport::trace) when tracing is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events recorded (including any overwritten by a ring).
    pub recorded: u64,
    /// Events still retained by the sink.
    pub retained: usize,
    /// Per-kind causal delivery-depth histograms.
    pub depths: Vec<(&'static str, DepthHistogram)>,
}

/// Computes a [`TraceSummary`] from a sink's current contents.
pub fn summarize(sink: &dyn TraceSink) -> TraceSummary {
    let events = sink.snapshot();
    TraceSummary {
        recorded: sink.recorded(),
        retained: events.len(),
        depths: depth_histograms(&events),
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events recorded, {} retained",
            self.recorded, self.retained
        )?;
        for (kind, h) in &self.depths {
            write!(
                f,
                "  depth[{kind}]: n={} mean={:.2} max={} buckets=[",
                h.count,
                h.mean(),
                h.max
            )?;
            for (i, c) in h.buckets.iter().enumerate() {
                let (lo, hi) = DepthHistogram::bucket_bounds(i);
                if i > 0 {
                    write!(f, " ")?;
                }
                if lo == hi {
                    write!(f, "{lo}:{c}")?;
                } else {
                    write!(f, "{lo}-{hi}:{c}")?;
                }
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_common(out: &mut String, ev: &str, step: u64) {
    out.push_str("{\"ev\":");
    push_json_str(out, ev);
    out.push_str(&format!(",\"step\":{step}"));
}

fn push_session(out: &mut String, session: &SessionId) {
    out.push_str(",\"session\":");
    push_json_str(out, &session.to_string());
    out.push_str(",\"kind\":");
    push_json_str(out, session_kind(session));
}

/// Renders one event as a single-line JSON object.
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    match ev {
        TraceEvent::EpisodeStart { step } | TraceEvent::EpisodeEnd { step } => {
            push_common(&mut out, ev.label(), *step);
        }
        TraceEvent::Send {
            step,
            from,
            to,
            session,
            seq,
            causal_parent,
        } => {
            push_common(&mut out, "send", *step);
            out.push_str(&format!(",\"from\":{},\"to\":{}", from.0, to.0));
            push_session(&mut out, session);
            out.push_str(&format!(",\"seq\":{seq}"));
            match causal_parent {
                Some(cp) => out.push_str(&format!(",\"causal_parent\":{cp}")),
                None => out.push_str(",\"causal_parent\":null"),
            }
        }
        TraceEvent::Deliver {
            step,
            party,
            from,
            session,
            seq,
            vtime,
        } => {
            push_common(&mut out, "deliver", *step);
            out.push_str(&format!(",\"party\":{},\"from\":{}", party.0, from.0));
            push_session(&mut out, session);
            out.push_str(&format!(",\"seq\":{seq}"));
            if let Some(vt) = vtime {
                out.push_str(&format!(",\"vtime\":{vt}"));
            }
        }
        TraceEvent::Drop {
            step,
            party,
            from,
            session,
            seq,
            reason,
        } => {
            push_common(&mut out, "drop", *step);
            out.push_str(&format!(",\"party\":{},\"from\":{}", party.0, from.0));
            push_session(&mut out, session);
            out.push_str(&format!(",\"seq\":{seq},\"reason\":"));
            push_json_str(&mut out, reason.label());
        }
        TraceEvent::Crash { step, party } => {
            push_common(&mut out, "crash", *step);
            out.push_str(&format!(",\"party\":{}", party.0));
        }
        TraceEvent::Shun {
            step,
            party,
            session,
            count,
        }
        | TraceEvent::Output {
            step,
            party,
            session,
            count,
        }
        | TraceEvent::DecodeMiss {
            step,
            party,
            session,
            count,
        } => {
            push_common(&mut out, ev.label(), *step);
            out.push_str(&format!(",\"party\":{}", party.0));
            push_session(&mut out, session);
            out.push_str(&format!(",\"count\":{count}"));
        }
        TraceEvent::SchedulerPick {
            step,
            party,
            queued,
            run,
        } => {
            push_common(&mut out, "scheduler-pick", *step);
            out.push_str(&format!(
                ",\"party\":{},\"queued\":{queued},\"run\":{run}",
                party.0
            ));
        }
        TraceEvent::PartitionStart { step, vtime, cut } => {
            push_common(&mut out, "partition-start", *step);
            let ids: Vec<String> = cut.iter().map(|p| p.0.to_string()).collect();
            out.push_str(&format!(",\"vtime\":{vtime},\"cut\":[{}]", ids.join(",")));
        }
        TraceEvent::PartitionHeal { step, vtime } => {
            push_common(&mut out, "partition-heal", *step);
            out.push_str(&format!(",\"vtime\":{vtime}"));
        }
        TraceEvent::Recover { step, vtime, party } => {
            push_common(&mut out, "recover", *step);
            out.push_str(&format!(",\"vtime\":{vtime},\"party\":{}", party.0));
        }
    }
    out.push('}');
    out
}

/// Renders events as JSON Lines (one object per line, oldest first).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Process id used for scheduler / episode control events in the Chrome
/// trace export (parties use their own ids as pids).
const CTL_PID: usize = 1_000_000;

/// Renders events in the Chrome trace-event format (open in Perfetto:
/// <https://ui.perfetto.dev>). One process per party, one thread lane per
/// session path; deliveries are 1-step slices, everything else instants.
/// `ts` is the delivery-step counter (microseconds in the viewer).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut lanes: HashMap<String, usize> = HashMap::new();
    let mut lane_of = |session: &SessionId| -> usize {
        let key = session.to_string();
        let next = lanes.len() + 1;
        *lanes.entry(key).or_insert(next)
    };
    let mut body = String::with_capacity(events.len() * 128);
    let mut named: HashMap<(usize, usize), String> = HashMap::new();
    let push = |body: &mut String, line: String| {
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(&line);
    };
    for ev in events {
        let (pid, tid) = match ev {
            TraceEvent::EpisodeStart { .. }
            | TraceEvent::EpisodeEnd { .. }
            | TraceEvent::SchedulerPick { .. }
            | TraceEvent::PartitionStart { .. }
            | TraceEvent::PartitionHeal { .. } => (CTL_PID, 0),
            TraceEvent::Crash { party, .. } | TraceEvent::Recover { party, .. } => (party.0, 0),
            TraceEvent::Send { from, session, .. } => (from.0, lane_of(session)),
            TraceEvent::Deliver { party, session, .. }
            | TraceEvent::Drop { party, session, .. }
            | TraceEvent::Shun { party, session, .. }
            | TraceEvent::Output { party, session, .. }
            | TraceEvent::DecodeMiss { party, session, .. } => (party.0, lane_of(session)),
        };
        if let Some(session) = ev.session() {
            named
                .entry((pid, tid))
                .or_insert_with(|| session.to_string());
        }
        let ts = ev.step();
        let mut name = String::new();
        let mut args = String::new();
        let mut ph = "i";
        match ev {
            TraceEvent::EpisodeStart { .. } | TraceEvent::EpisodeEnd { .. } => {
                name.push_str(ev.label());
            }
            TraceEvent::SchedulerPick {
                party, queued, run, ..
            } => {
                name.push_str("pick");
                args = format!("\"party\":{},\"queued\":{queued},\"run\":{run}", party.0);
            }
            TraceEvent::Crash { .. } => name.push_str("crash"),
            TraceEvent::Send {
                to,
                seq,
                causal_parent,
                ..
            } => {
                name.push_str("send");
                args = format!(
                    "\"to\":{},\"seq\":{seq},\"causal_parent\":{}",
                    to.0,
                    causal_parent.map_or("null".to_string(), |c| c.to_string())
                );
            }
            TraceEvent::Deliver {
                from,
                session,
                seq,
                vtime,
                ..
            } => {
                ph = "X";
                name.push_str(session_kind(session));
                args = match vtime {
                    Some(vt) => format!("\"from\":{},\"seq\":{seq},\"vtime\":{vt}", from.0),
                    None => format!("\"from\":{},\"seq\":{seq}", from.0),
                };
            }
            TraceEvent::Drop {
                from, seq, reason, ..
            } => {
                name = format!("drop({})", reason.label());
                args = format!("\"from\":{},\"seq\":{seq}", from.0);
            }
            TraceEvent::Shun { count, .. }
            | TraceEvent::Output { count, .. }
            | TraceEvent::DecodeMiss { count, .. } => {
                name.push_str(ev.label());
                args = format!("\"count\":{count}");
            }
            TraceEvent::PartitionStart { vtime, cut, .. } => {
                name.push_str("partition-start");
                let ids: Vec<String> = cut.iter().map(|p| p.0.to_string()).collect();
                args = format!("\"vtime\":{vtime},\"cut\":[{}]", ids.join(","));
            }
            TraceEvent::PartitionHeal { vtime, .. } => {
                name.push_str("partition-heal");
                args = format!("\"vtime\":{vtime}");
            }
            TraceEvent::Recover { vtime, .. } => {
                name.push_str("recover");
                args = format!("\"vtime\":{vtime}");
            }
        }
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":");
        push_json_str(&mut line, &name);
        line.push_str(&format!(
            ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}"
        ));
        if ph == "X" {
            line.push_str(",\"dur\":1");
        } else {
            line.push_str(",\"s\":\"t\"");
        }
        line.push_str(&format!(",\"cat\":\"{}\"", ev.label()));
        if !args.is_empty() {
            line.push_str(&format!(",\"args\":{{{args}}}"));
        }
        line.push('}');
        push(&mut body, line);
    }
    // Metadata: name each party process and each session lane.
    let mut pids: Vec<usize> = named.keys().map(|(p, _)| *p).collect();
    pids.push(CTL_PID);
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        let pname = if pid == CTL_PID {
            "scheduler".to_string()
        } else {
            format!("party {pid}")
        };
        let mut line = String::new();
        line.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
        ));
        push_json_str(&mut line, &pname);
        line.push_str("}}");
        push(&mut body, line);
    }
    let mut lanes_sorted: Vec<((usize, usize), String)> = named.into_iter().collect();
    lanes_sorted.sort();
    for ((pid, tid), session) in lanes_sorted {
        let mut line = String::new();
        line.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
        ));
        push_json_str(&mut line, &session);
        line.push_str("}}");
        push(&mut body, line);
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{body}]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;

    fn sid(kind: &'static str) -> SessionId {
        SessionId::root().child(SessionTag::new(kind, 0))
    }

    fn deliver(step: u64, party: usize, from: usize, seq: u64) -> TraceEvent {
        TraceEvent::Deliver {
            step,
            party: PartyId(party),
            from: PartyId(from),
            session: sid("acast"),
            seq,
            vtime: None,
        }
    }

    fn send(step: u64, from: usize, to: usize, seq: u64, cp: Option<u64>) -> TraceEvent {
        TraceEvent::Send {
            step,
            from: PartyId(from),
            to: PartyId(to),
            session: sid("acast"),
            seq,
            causal_parent: cp,
        }
    }

    #[test]
    fn ring_recorder_wraps_around() {
        let mut ring = RingRecorder::new(4);
        for i in 0..10 {
            ring.record(TraceEvent::EpisodeStart { step: i });
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let steps: Vec<u64> = snap.iter().map(|e| e.step()).collect();
        assert_eq!(steps, vec![6, 7, 8, 9], "oldest-first tail of the stream");
    }

    #[test]
    fn ring_recorder_under_capacity_keeps_order() {
        let mut ring = RingRecorder::new(8);
        for i in 0..3 {
            ring.record(TraceEvent::EpisodeEnd { step: i });
        }
        let steps: Vec<u64> = ring.snapshot().iter().map(|e| e.step()).collect();
        assert_eq!(steps, vec![0, 1, 2]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn depth_buckets_are_log_spaced() {
        assert_eq!(DepthHistogram::bucket_of(0), 0);
        assert_eq!(DepthHistogram::bucket_of(1), 1);
        assert_eq!(DepthHistogram::bucket_of(2), 1);
        assert_eq!(DepthHistogram::bucket_of(3), 2);
        assert_eq!(DepthHistogram::bucket_of(6), 2);
        assert_eq!(DepthHistogram::bucket_of(7), 3);
        for i in 0..8 {
            let (lo, hi) = DepthHistogram::bucket_bounds(i);
            assert_eq!(DepthHistogram::bucket_of(lo), i);
            assert_eq!(DepthHistogram::bucket_of(hi), i);
            if lo > 0 {
                assert_eq!(DepthHistogram::bucket_of(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn depth_histograms_follow_the_causal_chain() {
        // Root send (spawn phase) -> deliver at (1, step 1); its handler
        // sends seq 1 -> deliver at (2, step 2); whose handler sends
        // seq 2 -> deliver at (0, step 3). Depths 0, 1, 2.
        let events = vec![
            send(0, 0, 1, 0, None),
            deliver(1, 1, 0, 0),
            send(1, 1, 2, 1, Some(1)),
            deliver(2, 2, 1, 1),
            send(2, 2, 0, 2, Some(2)),
            deliver(3, 0, 2, 2),
        ];
        let hists = depth_histograms(&events);
        assert_eq!(hists.len(), 1);
        let (kind, h) = &hists[0];
        assert_eq!(*kind, "acast");
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 2);
        assert_eq!(h.sum, 3);
        assert_eq!(h.buckets, vec![1, 2]); // depth 0 -> bucket 0; depths 1,2 -> bucket 1
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = vec![
            TraceEvent::EpisodeStart { step: 0 },
            send(0, 0, 1, 0, None),
            deliver(1, 1, 0, 0),
            TraceEvent::Drop {
                step: 2,
                party: PartyId(2),
                from: PartyId(0),
                session: sid("ba"),
                seq: 1,
                reason: DropReason::Shunned,
            },
            TraceEvent::EpisodeEnd { step: 2 },
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[1].contains("\"causal_parent\":null"), "{}", lines[1]);
        assert!(lines[2].contains("\"kind\":\"acast\""), "{}", lines[2]);
        assert!(lines[3].contains("\"reason\":\"shunned\""), "{}", lines[3]);
    }

    #[test]
    fn json_escaping_is_applied() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn chrome_trace_has_lanes_and_metadata() {
        let events = vec![send(0, 0, 1, 0, None), deliver(1, 1, 0, 0)];
        let json = to_chrome_trace(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"X\""), "deliver becomes a slice");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("/acast[0]"), "lane named by session path");
    }

    #[test]
    fn trace_mode_builds_the_right_sink() {
        assert!(TraceMode::Off.build().is_none());
        let mut ring = TraceMode::Ring(2).build().unwrap();
        let mut full = TraceMode::Full.build().unwrap();
        for i in 0..5 {
            ring.record(TraceEvent::EpisodeStart { step: i });
            full.record(TraceEvent::EpisodeStart { step: i });
        }
        assert_eq!(ring.snapshot().len(), 2);
        assert_eq!(full.snapshot().len(), 5);
        assert_eq!(ring.recorded(), 5);
    }

    #[test]
    fn net_lifecycle_events_export_with_virtual_timestamps() {
        let events = vec![
            TraceEvent::PartitionStart {
                step: 1,
                vtime: 40,
                cut: vec![PartyId(0), PartyId(2)],
            },
            TraceEvent::Deliver {
                step: 2,
                party: PartyId(1),
                from: PartyId(0),
                session: sid("ba"),
                seq: 9,
                vtime: Some(57),
            },
            TraceEvent::PartitionHeal {
                step: 3,
                vtime: 240,
            },
            TraceEvent::Recover {
                step: 4,
                vtime: 300,
                party: PartyId(2),
            },
        ];
        assert_eq!(events[0].vtime(), Some(40));
        assert_eq!(events[1].vtime(), Some(57));
        assert_eq!(events[3].label(), "recover");
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"cut\":[0,2]"), "{}", lines[0]);
        assert!(lines[1].contains("\"vtime\":57"), "{}", lines[1]);
        assert!(lines[2].contains("\"vtime\":240"), "{}", lines[2]);
        assert!(lines[3].contains("\"party\":2"), "{}", lines[3]);
        let chrome = to_chrome_trace(&events);
        assert!(chrome.contains("\"partition-start\""), "{chrome}");
        assert!(chrome.contains("\"vtime\":300"), "{chrome}");
    }

    #[test]
    fn summarize_reports_recorded_and_retained() {
        let mut ring = RingRecorder::new(2);
        ring.record(send(0, 0, 1, 0, None));
        ring.record(deliver(1, 1, 0, 0));
        ring.record(deliver(2, 2, 0, 7)); // send for seq 7 not retained -> depth 0
        let summary = summarize(&ring);
        assert_eq!(summary.recorded, 3);
        assert_eq!(summary.retained, 2);
        assert_eq!(summary.depths.len(), 1);
        let text = summary.to_string();
        assert!(text.contains("3 events recorded"), "{text}");
        assert!(text.contains("depth[acast]"), "{text}");
    }
}
