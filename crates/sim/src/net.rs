//! The `net:` virtual-time network model.
//!
//! Every other scheduler only permutes delivery *order*; this family adds
//! a notion of *when*. A discrete-event virtual clock assigns each
//! in-flight batch a virtual arrival time — per-link latency sampled from
//! a configurable distribution, optional sampled link failures
//! (modelled as retransmission delay), and a seed-chosen partition that
//! heals at a configured virtual time — and always delivers the earliest
//! arrival next. One virtual tick is one virtual millisecond.
//!
//! The model stays inside the paper's hypothesis: a partition is a
//! *structured finite delay*, never a loss. Traffic crossing the cut
//! while it is up is re-timed to land after the heal, and a
//! never-healing partition resolves at a huge-but-finite horizon
//! ([`NEVER_HEAL`]), so every message is still eventually delivered and
//! the conservation invariant (`sent == delivered + dropped`) is
//! untouched.
//!
//! Determinism: the partition plan is derived once from
//! `(seed, spec)` via a dedicated RNG stream, so every per-party
//! scheduler instance (the sharded backend builds one per party)
//! resolves the identical cut and timing; arrival times are sampled from
//! the scheduler RNG in arrival-order scan order, making the whole
//! virtual schedule a pure function of `(seed, scenario string)`.

use crate::ids::PartyId;
use crate::queue::{MsgMeta, Pending};
use crate::runtime::NetConfig;
use crate::scheduler::Scheduler;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Virtual-time horizon standing in for "never": a partition with no
/// `heal=` heals here. Huge (≈ 10^12 virtual ms) but finite, which keeps
/// eventual delivery a theorem rather than a hope.
pub const NEVER_HEAL: u64 = 1 << 40;

/// Per-link latency distribution (virtual milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyDist {
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Minimum latency (≥ 1).
        lo: u64,
        /// Maximum latency (≥ `lo`).
        hi: u64,
    },
    /// Geometric approximation of an exponential with the given mean:
    /// integer trials with success probability `1/mean`, capped at
    /// `16 * mean`. Integer-only, so cross-platform determinism never
    /// rests on floating point.
    Exp {
        /// Mean latency (1..=256).
        mean: u64,
    },
}

impl LatencyDist {
    fn parse(v: &str) -> Option<LatencyDist> {
        if let Some(m) = v.strip_prefix("exp:") {
            let mean: u64 = m.parse().ok()?;
            if !(1..=256).contains(&mean) {
                return None;
            }
            return Some(LatencyDist::Exp { mean });
        }
        let (lo, hi) = v.split_once("..")?;
        let lo: u64 = lo.parse().ok()?;
        let hi: u64 = hi.parse().ok()?;
        if lo == 0 || hi < lo || hi > 1 << 20 {
            return None;
        }
        Some(LatencyDist::Uniform { lo, hi })
    }
}

impl fmt::Display for LatencyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyDist::Uniform { lo, hi } => write!(f, "{lo}..{hi}"),
            LatencyDist::Exp { mean } => write!(f, "exp:{mean}"),
        }
    }
}

/// Which parties the partition isolates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// `p<pct>`: cut `ceil(t * pct / 100)` seed-chosen parties (≥ 1, ≤ t).
    Sampled {
        /// Percentage of the fault budget `t` to isolate (1..=100).
        pct: u8,
    },
    /// `<i>+<j>+…`: an explicit strictly-increasing party list.
    Explicit(Vec<PartyId>),
}

impl PartitionSpec {
    fn parse(v: &str) -> Option<PartitionSpec> {
        if let Some(p) = v.strip_prefix('p') {
            let pct: u8 = p.parse().ok()?;
            if !(1..=100).contains(&pct) {
                return None;
            }
            return Some(PartitionSpec::Sampled { pct });
        }
        let mut ids = Vec::new();
        for part in v.split('+') {
            let id: usize = part.parse().ok()?;
            // Canonical form only: strictly increasing, no duplicates.
            if ids.last().is_some_and(|&PartyId(prev)| prev >= id) {
                return None;
            }
            ids.push(PartyId(id));
        }
        if ids.is_empty() {
            return None;
        }
        Some(PartitionSpec::Explicit(ids))
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionSpec::Sampled { pct } => write!(f, "p{pct}"),
            PartitionSpec::Explicit(ids) => {
                for (i, p) in ids.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{}", p.0)?;
                }
                Ok(())
            }
        }
    }
}

/// Parsed `net:` scheduler spec. Grammar (comma-separated, any order,
/// each key at most once):
///
/// ```text
/// net[:lat=<lo>..<hi> | lat=exp:<mean>][,fail=p<pct>]
///    [,partition=p<pct> | partition=<i>+<j>+…][,heal=<vticks>]
/// ```
///
/// `heal=` requires `partition=`; a partition without `heal=` never
/// heals (resolves at [`NEVER_HEAL`]). Bare `net` means `net:lat=1..8`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSpec {
    /// Per-link latency distribution.
    pub lat: LatencyDist,
    /// Sampled link-failure probability in percent (0 = off). A failed
    /// send is retransmitted: its delay grows by four extra samples'
    /// worth, it is never lost.
    pub fail_pct: u8,
    /// Optional partition.
    pub partition: Option<PartitionSpec>,
    /// Virtual ticks after partition start at which it heals.
    pub heal_after: Option<u64>,
}

impl NetSpec {
    /// Parses a full scheduler string (`net` or `net:<args>`). Returns
    /// `None` on unknown keys, duplicate keys, out-of-range values, or
    /// `heal=` without `partition=`.
    pub fn parse(s: &str) -> Option<NetSpec> {
        let rest = if s == "net" {
            ""
        } else {
            match s.strip_prefix("net:") {
                Some(r) if !r.is_empty() => r,
                _ => return None,
            }
        };
        let mut lat = None;
        let mut fail = None;
        let mut partition = None;
        let mut heal = None;
        if !rest.is_empty() {
            for tok in rest.split(',') {
                let (k, v) = tok.split_once('=')?;
                match k {
                    "lat" if lat.is_none() => lat = Some(LatencyDist::parse(v)?),
                    "fail" if fail.is_none() => {
                        let p: u8 = v.strip_prefix('p')?.parse().ok()?;
                        if !(1..=99).contains(&p) {
                            return None;
                        }
                        fail = Some(p);
                    }
                    "partition" if partition.is_none() => {
                        partition = Some(PartitionSpec::parse(v)?)
                    }
                    "heal" if heal.is_none() => {
                        let h: u64 = v.parse().ok()?;
                        if h == 0 || h > 1 << 30 {
                            return None;
                        }
                        heal = Some(h);
                    }
                    _ => return None,
                }
            }
        }
        if heal.is_some() && partition.is_none() {
            return None;
        }
        Some(NetSpec {
            lat: lat.unwrap_or(LatencyDist::Uniform { lo: 1, hi: 8 }),
            fail_pct: fail.unwrap_or(0),
            partition,
            heal_after: heal,
        })
    }
}

impl fmt::Display for NetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net:lat={}", self.lat)?;
        if self.fail_pct > 0 {
            write!(f, ",fail=p{}", self.fail_pct)?;
        }
        if let Some(p) = &self.partition {
            write!(f, ",partition={p}")?;
        }
        if let Some(h) = self.heal_after {
            write!(f, ",heal={h}")?;
        }
        Ok(())
    }
}

/// A network-lifecycle event the virtual clock crossed; drained by the
/// backend into the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// The partition went up at `vtime`, isolating `cut`.
    PartitionStart {
        /// Virtual time of the cut.
        vtime: u64,
        /// Isolated parties (sorted).
        cut: Vec<PartyId>,
    },
    /// The partition healed at `vtime`.
    PartitionHeal {
        /// Virtual time of the heal.
        vtime: u64,
    },
}

/// The resolved partition: which parties are cut, from when to when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Isolated parties (sorted, non-empty, ≤ t of them).
    pub cut: Vec<PartyId>,
    /// Virtual time the cut goes up.
    pub start: u64,
    /// Virtual time the cut heals ([`NEVER_HEAL`]-based if unhealed).
    pub end: u64,
}

impl PartitionPlan {
    /// Derives the plan from `(seed, spec)` — identical on every
    /// scheduler instance sharing those inputs, which is what makes the
    /// sharded backend's per-party schedulers agree on the cut.
    fn derive(spec: &NetSpec, n: usize, t: usize, seed: u64) -> Option<PartitionPlan> {
        let part = spec.partition.as_ref()?;
        let mut rng = ChaCha12Rng::seed_from_u64(plan_seed(seed, spec));
        let cut: Vec<PartyId> = match part {
            PartitionSpec::Explicit(ids) => {
                ids.iter().copied().filter(|p| p.0 < n).take(t).collect()
            }
            PartitionSpec::Sampled { pct } => {
                if t == 0 {
                    return None;
                }
                let size = (t * *pct as usize).div_ceil(100).clamp(1, t);
                // Partial Fisher–Yates: the first `size` positions end up
                // a uniform sample without replacement.
                let mut idx: Vec<usize> = (0..n).collect();
                for k in 0..size {
                    let j = rng.gen_range(k..n);
                    idx.swap(k, j);
                }
                let mut cut: Vec<PartyId> = idx[..size].iter().map(|&i| PartyId(i)).collect();
                cut.sort_unstable();
                cut
            }
        };
        if cut.is_empty() {
            return None;
        }
        let start: u64 = rng.gen_range(0..64);
        let end = start.saturating_add(spec.heal_after.unwrap_or(NEVER_HEAL));
        Some(PartitionPlan { cut, start, end })
    }

    /// Whether a `from → to` link crosses the cut (exactly one endpoint
    /// isolated). Traffic *within* the cut still flows.
    fn crosses(&self, from: PartyId, to: PartyId) -> bool {
        self.cut.binary_search(&from).is_ok() != self.cut.binary_search(&to).is_ok()
    }
}

/// FNV-1a over the canonical spec string, folded with the run seed, so
/// the plan RNG stream is a pure function of `(seed, spec)`.
fn plan_seed(seed: u64, spec: &NetSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in spec.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(h)
}

/// The discrete-event virtual-clock scheduler (glitch-style: a priority
/// order keyed by `(virtual_time, arrival_index)`).
///
/// Each unseen batch head is assigned a virtual arrival time when first
/// scanned: `now + latency` (plus retransmission delay on a sampled
/// link failure), re-timed past the heal when the link crosses an
/// active partition cut. `pick` always returns the earliest arrival,
/// ties broken by arrival order, and the clock advances monotonically
/// to the delivered arrival's time.
pub struct NetScheduler {
    spec: NetSpec,
    /// The virtual clock, in virtual milliseconds.
    now: u64,
    /// Batch-head sequence number → assigned virtual arrival time.
    arrivals: HashMap<u64, u64>,
    /// Resolved partition (set by `configure`; `None` = latency only).
    plan: Option<PartitionPlan>,
    emitted_start: bool,
    emitted_heal: bool,
    /// Lifecycle events crossed but not yet drained by the backend.
    events: Vec<NetEvent>,
}

impl NetScheduler {
    /// Builds an unconfigured scheduler. Until
    /// [`configure`](Scheduler::configure) runs, a partition spec
    /// degrades to latency-only (no cut can be derived without `n`,
    /// `t` and the seed).
    pub fn new(spec: NetSpec) -> Self {
        NetScheduler {
            spec,
            now: 0,
            arrivals: HashMap::new(),
            plan: None,
            emitted_start: false,
            emitted_heal: false,
            events: Vec::new(),
        }
    }

    /// The parsed spec.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// The resolved partition plan, if any (after `configure`).
    pub fn plan(&self) -> Option<&PartitionPlan> {
        self.plan.as_ref()
    }

    fn sample_latency(&self, rng: &mut ChaCha12Rng) -> u64 {
        match self.spec.lat {
            LatencyDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LatencyDist::Exp { mean } => {
                // Geometric with p = 1/mean: mean = `mean`, capped.
                let cap = mean.saturating_mul(16);
                let mut d = 1u64;
                while d < cap && rng.gen_range(0..mean) != 0 {
                    d += 1;
                }
                d
            }
        }
    }

    /// Samples the virtual arrival time for a freshly scanned batch head.
    fn arrival_time(&self, m: &MsgMeta, rng: &mut ChaCha12Rng) -> u64 {
        let mut delay = self.sample_latency(rng);
        if self.spec.fail_pct > 0 && rng.gen_range(0..100u8) < self.spec.fail_pct {
            // Link failure = retransmission, not loss: four extra
            // samples' worth of delay keeps delivery eventual.
            delay = delay.saturating_add(4 * self.sample_latency(rng));
        }
        let natural = self.now.saturating_add(delay);
        if let Some(plan) = &self.plan {
            if plan.crosses(m.from, m.to) && natural >= plan.start && natural < plan.end {
                // Crossing an active cut: the message sits in the
                // partition and lands a fresh latency after the heal.
                return plan.end.saturating_add(self.sample_latency(rng));
            }
        }
        natural
    }

    /// Advances the clock monotonically to `target`, emitting any
    /// partition lifecycle events it crosses.
    fn advance(&mut self, target: u64) {
        if let Some(plan) = &self.plan {
            if !self.emitted_start && target >= plan.start {
                self.events.push(NetEvent::PartitionStart {
                    vtime: plan.start,
                    cut: plan.cut.clone(),
                });
                self.emitted_start = true;
            }
            if !self.emitted_heal && plan.end < NEVER_HEAL && target >= plan.end {
                self.events
                    .push(NetEvent::PartitionHeal { vtime: plan.end });
                self.emitted_heal = true;
            }
        }
        self.now = self.now.max(target);
    }

    /// Garbage-collects arrival entries whose batch heads are gone
    /// (delivered via a fairness-cap override, or retracted).
    fn maybe_sweep(&mut self, pending: &Pending) {
        if self.arrivals.len() > 2 * pending.len() + 32 {
            let live: HashSet<u64> = pending.metas().map(|m| m.seq).collect();
            self.arrivals.retain(|seq, _| live.contains(seq));
        }
    }
}

impl Scheduler for NetScheduler {
    fn pick(&mut self, pending: &Pending, rng: &mut ChaCha12Rng) -> usize {
        let mut best = 0usize;
        let mut best_seq = 0u64;
        let mut best_vt = u64::MAX;
        for (i, m) in pending.metas().enumerate() {
            let vt = match self.arrivals.get(&m.seq) {
                Some(&vt) => vt,
                None => {
                    let vt = self.arrival_time(&m, rng);
                    self.arrivals.insert(m.seq, vt);
                    vt
                }
            };
            // Strict `<` keeps ties on the earliest arrival index.
            if vt < best_vt {
                best_vt = vt;
                best = i;
                best_seq = m.seq;
            }
        }
        self.advance(best_vt);
        self.arrivals.remove(&best_seq);
        self.maybe_sweep(pending);
        best
    }

    fn name(&self) -> &'static str {
        "net"
    }

    fn configure(&mut self, config: &NetConfig) {
        self.plan = PartitionPlan::derive(&self.spec, config.n, config.t, config.seed);
    }

    fn virtual_now(&self) -> Option<u64> {
        Some(self.now)
    }

    fn fast_forward(&mut self, to: u64) {
        if to > self.now {
            self.advance(to);
        }
    }

    fn drain_net_events(&mut self, out: &mut Vec<NetEvent>) {
        out.append(&mut self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SessionId, SessionTag};
    use crate::network::Envelope;
    use crate::payload::Payload;
    use crate::scheduler::SchedulerConfig;

    fn pending(entries: &[(usize, usize)]) -> Pending {
        let mut q = Pending::new();
        for (seq, &(from, to)) in entries.iter().enumerate() {
            q.push(Envelope {
                from: PartyId(from),
                to: PartyId(to),
                session: SessionId::root().child(SessionTag::new("x", 0)),
                payload: Payload::new(0u8),
                seq: seq as u64,
                born_step: 0,
            });
        }
        q
    }

    fn config(n: usize, t: usize, seed: u64) -> NetConfig {
        NetConfig {
            n,
            t,
            seed,
            scheduler: SchedulerConfig::default(),
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "net:lat=1..8",
            "net:lat=1..20,partition=p50,heal=200",
            "net:lat=exp:5,fail=p10",
            "net:lat=2..2,partition=0+2",
            "net:lat=1..8,fail=p1,partition=p100,heal=1",
        ] {
            let spec = NetSpec::parse(s).expect(s);
            assert_eq!(spec.to_string(), s, "canonical display");
            assert_eq!(NetSpec::parse(&spec.to_string()), Some(spec));
        }
        // Bare `net` canonicalizes to the default latency band.
        assert_eq!(NetSpec::parse("net").unwrap().to_string(), "net:lat=1..8");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for s in [
            "net:",
            "net:lat=0..8",             // zero latency
            "net:lat=9..2",             // inverted band
            "net:lat=exp:0",            // zero mean
            "net:lat=exp:999",          // mean out of range
            "net:lat=1..8,lat=2..3",    // duplicate key
            "net:heal=5",               // heal without partition
            "net:fail=p0",              // zero failure pct
            "net:fail=p100",            // certain failure
            "net:fail=10",              // missing p
            "net:partition=p0",         // empty cut
            "net:partition=p101",       // over 100%
            "net:partition=2+1",        // not strictly increasing
            "net:partition=1+1",        // duplicate
            "net:partition=",           // empty
            "net:partition=p50,heal=0", // zero heal
            "net:bogus=1",              // unknown key
            "nets:lat=1..8",            // wrong family
        ] {
            assert!(NetSpec::parse(s).is_none(), "should reject {s:?}");
        }
    }

    #[test]
    fn clock_is_monotone_and_picks_are_in_bounds() {
        let spec = NetSpec::parse("net:lat=1..20,fail=p25").unwrap();
        let mut s = NetScheduler::new(spec);
        s.configure(&config(4, 1, 7));
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut q = pending(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]);
        let mut last = 0;
        while !q.is_empty() {
            let i = s.pick(&q, &mut rng);
            assert!(i < q.len());
            let now = s.virtual_now().unwrap();
            assert!(now >= last, "clock must be monotone");
            last = now;
            q.take(i);
        }
        assert!(last > 0, "delivering advances the clock");
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_spec() {
        let run = |seed: u64| {
            let spec = NetSpec::parse("net:lat=1..20,partition=p50,heal=50").unwrap();
            let mut s = NetScheduler::new(spec);
            s.configure(&config(7, 2, seed));
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut q = pending(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
            let mut order = Vec::new();
            while !q.is_empty() {
                let i = s.pick(&q, &mut rng);
                order.push((q.take(i).seq, s.virtual_now().unwrap()));
            }
            let mut events = Vec::new();
            s.fast_forward(NEVER_HEAL + 1);
            s.drain_net_events(&mut events);
            (order, events, s.plan().cloned())
        };
        assert_eq!(run(3), run(3), "identical seed, identical schedule");
        assert_ne!(run(3).0, run(4).0, "different seed, different schedule");
    }

    #[test]
    fn partition_delays_cross_cut_traffic_past_the_heal() {
        let spec = NetSpec::parse("net:lat=1..1,partition=0+1,heal=500").unwrap();
        let mut s = NetScheduler::new(spec);
        s.configure(&config(4, 2, 1));
        let plan = s.plan().cloned().expect("plan derived");
        assert_eq!(plan.cut, vec![PartyId(0), PartyId(1)]);
        assert_eq!(plan.end, plan.start + 500);

        // Drive the clock into the partition window with intra-cut
        // traffic, then check a cross-cut message lands after the heal.
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut q = pending(&[(0, 1); 70]);
        while s.virtual_now().unwrap() < plan.start {
            let i = s.pick(&q, &mut rng);
            q.take(i);
            assert!(!q.is_empty(), "enough intra-cut traffic to reach start");
        }
        let mut q2 = pending(&[(0, 2)]); // crosses the cut
        let i = s.pick(&q2, &mut rng);
        q2.take(i);
        assert!(
            s.virtual_now().unwrap() > plan.end,
            "cross-cut delivery waits for the heal"
        );
        let mut events = Vec::new();
        s.drain_net_events(&mut events);
        assert!(matches!(events[0], NetEvent::PartitionStart { .. }));
        assert!(matches!(
            events.last(),
            Some(NetEvent::PartitionHeal { .. })
        ));
    }

    #[test]
    fn never_healing_partition_still_delivers() {
        let spec = NetSpec::parse("net:lat=1..1,partition=0+1").unwrap();
        let mut s = NetScheduler::new(spec);
        s.configure(&config(4, 2, 1));
        let plan = s.plan().cloned().unwrap();
        assert!(plan.end >= NEVER_HEAL);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        // A cross-cut message alone still gets picked (finite vtime).
        let mut q = pending(&[(0, 2)]);
        let i = s.pick(&q, &mut rng);
        q.take(i);
        assert!(q.is_empty());
        // The heal event is never emitted for a NEVER_HEAL horizon.
        s.fast_forward(u64::MAX);
        let mut events = Vec::new();
        s.drain_net_events(&mut events);
        assert!(events
            .iter()
            .all(|e| !matches!(e, NetEvent::PartitionHeal { .. })));
    }

    #[test]
    fn exp_latency_mean_is_plausible() {
        let spec = NetSpec::parse("net:lat=exp:5").unwrap();
        let s = NetScheduler::new(spec);
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let n = 4000;
        let total: u64 = (0..n).map(|_| s.sample_latency(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((3.5..=6.5).contains(&mean), "observed mean {mean}");
    }

    #[test]
    fn unconfigured_partition_degrades_to_latency_only() {
        let spec = NetSpec::parse("net:lat=1..4,partition=p50,heal=10").unwrap();
        let mut s = NetScheduler::new(spec);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut q = pending(&[(0, 1), (1, 0)]);
        while !q.is_empty() {
            let i = s.pick(&q, &mut rng);
            q.take(i);
        }
        assert!(s.plan().is_none());
    }

    #[test]
    fn sampled_cut_respects_the_fault_budget() {
        for pct in [1u8, 25, 50, 75, 100] {
            let spec = NetSpec::parse(&format!("net:lat=1..8,partition=p{pct},heal=50")).unwrap();
            let mut s = NetScheduler::new(spec);
            s.configure(&config(10, 3, 42));
            let plan = s.plan().expect("plan");
            assert!(!plan.cut.is_empty() && plan.cut.len() <= 3, "cut ≤ t");
            assert!(plan.cut.windows(2).all(|w| w[0] < w[1]), "sorted cut");
            assert!(plan.cut.iter().all(|p| p.0 < 10), "ids < n");
        }
    }
}
