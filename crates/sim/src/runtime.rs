//! The runtime seam: one [`Runtime`] trait over every execution backend.
//!
//! Protocol code is written once against [`Instance`] and runs unchanged on
//! any backend implementing [`Runtime`]: today the deterministic
//! [`SimNetwork`] and the OS-thread [`ThreadedRuntime`], tomorrow sharded
//! or wire-serialized backends. The trait captures the full lifecycle an
//! experiment needs — deploy instances, inject crashes, run to quiescence,
//! read outputs and metrics — so cross-backend suites and `--runtime`
//! experiment flags are one `Box<dyn Runtime>` away.
//!
//! This module also owns the backend-shared pieces: the static
//! [`NetConfig`], the [`Metrics`] counters (with interned per-kind send
//! counts), run reports, per-party RNG derivation, and the
//! deliver-with-accounting core both backends route every message through.
//!
//! [`SimNetwork`]: crate::SimNetwork
//! [`ThreadedRuntime`]: crate::ThreadedRuntime

use crate::adaptive::SharedAdaptive;
use crate::ids::{PartyId, SessionId};
use crate::instance::Instance;
use crate::node::{Node, Outgoing};
use crate::payload::Payload;
use crate::scheduler::SchedulerConfig;
use crate::trace::{DropReason, TraceEvent, TraceMode, TraceSink, TraceSummary};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::fmt;

/// Static parameters of a simulated system.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Number of parties.
    pub n: usize,
    /// Fault threshold; protocols in this workspace need `n >= 3t + 1`.
    pub t: usize,
    /// Master seed: all node RNGs and the scheduler RNG derive from it.
    pub seed: u64,
    /// Fairness cap (see [`SchedulerConfig`]).
    pub scheduler: SchedulerConfig,
}

impl NetConfig {
    /// Convenience constructor with the default fairness cap.
    pub fn new(n: usize, t: usize, seed: u64) -> Self {
        NetConfig {
            n,
            t,
            seed,
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Counters collected during a run.
///
/// Per-kind send counts are interned into a small vector instead of a
/// hash map: sends are the hot path and session kinds are a handful of
/// `&'static str`s, so a memoized linear scan beats hashing every
/// envelope.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Envelopes handed to the network.
    pub sent: u64,
    /// Envelopes delivered to a node.
    pub delivered: u64,
    /// Envelopes dropped because the receiver shuns the sender.
    pub dropped_shunned: u64,
    /// Envelopes dropped because the receiver crashed.
    pub dropped_crashed: u64,
    /// Delivery steps executed.
    pub steps: u64,
    /// Shun events declared across all nodes.
    pub shun_events: u64,
    /// Payload frames round-tripped through the wire codec (wire backend
    /// only).
    pub wire_frames: u64,
    /// Envelope bytes round-tripped through the wire transport (wire
    /// backend only).
    pub wire_bytes: u64,
    /// Payload frames whose header was malformed on arrival — the
    /// byte-level adversary's fingerprint (wire backend only).
    pub wire_malformed: u64,
    /// Delivery-path buffers (batch deques, outbox vectors, wire read
    /// buffers) reacquired from a recycling pool instead of allocated.
    /// Diagnostic only: never folded into scenario fingerprints.
    pub pool_reused: u64,
    /// Delivery-path buffers allocated fresh because no recycled buffer
    /// was available — the pool's miss counter.
    pub pool_alloc: u64,
    /// Virtual time (virtual milliseconds) at the last delivery, when the
    /// scheduler keeps a virtual clock (the `net:` family); 0 otherwise.
    pub virtual_time: u64,
    /// Sent counts per leaf session kind, in first-seen order.
    by_kind: Vec<(&'static str, u64)>,
    /// Virtual time of the last delivery per leaf session kind — the
    /// virtual-time completion profile of a `net:` run.
    vtime_by_kind: Vec<(&'static str, u64)>,
    /// Index into `by_kind` of the most recently counted kind.
    last_kind: usize,
    /// Failed message views/downcasts per payload kind, in first-seen
    /// order: type-confused or byte-garbled deliveries an honest
    /// instance rejected.
    decode_miss: Vec<(&'static str, u64)>,
}

impl Metrics {
    /// Sent-message count for the leaf session kind `kind`.
    pub fn sent_by_kind(&self, kind: &str) -> u64 {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |&(_, c)| c)
    }

    /// All `(kind, sent count)` pairs, in first-seen order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_kind.iter().copied()
    }

    /// All `(payload kind, failed view/downcast count)` pairs — how often
    /// honest code rejected a delivered payload of that kind. In-memory
    /// type confusion (`Garbage`) and wire-level byte garbage
    /// (`wire:unknown`, `wire:malformed`) both land here.
    pub fn decode_misses(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.decode_miss.iter().copied()
    }

    /// Total failed views/downcasts for payload kind `kind`.
    pub fn decode_miss_by_kind(&self, kind: &str) -> u64 {
        self.decode_miss
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |&(_, c)| c)
    }

    /// Virtual time of the last delivery whose session's leaf kind is
    /// `kind` (0 when no such delivery happened or no clock ran).
    pub fn virtual_time_by_kind(&self, kind: &str) -> u64 {
        self.vtime_by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |&(_, c)| c)
    }

    /// All `(kind, virtual completion time)` pairs, in first-seen order —
    /// empty unless a virtual clock ran.
    pub fn virtual_times(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.vtime_by_kind.iter().copied()
    }

    /// Records a delivery at virtual time `vtime` for session kind
    /// `kind`: the per-kind and global completion clocks advance to it.
    pub(crate) fn on_virtual_delivery(&mut self, kind: &'static str, vtime: u64) {
        self.virtual_time = self.virtual_time.max(vtime);
        if let Some(i) = self.vtime_by_kind.iter().position(|(k, _)| *k == kind) {
            self.vtime_by_kind[i].1 = self.vtime_by_kind[i].1.max(vtime);
        } else {
            self.vtime_by_kind.push((kind, vtime));
        }
    }

    /// Records one sent envelope for `session`'s leaf kind.
    pub(crate) fn on_sent(&mut self, session: &SessionId) {
        self.sent += 1;
        let kind = session.last().map_or("root", |t| t.kind);
        // Fast path: consecutive sends are overwhelmingly same-kind.
        if let Some(&mut (k, ref mut c)) = self.by_kind.get_mut(self.last_kind) {
            if std::ptr::eq(k.as_ptr(), kind.as_ptr()) || k == kind {
                *c += 1;
                return;
            }
        }
        if let Some(i) = self.by_kind.iter().position(|(k, _)| *k == kind) {
            self.by_kind[i].1 += 1;
            self.last_kind = i;
        } else {
            self.by_kind.push((kind, 1));
            self.last_kind = self.by_kind.len() - 1;
        }
    }

    /// Un-counts one previously-recorded send of `session`'s leaf kind
    /// (the simulator retracts buffered sends of a party crashed before
    /// the first delivery). A kind whose count reaches zero is dropped
    /// entirely, so per-kind fingerprints match backends that never
    /// counted the retracted sends at all.
    pub(crate) fn on_retracted(&mut self, session: &SessionId) {
        self.sent -= 1;
        let kind = session.last().map_or("root", |t| t.kind);
        if let Some(i) = self.by_kind.iter().position(|(k, _)| *k == kind) {
            self.by_kind[i].1 -= 1;
            if self.by_kind[i].1 == 0 {
                self.by_kind.remove(i);
                self.last_kind = 0;
            }
        }
    }

    /// Folds `other`'s counters into `self` (threaded workers merge their
    /// thread-local metrics at quiescence).
    pub(crate) fn merge(&mut self, other: &Metrics) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped_shunned += other.dropped_shunned;
        self.dropped_crashed += other.dropped_crashed;
        self.steps += other.steps;
        self.shun_events += other.shun_events;
        self.wire_frames += other.wire_frames;
        self.wire_bytes += other.wire_bytes;
        self.wire_malformed += other.wire_malformed;
        self.pool_reused += other.pool_reused;
        self.pool_alloc += other.pool_alloc;
        // Virtual clocks merge by max: completion time is a high-water
        // mark, not a sum.
        self.virtual_time = self.virtual_time.max(other.virtual_time);
        for &(kind, vtime) in &other.vtime_by_kind {
            if let Some(i) = self.vtime_by_kind.iter().position(|(k, _)| *k == kind) {
                self.vtime_by_kind[i].1 = self.vtime_by_kind[i].1.max(vtime);
            } else {
                self.vtime_by_kind.push((kind, vtime));
            }
        }
        for &(kind, count) in &other.by_kind {
            if let Some(i) = self.by_kind.iter().position(|(k, _)| *k == kind) {
                self.by_kind[i].1 += count;
            } else {
                self.by_kind.push((kind, count));
            }
        }
        for &(kind, count) in &other.decode_miss {
            if let Some(i) = self.decode_miss.iter().position(|(k, _)| *k == kind) {
                self.decode_miss[i].1 += count;
            } else {
                self.decode_miss.push((kind, count));
            }
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No messages left in flight: the system is quiescent.
    Quiescent,
    /// The step budget was exhausted first.
    StepLimit,
    /// The caller's predicate requested a stop.
    Predicate,
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Delivery steps executed.
    pub steps: u64,
    /// Copy of the metrics at stop time.
    pub metrics: Metrics,
    /// Flight-recorder digest, present iff tracing was enabled via
    /// [`Runtime::set_trace`]. Diagnostic only: never folded into
    /// scenario fingerprints.
    pub trace: Option<TraceSummary>,
}

impl fmt::Display for RunReport {
    /// Uniform text rendering across every backend: stop reason, core
    /// counters, pool stats, per-kind send counts and decode misses, and
    /// the trace digest when tracing was on.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.metrics;
        writeln!(f, "stop: {:?} after {} steps", self.stop, self.steps)?;
        writeln!(
            f,
            "messages: sent={} delivered={} dropped_shunned={} dropped_crashed={} shun_events={}",
            m.sent, m.delivered, m.dropped_shunned, m.dropped_crashed, m.shun_events
        )?;
        writeln!(
            f,
            "wire: frames={} bytes={} malformed={}",
            m.wire_frames, m.wire_bytes, m.wire_malformed
        )?;
        writeln!(f, "pool: reused={} alloc={}", m.pool_reused, m.pool_alloc)?;
        if m.virtual_time > 0 {
            let per_kind: Vec<String> =
                m.virtual_times().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(
                f,
                "virtual: completed at {} vms ({})",
                m.virtual_time,
                per_kind.join(" ")
            )?;
        }
        let kinds: Vec<String> = m.kinds().map(|(k, c)| format!("{k}={c}")).collect();
        writeln!(f, "sent by kind: {}", kinds.join(" "))?;
        let misses: Vec<String> = m.decode_misses().map(|(k, c)| format!("{k}={c}")).collect();
        if !misses.is_empty() {
            writeln!(f, "decode misses: {}", misses.join(" "))?;
        }
        if let Some(trace) = &self.trace {
            write!(f, "{trace}")?;
        }
        Ok(())
    }
}

/// Derives party `p`'s deterministic RNG from the master seed.
///
/// Shared by every backend so a protocol's local randomness is identical
/// across backends for the same `(seed, party)`.
pub(crate) fn node_rng(seed: u64, party: usize) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(party as u64),
    )
}

/// Builds party `p`'s [`Node`] for a configured system.
pub(crate) fn build_node(config: &NetConfig, party: usize) -> Node {
    Node::new(
        PartyId(party),
        config.n,
        config.t,
        node_rng(config.seed, party),
    )
}

/// Per-delivery flight-recorder context: the sink to record into plus
/// the identity of the envelope being delivered. `None` (tracing off) is
/// the statically-predictable fast path — one branch, no other cost.
pub(crate) struct DeliverTrace<'a> {
    /// Destination for the delivery's events.
    pub sink: &'a mut dyn TraceSink,
    /// Sequence number of the envelope being delivered.
    pub seq: u64,
    /// Virtual arrival time, when the scheduler keeps a virtual clock.
    pub vtime: Option<u64>,
}

fn miss_total(misses: &[(&'static str, u64)]) -> u64 {
    misses.iter().map(|&(_, c)| c).sum()
}

/// How one delivery resolved at the receiving node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeliverStatus {
    /// The receiver is crashed; the envelope was dropped untouched.
    Crashed,
    /// The node accepted and dispatched the message.
    Delivered,
    /// The node's shun registry filtered the message out.
    Shunned,
}

/// Everything a delivery changed at the node, reported back to whoever
/// owns the metrics. Produced by [`deliver_raw`], consumed by
/// [`account_delivery`] — splitting dispatch from accounting lets a
/// backend run the node on another task or process while the network
/// keeps the books.
#[derive(Debug)]
pub(crate) struct DeliveryOutcome {
    /// How the delivery resolved.
    pub status: DeliverStatus,
    /// Shun declarations the dispatch caused.
    pub new_shuns: u64,
    /// Session outputs the dispatch recorded.
    pub new_outputs: u64,
    /// Per-kind decode/downcast misses the dispatch caused.
    pub misses: Vec<(&'static str, u64)>,
}

/// Dispatches one message to `node` and reports what changed — no
/// metrics, no tracing. Must run on the thread that performs the
/// dispatch (miss accounting is thread-local).
pub(crate) fn deliver_raw(
    node: &mut Node,
    from: PartyId,
    session: SessionId,
    payload: Payload,
    out: &mut Vec<Outgoing>,
) -> DeliveryOutcome {
    if node.is_crashed() {
        return DeliveryOutcome {
            status: DeliverStatus::Crashed,
            new_shuns: 0,
            new_outputs: 0,
            misses: Vec::new(),
        };
    }
    // Discard stray miss records from outside deliveries (test probes,
    // spawn-time output inspection), then attribute the dispatch's own
    // failed views to this delivery.
    crate::payload::drain_misses(None);
    let shuns_before = node.shun_event_count();
    let outputs_before = node.output_count();
    let delivered = node.deliver(from, session, payload, out);
    let mut misses = Vec::new();
    crate::payload::drain_misses(Some(&mut misses));
    DeliveryOutcome {
        status: if delivered {
            DeliverStatus::Delivered
        } else {
            DeliverStatus::Shunned
        },
        new_shuns: node.shun_event_count() - shuns_before,
        new_outputs: node.output_count() - outputs_before,
        misses,
    }
}

/// Identity of the envelope being accounted by [`account_delivery`].
pub(crate) struct DeliverCtx {
    /// Receiving party.
    pub to: PartyId,
    /// Sending party.
    pub from: PartyId,
    /// The envelope's session — captured only when tracing (the
    /// trace-off path pays nothing for the clone).
    pub session: Option<SessionId>,
    /// Sequence number of the envelope.
    pub seq: u64,
    /// Virtual arrival time, when the scheduler keeps a virtual clock.
    pub vtime: Option<u64>,
}

/// Folds one [`DeliveryOutcome`] into the run's metrics and, when a
/// sink is attached, records the `Deliver`/`Drop` event plus any
/// `DecodeMiss`/`Shun`/`Output` events the dispatch caused. Tracing
/// only *reads* what the untraced path already computes, so a traced
/// run is bit-for-bit identical to an untraced one.
pub(crate) fn account_delivery(
    ctx: DeliverCtx,
    outcome: &DeliveryOutcome,
    metrics: &mut Metrics,
    sink: Option<&mut (dyn TraceSink + '_)>,
) {
    metrics.steps += 1;
    if outcome.status == DeliverStatus::Crashed {
        metrics.dropped_crashed += 1;
        if let Some(sink) = sink {
            sink.record(TraceEvent::Drop {
                step: metrics.steps,
                party: ctx.to,
                from: ctx.from,
                session: ctx.session.expect("session captured when tracing"),
                seq: ctx.seq,
                reason: DropReason::Crashed,
            });
        }
        return;
    }
    let delivered = outcome.status == DeliverStatus::Delivered;
    if delivered {
        metrics.delivered += 1;
    } else {
        metrics.dropped_shunned += 1;
    }
    for &(kind, count) in &outcome.misses {
        if let Some(entry) = metrics.decode_miss.iter_mut().find(|(k, _)| *k == kind) {
            entry.1 += count;
        } else {
            metrics.decode_miss.push((kind, count));
        }
    }
    metrics.shun_events += outcome.new_shuns;
    if let Some(sink) = sink {
        let session = ctx.session.expect("session captured when tracing");
        let step = metrics.steps;
        let party = ctx.to;
        if delivered {
            sink.record(TraceEvent::Deliver {
                step,
                party,
                from: ctx.from,
                session: session.clone(),
                seq: ctx.seq,
                vtime: ctx.vtime,
            });
        } else {
            sink.record(TraceEvent::Drop {
                step,
                party,
                from: ctx.from,
                session: session.clone(),
                seq: ctx.seq,
                reason: DropReason::Shunned,
            });
        }
        let misses = miss_total(&outcome.misses);
        if misses > 0 {
            sink.record(TraceEvent::DecodeMiss {
                step,
                party,
                session: session.clone(),
                count: misses,
            });
        }
        if outcome.new_shuns > 0 {
            sink.record(TraceEvent::Shun {
                step,
                party,
                session: session.clone(),
                count: outcome.new_shuns,
            });
        }
        if outcome.new_outputs > 0 {
            sink.record(TraceEvent::Output {
                step,
                party,
                session,
                count: outcome.new_outputs,
            });
        }
    }
}

/// Delivers one message to `node` with full metric accounting — the
/// dispatch core shared by every backend: [`deliver_raw`] followed by
/// [`account_delivery`]. Crashed receivers count as `dropped_crashed`,
/// shun-filtered messages as `dropped_shunned`, the rest as
/// `delivered`; new shun declarations are tallied.
pub(crate) fn deliver_counted(
    node: &mut Node,
    from: PartyId,
    session: SessionId,
    payload: Payload,
    out: &mut Vec<Outgoing>,
    metrics: &mut Metrics,
    trace: Option<DeliverTrace<'_>>,
) {
    let to = node.id();
    let (session_for_trace, trace) = match trace {
        Some(t) => (Some(session.clone()), Some(t)),
        None => (None, None),
    };
    let outcome = deliver_raw(node, from, session, payload, out);
    let (sink, seq, vtime) = match trace {
        Some(t) => (Some(t.sink), t.seq, t.vtime),
        None => (None, 0, None),
    };
    account_delivery(
        DeliverCtx {
            to,
            from,
            session: session_for_trace,
            seq,
            vtime,
        },
        &outcome,
        metrics,
        sink,
    );
}

/// Virtual ticks between a recovery's state revival (phase 1: the party
/// un-crashes and its stale session slot is retired) and its respawn
/// (phase 2: the fresh instance starts). Deliveries landing in the gap
/// early-buffer in the fresh slot and replay at spawn, which is what
/// makes a mid-episode rejoin observable end-to-end.
pub(crate) const REJOIN_GRACE: u64 = 8;

/// One pending crash-recovery: at virtual time `at`, the crashed party
/// revives; [`REJOIN_GRACE`] ticks later its stored instance respawns.
pub(crate) struct RecoverPlan {
    /// The recovering party.
    pub party: PartyId,
    /// Virtual time of phase 1 (revival).
    pub at: u64,
    /// Session to retire and respawn.
    pub session: SessionId,
    /// The replacement instance, consumed at phase 2.
    pub instance: Option<Box<dyn Instance>>,
    /// Whether phase 1 has run.
    pub revived: bool,
}

/// One execution backend: deploy [`Instance`]s, run, read outputs.
///
/// Both backends implement the same deploy-run-inspect lifecycle:
///
/// 1. [`spawn`](Runtime::spawn) the protocol instances (and optionally
///    [`crash`](Runtime::crash) parties);
/// 2. [`run`](Runtime::run) until quiescence or a step budget;
/// 3. read [`output`](Runtime::output)s and [`metrics`](Runtime::metrics).
///
/// The deterministic simulator additionally allows interleaving spawns
/// and runs and mid-run inspection through its inherent methods; the
/// trait captures the portable subset.
///
/// # Examples
///
/// The identical deployment on both backends:
///
/// ```
/// use aft_sim::{runtime_by_name, Context, Instance, NetConfig, PartyId, Payload,
///               RuntimeExt, SessionId, SessionTag};
///
/// struct Hello { heard: usize }
/// impl Instance for Hello {
///     fn on_start(&mut self, ctx: &mut Context<'_>) { ctx.send_all(1u8); }
///     fn on_message(&mut self, _f: PartyId, _p: &Payload, ctx: &mut Context<'_>) {
///         self.heard += 1;
///         if self.heard == ctx.n() { ctx.output(self.heard); }
///     }
/// }
///
/// let sid = SessionId::root().child(SessionTag::new("hello", 0));
/// for backend in ["sim", "threaded"] {
///     let mut rt = runtime_by_name(backend, NetConfig::new(4, 1, 7)).unwrap();
///     for p in 0..4 {
///         rt.spawn(PartyId(p), sid.clone(), Box::new(Hello { heard: 0 }));
///     }
///     let report = rt.run(1_000_000);
///     assert_eq!(report.stop, aft_sim::StopReason::Quiescent, "{backend}");
///     for p in 0..4 {
///         assert_eq!(rt.output_as::<usize>(PartyId(p), &sid), Some(&4), "{backend}");
///     }
/// }
/// ```
pub trait Runtime {
    /// The system's static configuration.
    fn config(&self) -> &NetConfig;

    /// Deploys `instance` for `party` at `session`.
    ///
    /// On the simulator the instance starts immediately; on the threaded
    /// backend spawns are buffered until [`run`](Runtime::run).
    fn spawn(&mut self, party: PartyId, session: SessionId, instance: Box<dyn Instance>);

    /// Crashes `party`: it stops processing and sending for the rest of
    /// the run.
    ///
    /// A crash issued before the first delivery (i.e. before the first
    /// [`run`](Runtime::run)) retracts the party entirely on *every*
    /// backend: its buffered initial sends are never delivered. The
    /// threaded and sharded backends get this for free by buffering
    /// spawns until `run`; the simulator, which starts instances eagerly
    /// on [`spawn`](Runtime::spawn), retracts the party's in-flight
    /// envelopes and un-counts them. A crash issued after deliveries have
    /// begun only stops future activity — envelopes already in flight
    /// from the party stay deliverable.
    fn crash(&mut self, party: PartyId);

    /// Runs until quiescence or until `max_steps` deliveries.
    fn run(&mut self, max_steps: u64) -> RunReport;

    /// The first output of `party` in `session`, if recorded.
    fn output(&self, party: PartyId, session: &SessionId) -> Option<&Payload>;

    /// Releases all per-party state of a completed `session` on `party`:
    /// its recorded output, buffered early messages and arena slot. Long
    /// multi-tenant runs call this after reading a session's output so
    /// the per-party session arena stops growing monotonically; a fully
    /// emptied arena page is returned to the allocator.
    ///
    /// Retiring is an *explicit* lifecycle step, never automatic —
    /// instances may keep participating (e.g. echoing for laggards)
    /// after producing an output, and reclaiming them implicitly would
    /// change schedules. Returns `true` when a session slot was freed.
    /// Backends without per-party arenas (e.g. the threaded runtime,
    /// whose nodes live on worker threads) may not support it and return
    /// `false`.
    fn retire_session(&mut self, party: PartyId, session: &SessionId) -> bool {
        let _ = (party, session);
        false
    }

    /// Schedules `party` — crashed or about to be crashed — to recover at
    /// virtual time `at_vtime`: its stale `session` state is retired via
    /// the [`retire_session`](Runtime::retire_session) path and
    /// `instance` is respawned shortly after, replaying any early-
    /// buffered traffic, so a mid-episode rejoin is observable.
    ///
    /// Recovery needs a virtual clock: backends honor it only when their
    /// scheduler is the `net:` family (recoveries still fire at
    /// quiescence otherwise, but without meaningful timing). Returns
    /// `false` when the backend does not support scheduled recovery —
    /// the party then simply stays crashed.
    fn schedule_recover(
        &mut self,
        party: PartyId,
        at_vtime: u64,
        session: SessionId,
        instance: Box<dyn Instance>,
    ) -> bool {
        let _ = (party, at_vtime, session, instance);
        false
    }

    /// Snapshot of the run metrics so far.
    fn metrics(&self) -> Metrics;

    /// Configures the flight recorder (see [`trace`](crate::trace)) for
    /// subsequent runs. Off by default; tracing is observational only
    /// and never perturbs schedules, RNGs or fingerprints. The default
    /// implementation ignores the call, so backends without a recorder
    /// stay valid.
    fn set_trace(&mut self, mode: TraceMode) {
        let _ = mode;
    }

    /// Detaches and returns the active trace sink, if any, leaving
    /// tracing off.
    fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        None
    }

    /// Installs an adaptive-adversary controller (see
    /// [`adaptive`](crate::adaptive)): the backend feeds it schedule-stable
    /// observation events (deliveries, scheduler picks) as the run
    /// progresses, and [`AdaptiveShell`](crate::AdaptiveShell)s consult its
    /// victim ledger on every activation. Returns `false` when the backend
    /// cannot feed observations deterministically (e.g. the threaded
    /// runtime) — adaptive scenarios are rejected there.
    fn install_adaptive(&mut self, ctrl: SharedAdaptive) -> bool {
        let _ = ctrl;
        false
    }

    /// The installed adaptive controller, if any — lets multi-episode
    /// deployments reuse one victim ledger across episodes and lets
    /// invariant checkers read the final victim set.
    fn adaptive_handle(&self) -> Option<SharedAdaptive> {
        None
    }

    /// The backend's name (`"sim"`, `"threaded"`, …) for reports.
    fn backend_name(&self) -> &'static str;
}

/// Convenience methods available on every [`Runtime`] (including trait
/// objects).
pub trait RuntimeExt: Runtime {
    /// Typed convenience over [`Runtime::output`].
    fn output_as<T: 'static>(&self, party: PartyId, session: &SessionId) -> Option<&T> {
        self.output(party, session)
            .and_then(|p| p.downcast_ref::<T>())
    }

    /// Runs with an effectively unlimited step budget.
    fn run_to_quiescence(&mut self) -> RunReport {
        self.run(u64::MAX)
    }
}

impl<R: Runtime + ?Sized> RuntimeExt for R {}

/// Builds a boxed runtime by name — the experiment-sweep counterpart of
/// [`scheduler_by_name`](crate::scheduler_by_name).
///
/// Supported names:
///
/// * `"sim"` — deterministic simulator with the random scheduler;
/// * `"sim:<scheduler>"` — simulator with any
///   [`scheduler_by_name`](crate::scheduler_by_name) scheduler
///   (e.g. `"sim:lifo"`, `"sim:window8"`, `"sim:starve:1,3"`);
/// * `"sharded:<k>"` — sharded deterministic simulator
///   ([`ShardedSimRuntime`](crate::ShardedSimRuntime)) with `k` worker
///   shards and the random per-party scheduler (`k ≥ 1`);
/// * `"sharded:<k>:<scheduler>"` — sharded simulator with every party
///   running the named [`scheduler_by_name`](crate::scheduler_by_name)
///   policy (e.g. `"sharded:4:lifo"`);
/// * `"wire"` — the wire-serialized deterministic runtime
///   ([`WireRuntime`](crate::WireRuntime)): every envelope is encoded to
///   a length-prefixed byte frame, round-tripped through a per-party OS
///   socket pair, and decoded lazily through the process-global
///   [`CodecRegistry`](crate::wire::CodecRegistry) snapshot;
/// * `"wire:<scheduler>"` — the wire runtime with any
///   [`scheduler_by_name`](crate::scheduler_by_name) scheduler;
/// * `"async"` — the event-loop runtime
///   ([`AsyncRuntime`](crate::AsyncRuntime)): every party runs as a task
///   on a single-threaded executor and deliveries round-trip through
///   per-party channels, with the random scheduler picking the order;
/// * `"async:<scheduler>"` — the event-loop runtime with any
///   [`scheduler_by_name`](crate::scheduler_by_name) scheduler;
/// * `"proc"` / `"proc:<n>"` — the in-process stand-in for the
///   process-per-party deployment ([`ProcRuntime`](crate::ProcRuntime)):
///   one OS thread per party, OS scheduling, `<n>` (when given) must
///   equal the configured party count. The *real* multi-process
///   deployment is driven by the `aft-partyd` binary and the
///   `exp_deployment` supervisor in `aft-bench`;
/// * `"threaded"` — OS-thread runtime with the default poll interval;
/// * `"threaded:<millis>"` — OS-thread runtime with an explicit idle-poll
///   interval in milliseconds.
///
/// # Examples
///
/// ```
/// use aft_sim::{runtime_by_name, NetConfig};
/// let config = NetConfig::new(4, 1, 1);
/// assert_eq!(runtime_by_name("sim", config).unwrap().backend_name(), "sim");
/// assert_eq!(runtime_by_name("threaded", config).unwrap().backend_name(), "threaded");
/// assert_eq!(runtime_by_name("sharded:4", config).unwrap().backend_name(), "sharded");
/// assert_eq!(runtime_by_name("wire", config).unwrap().backend_name(), "wire");
/// assert_eq!(runtime_by_name("async", config).unwrap().backend_name(), "async");
/// assert_eq!(runtime_by_name("proc", config).unwrap().backend_name(), "proc");
/// assert!(runtime_by_name("sim:window8", config).is_some());
/// assert!(runtime_by_name("wire:lifo", config).is_some());
/// assert!(runtime_by_name("async:lifo", config).is_some());
/// assert!(runtime_by_name("sharded:2:lifo", config).is_some());
/// assert!(runtime_by_name("proc:4", config).is_some());
/// assert!(runtime_by_name("proc:5", config).is_none(), "party-count mismatch");
/// assert!(runtime_by_name("sharded:0", config).is_none());
/// assert!(runtime_by_name("hovercraft", config).is_none());
/// ```
pub fn runtime_by_name(name: &str, config: NetConfig) -> Option<Box<dyn Runtime>> {
    use crate::network::SimNetwork;
    use crate::shard::ShardedSimRuntime;
    use crate::threaded::ThreadedRuntime;
    use crate::wire_rt::WireRuntime;
    if name == "sim" {
        return Some(Box::new(SimNetwork::new(
            config,
            Box::new(crate::scheduler::RandomScheduler),
        )));
    }
    if let Some(sched) = name.strip_prefix("sim:") {
        return Some(Box::new(SimNetwork::new(
            config,
            crate::scheduler_by_name(sched)?,
        )));
    }
    if name == "wire" {
        return Some(Box::new(WireRuntime::new(
            config,
            Box::new(crate::scheduler::RandomScheduler),
            crate::wire::global_registry(),
        )));
    }
    if let Some(sched) = name.strip_prefix("wire:") {
        return Some(Box::new(WireRuntime::new(
            config,
            crate::scheduler_by_name(sched)?,
            crate::wire::global_registry(),
        )));
    }
    if let Some(rest) = name.strip_prefix("sharded:") {
        let (k, sched) = match rest.split_once(':') {
            Some((k, sched)) => (k, Some(sched)),
            None => (rest, None),
        };
        let k: usize = k.parse().ok()?;
        if k == 0 {
            return None;
        }
        return Some(match sched {
            None => Box::new(ShardedSimRuntime::new(config, k)),
            Some(sched) => {
                crate::scheduler_by_name(sched)?; // validate the name once
                Box::new(ShardedSimRuntime::with_scheduler_factory(config, k, |_| {
                    crate::scheduler_by_name(sched).expect("validated above")
                }))
            }
        });
    }
    if name == "async" {
        return Some(Box::new(crate::async_rt::AsyncRuntime::new(
            config,
            Box::new(crate::scheduler::RandomScheduler),
        )));
    }
    if let Some(sched) = name.strip_prefix("async:") {
        return Some(Box::new(crate::async_rt::AsyncRuntime::new(
            config,
            crate::scheduler_by_name(sched)?,
        )));
    }
    if name == "proc" {
        return Some(Box::new(crate::deploy::ProcRuntime::new(config)));
    }
    if let Some(k) = name.strip_prefix("proc:") {
        let k: usize = k.parse().ok()?;
        if k != config.n {
            return None;
        }
        return Some(Box::new(crate::deploy::ProcRuntime::new(config)));
    }
    if name == "threaded" {
        return Some(Box::new(ThreadedRuntime::new(config)));
    }
    if let Some(ms) = name.strip_prefix("threaded:") {
        let ms: u64 = ms.parse().ok()?;
        return Some(Box::new(ThreadedRuntime::with_poll(
            config,
            std::time::Duration::from_millis(ms.max(1)),
        )));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SessionTag;
    use crate::instance::Context;

    #[test]
    fn metrics_interned_kind_counting() {
        let mut m = Metrics::default();
        let a = SessionId::root().child(SessionTag::new("a", 0));
        let b = SessionId::root().child(SessionTag::new("b", 0));
        for _ in 0..5 {
            m.on_sent(&a);
        }
        m.on_sent(&b);
        m.on_sent(&a);
        assert_eq!(m.sent, 7);
        assert_eq!(m.sent_by_kind("a"), 6);
        assert_eq!(m.sent_by_kind("b"), 1);
        assert_eq!(m.sent_by_kind("zzz"), 0);
        assert_eq!(m.kinds().count(), 2);
    }

    #[test]
    fn metrics_retraction_drops_zeroed_kinds() {
        let a = SessionId::root().child(SessionTag::new("a", 0));
        let b = SessionId::root().child(SessionTag::new("b", 0));
        let mut m = Metrics::default();
        m.on_sent(&a);
        m.on_sent(&b);
        m.on_sent(&b);
        m.on_retracted(&a);
        m.on_retracted(&b);
        assert_eq!(m.sent, 1);
        assert_eq!(m.sent_by_kind("b"), 1);
        // Fully-retracted kinds vanish, so per-kind fingerprints match a
        // backend that never counted them.
        assert_eq!(m.kinds().collect::<Vec<_>>(), vec![("b", 1)]);
        // The interned fast path still works after the removal.
        m.on_sent(&b);
        assert_eq!(m.sent_by_kind("b"), 2);
    }

    #[test]
    fn metrics_merge_accumulates() {
        let a_sid = SessionId::root().child(SessionTag::new("a", 0));
        let b_sid = SessionId::root().child(SessionTag::new("b", 0));
        let mut x = Metrics::default();
        x.on_sent(&a_sid);
        x.delivered = 3;
        let mut y = Metrics::default();
        y.on_sent(&a_sid);
        y.on_sent(&b_sid);
        y.dropped_crashed = 2;
        x.merge(&y);
        assert_eq!(x.sent, 3);
        assert_eq!(x.delivered, 3);
        assert_eq!(x.dropped_crashed, 2);
        assert_eq!(x.sent_by_kind("a"), 2);
        assert_eq!(x.sent_by_kind("b"), 1);
    }

    #[test]
    fn node_rng_is_per_party_and_per_seed() {
        use rand::Rng;
        let draw = |seed, p| -> u64 { node_rng(seed, p).gen() };
        assert_eq!(draw(1, 0), draw(1, 0));
        assert_ne!(draw(1, 0), draw(1, 1));
        assert_ne!(draw(1, 0), draw(2, 0));
    }

    #[test]
    fn deliver_counted_accounts_for_crash_shun_delivery() {
        struct Shunner;
        impl Instance for Shunner {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.shun(PartyId(2));
            }
            fn on_message(&mut self, _f: PartyId, _p: &Payload, _c: &mut Context<'_>) {}
        }
        let config = NetConfig::new(4, 1, 0);
        let mut node = build_node(&config, 1);
        let mut metrics = Metrics::default();
        let mut out = Vec::new();
        let sid = SessionId::root().child(SessionTag::new("x", 0));
        let other = SessionId::root().child(SessionTag::new("y", 0));

        node.spawn(sid.clone(), Box::new(Shunner));
        assert_eq!(node.shun_event_count(), 1);

        // Shunned sender outside the shun invocation: dropped_shunned.
        deliver_counted(
            &mut node,
            PartyId(2),
            other.clone(),
            Payload::new(1u8),
            &mut out,
            &mut metrics,
            None,
        );
        assert_eq!(metrics.dropped_shunned, 1);

        // Ordinary delivery.
        deliver_counted(
            &mut node,
            PartyId(3),
            sid.clone(),
            Payload::new(1u8),
            &mut out,
            &mut metrics,
            None,
        );
        assert_eq!(metrics.delivered, 1);

        // Crashed receiver.
        node.crash();
        deliver_counted(
            &mut node,
            PartyId(3),
            sid,
            Payload::new(1u8),
            &mut out,
            &mut metrics,
            None,
        );
        assert_eq!(metrics.dropped_crashed, 1);
        assert_eq!(metrics.steps, 3);
    }

    #[test]
    fn runtime_by_name_rejects_garbage() {
        let config = NetConfig::new(4, 1, 0);
        assert!(runtime_by_name("sim:bogus", config).is_none());
        assert!(runtime_by_name("threaded:abc", config).is_none());
        assert!(runtime_by_name("", config).is_none());
    }

    /// One randomized bookkeeping op against a `Metrics`.
    #[derive(Debug, Clone, Copy)]
    enum MetricOp {
        Sent(usize),
        Retract(usize),
        Miss(usize),
        Delivered,
        DroppedShunned,
        DroppedCrashed,
        Step,
        Shun,
        Pool,
    }

    const OP_KINDS: [&str; 4] = ["acast", "ba", "svss-share", "wire:unknown"];

    fn apply_op(m: &mut Metrics, op: MetricOp, live: &mut [u64; 4]) {
        let sid = |i: usize| SessionId::root().child(SessionTag::new(OP_KINDS[i % 4], 0));
        match op {
            MetricOp::Sent(i) => {
                live[i % 4] += 1;
                m.on_sent(&sid(i));
            }
            MetricOp::Retract(i) => {
                // Only retract a kind this half actually sent, like the
                // simulator (which retracts buffered, counted sends).
                if live[i % 4] > 0 {
                    live[i % 4] -= 1;
                    m.on_retracted(&sid(i));
                }
            }
            MetricOp::Miss(i) => {
                let kind = OP_KINDS[i % 4];
                if let Some(j) = m.decode_miss.iter().position(|(k, _)| *k == kind) {
                    m.decode_miss[j].1 += 1;
                } else {
                    m.decode_miss.push((kind, 1));
                }
            }
            MetricOp::Delivered => m.delivered += 1,
            MetricOp::DroppedShunned => m.dropped_shunned += 1,
            MetricOp::DroppedCrashed => m.dropped_crashed += 1,
            MetricOp::Step => m.steps += 1,
            MetricOp::Shun => m.shun_events += 1,
            MetricOp::Pool => {
                m.pool_reused += 1;
                m.pool_alloc += 1;
                m.wire_frames += 1;
                m.wire_bytes += 3;
                m.wire_malformed += 1;
            }
        }
    }

    /// Sorted per-kind counters, as returned by [`canon`].
    type KindCounts = Vec<(&'static str, u64)>;

    /// Order-independent view of every counter, for equality modulo the
    /// first-seen ordering of the interned maps.
    fn canon(m: &Metrics) -> (Vec<u64>, KindCounts, KindCounts) {
        let scalars = vec![
            m.sent,
            m.delivered,
            m.dropped_shunned,
            m.dropped_crashed,
            m.steps,
            m.shun_events,
            m.wire_frames,
            m.wire_bytes,
            m.wire_malformed,
            m.pool_reused,
            m.pool_alloc,
            m.virtual_time,
        ];
        let mut kinds: Vec<_> = m.kinds().collect();
        kinds.sort_unstable();
        let mut misses: Vec<_> = m.decode_misses().collect();
        misses.sort_unstable();
        (scalars, kinds, misses)
    }

    /// Decodes one random word into an op: low byte selects the variant,
    /// the next byte the session kind.
    fn decode_op(raw: u32) -> MetricOp {
        let kind = ((raw >> 8) & 0xFF) as usize;
        match raw % 9 {
            0 => MetricOp::Sent(kind),
            1 => MetricOp::Retract(kind),
            2 => MetricOp::Miss(kind),
            3 => MetricOp::Delivered,
            4 => MetricOp::DroppedShunned,
            5 => MetricOp::DroppedCrashed,
            6 => MetricOp::Step,
            7 => MetricOp::Shun,
            _ => MetricOp::Pool,
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(128))]

        /// `Metrics::merge` ∘ split ≡ unsplit: routing any op sequence
        /// through two halves (as the sharded and threaded backends route
        /// per-party/per-thread bookkeeping) and merging gives exactly
        /// the counters of applying the sequence to one `Metrics` —
        /// including the interned per-kind and decode-miss maps.
        #[test]
        fn metrics_merge_of_split_equals_unsplit(
            raw in proptest::collection::vec(proptest::any::<u32>(), 0..64),
        ) {
            let mut whole = Metrics::default();
            let mut live_whole = [0u64; 4];
            let mut left = Metrics::default();
            let mut live_left = [0u64; 4];
            let mut right = Metrics::default();
            let mut live_right = [0u64; 4];
            for &word in &raw {
                let op = decode_op(word);
                let go_left = (word >> 16) & 1 == 0;
                // The split must see the same effective ops as the whole:
                // a retract is a no-op when its half never sent that kind,
                // so route each op by where it *can* apply identically.
                let (half, live_half) = if go_left {
                    (&mut left, &mut live_left)
                } else {
                    (&mut right, &mut live_right)
                };
                if let MetricOp::Retract(i) = op {
                    if live_half[i % 4] == 0 {
                        continue; // would diverge from the whole; skip
                    }
                }
                apply_op(&mut whole, op, &mut live_whole);
                apply_op(half, op, live_half);
            }
            let mut merged = left;
            merged.merge(&right);
            proptest::prop_assert_eq!(canon(&merged), canon(&whole));
        }
    }
}
